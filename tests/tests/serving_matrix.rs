//! Exhaustive serving-matrix smoke tests: every sensible
//! (model, memory, placement, compression, batch) combination builds,
//! runs, and reports sane metrics — plus cross-cutting monotonicity.

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use helm_core::HelmError;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn configs() -> Vec<HostMemoryConfig> {
    vec![
        HostMemoryConfig::dram(),
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::memory_mode(),
        HostMemoryConfig::ssd(),
        HostMemoryConfig::fsdax(),
        HostMemoryConfig::cxl_fpga(),
        HostMemoryConfig::cxl_asic(),
    ]
}

fn try_serve(
    model: &ModelConfig,
    memory: HostMemoryConfig,
    placement: PlacementKind,
    compressed: bool,
    batch: u32,
) -> Result<helm_core::RunReport, HelmError> {
    let policy = Policy::paper_default(model, memory.kind())
        .with_placement(placement)
        .with_compression(compressed)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model.clone(), policy)?
        .run(&WorkloadSpec::paper_default())
}

#[test]
fn every_viable_combination_serves_sanely() {
    let models = [
        ModelConfig::opt_6_7b(),
        ModelConfig::opt_30b(),
        ModelConfig::opt_175b(),
    ];
    let mut ran = 0;
    let mut rejected = 0;
    for model in &models {
        for memory in configs() {
            for placement in [
                PlacementKind::Baseline,
                PlacementKind::Helm,
                PlacementKind::AllCpu,
            ] {
                for compressed in [false, true] {
                    match try_serve(model, memory.clone(), placement, compressed, 1) {
                        Ok(report) => {
                            ran += 1;
                            assert!(report.ttft_ms() > 0.0, "{}", report.summary());
                            assert!(report.tbt_ms() > 0.0, "{}", report.summary());
                            assert!(
                                report.throughput_tps() > 0.0 && report.throughput_tps() < 1e5,
                                "{}",
                                report.summary()
                            );
                            assert!(report.total_time >= report.ttft);
                            let sum: f64 = report.achieved_distribution.iter().sum();
                            assert!((sum - 100.0).abs() < 1e-6);
                        }
                        Err(e) => {
                            rejected += 1;
                            // Rejections must be capacity-shaped, not
                            // internal failures.
                            assert!(
                                matches!(
                                    e,
                                    HelmError::CapacityExceeded { .. } | HelmError::NoDiskTier
                                ),
                                "unexpected rejection: {e}"
                            );
                        }
                    }
                }
            }
        }
    }
    assert!(
        ran >= 80,
        "only {ran} combinations served ({rejected} rejected)"
    );
    // OPT-175B uncompressed on DRAM must be among the rejections.
    assert!(rejected >= 1);
}

#[test]
fn tbt_is_monotone_in_host_bandwidth() {
    // Faster host memory never hurts: DRAM <= MM <= NVDRAM <= FSDAX <= SSD.
    let model = ModelConfig::opt_175b();
    let order = [
        HostMemoryConfig::dram(),
        HostMemoryConfig::memory_mode(),
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::fsdax(),
        HostMemoryConfig::ssd(),
    ];
    let mut last = 0.0;
    for memory in order {
        let label = memory.kind().to_string();
        let tbt = try_serve(&model, memory, PlacementKind::Baseline, true, 1)
            .expect("serves")
            .tbt_ms();
        assert!(tbt >= last, "{label}: {tbt} < {last}");
        last = tbt;
    }
}

#[test]
fn larger_models_are_slower() {
    let mut last = 0.0;
    for model in [
        ModelConfig::opt_6_7b(),
        ModelConfig::opt_13b(),
        ModelConfig::opt_30b(),
    ] {
        let tbt = try_serve(
            &model,
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            false,
            1,
        )
        .expect("serves")
        .tbt_ms();
        assert!(tbt > last, "{}: {tbt}", model.name());
        last = tbt;
    }
}

#[test]
fn ttft_grows_with_prompt_length() {
    let model = ModelConfig::opt_30b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Dram).with_batch_size(16);
    let server = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::dram()),
        model,
        policy,
    )
    .unwrap();
    let mut last = 0.0;
    for prompt in [128usize, 512, 1024] {
        let ws = WorkloadSpec::new(prompt, 8, 1);
        let report = server.run(&ws).expect("serves");
        assert!(
            report.ttft_ms() >= last,
            "prompt {prompt}: {} < {last}",
            report.ttft_ms()
        );
        last = report.ttft_ms();
    }
}

#[test]
fn longer_generation_increases_total_time_not_tbt() {
    let model = ModelConfig::opt_30b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Dram);
    let server = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::dram()),
        model,
        policy,
    )
    .unwrap();
    let short = server.run(&WorkloadSpec::new(128, 8, 1)).unwrap();
    let long = server.run(&WorkloadSpec::new(128, 32, 1)).unwrap();
    assert!(long.total_time > short.total_time);
    let drift = (long.tbt_ms() / short.tbt_ms() - 1.0).abs();
    assert!(drift < 0.05, "TBT drifted {drift} with generation length");
}

#[test]
fn deterministic_reports() {
    let model = ModelConfig::opt_175b();
    let a = try_serve(
        &model,
        HostMemoryConfig::nvdram(),
        PlacementKind::Helm,
        true,
        4,
    )
    .unwrap();
    let b = try_serve(
        &model,
        HostMemoryConfig::nvdram(),
        PlacementKind::Helm,
        true,
        4,
    )
    .unwrap();
    assert_eq!(a.ttft, b.ttft);
    assert_eq!(a.tbt.samples(), b.tbt.samples());
    assert_eq!(a.records.len(), b.records.len());
}
