//! End-to-end assertions of the paper's headline claims, exercised
//! through the full public API stack (configs → placement → serving →
//! metrics).

use helm_core::metrics::{RunReport, Stage};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn serve(
    model: ModelConfig,
    memory: HostMemoryConfig,
    placement: PlacementKind,
    compressed: bool,
    batch: u32,
) -> RunReport {
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(compressed)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy)
        .expect("placement fits")
        .run(&WorkloadSpec::paper_default())
        .expect("batch fits")
}

fn opt175(memory: HostMemoryConfig, placement: PlacementKind, batch: u32) -> RunReport {
    serve(ModelConfig::opt_175b(), memory, placement, true, batch)
}

/// Abstract §1: "our strategies improve latency and throughput by 27%
/// and 5x, respectively".
#[test]
fn abstract_headline_improvements() {
    let base1 = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
    let helm1 = opt175(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1);
    let latency_gain = 1.0 - helm1.tbt_ms() / base1.tbt_ms();
    assert!(
        (0.22..=0.33).contains(&latency_gain),
        "HeLM latency gain {latency_gain} (paper: 27%)"
    );

    let base8 = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 8);
    let all44 = opt175(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 44);
    let thpt_gain = all44.throughput_tps() / base8.throughput_tps();
    assert!(
        (4.2..=6.2).contains(&thpt_gain),
        "All-CPU throughput gain {thpt_gain}x (paper: 5x)"
    );
}

/// Abstract §2: "within 9% and 6% of an all-DRAM system".
#[test]
fn abstract_dram_proximity() {
    let helm_nv = opt175(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1);
    let helm_dram = opt175(HostMemoryConfig::dram(), PlacementKind::Helm, 1);
    let tbt_gap = helm_nv.tbt_ms() / helm_dram.tbt_ms() - 1.0;
    assert!(tbt_gap < 0.12, "HeLM TBT gap to DRAM {tbt_gap} (paper: 9%)");

    let all_nv = opt175(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 44);
    let all_dram = opt175(HostMemoryConfig::dram(), PlacementKind::AllCpu, 44);
    let thpt_gap = 1.0 - all_nv.throughput_tps() / all_dram.throughput_tps();
    assert!(
        thpt_gap < 0.15,
        "All-CPU throughput gap to DRAM {thpt_gap} (paper: 6%)"
    );
}

/// §V-C: All-CPU keeps TBT while lifting the batch ("maintaining the
/// same time between tokens").
#[test]
fn all_cpu_tbt_flat_across_batches() {
    let b1 = opt175(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 1);
    let b44 = opt175(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 44);
    let ratio = b44.tbt_ms() / b1.tbt_ms();
    assert!((0.95..=1.15).contains(&ratio), "TBT ratio b44/b1 {ratio}");
}

/// §IV-B ordering: SSD < FSDAX < NVDRAM < MemoryMode <= DRAM.
#[test]
fn memory_configurations_order_as_expected() {
    let model = ModelConfig::opt_175b();
    let tbt = |memory: HostMemoryConfig| {
        serve(model.clone(), memory, PlacementKind::Baseline, false, 1).tbt_ms()
    };
    let ssd = tbt(HostMemoryConfig::ssd());
    let fsdax = tbt(HostMemoryConfig::fsdax());
    let nv = tbt(HostMemoryConfig::nvdram());
    let mm = tbt(HostMemoryConfig::memory_mode());
    assert!(ssd > fsdax, "SSD {ssd} should be slowest (FSDAX {fsdax})");
    assert!(fsdax > nv, "FSDAX {fsdax} above NVDRAM {nv}");
    assert!(nv > mm, "NVDRAM {nv} above MemoryMode {mm}");
}

/// §IV-B: FSDAX improves TTFT/TBT/throughput over SSD by ~33%/33%/35%.
#[test]
fn fsdax_improves_ssd_by_a_third() {
    let model = ModelConfig::opt_175b();
    let ssd = serve(
        model.clone(),
        HostMemoryConfig::ssd(),
        PlacementKind::Baseline,
        false,
        1,
    );
    let fsdax = serve(
        model,
        HostMemoryConfig::fsdax(),
        PlacementKind::Baseline,
        false,
        1,
    );
    let gain = 1.0 - fsdax.ttft_ms() / ssd.ttft_ms();
    assert!((0.28..=0.38).contains(&gain), "FSDAX TTFT gain {gain}");
}

/// §IV-B: OPT-30B on NVDRAM pays ~33% TTFT/TBT over DRAM;
/// MemoryMode hides it completely (weights fit the DRAM cache).
#[test]
fn opt30b_nvdram_penalty_and_memorymode_rescue() {
    let model = ModelConfig::opt_30b();
    let dram = serve(
        model.clone(),
        HostMemoryConfig::dram(),
        PlacementKind::Baseline,
        false,
        1,
    );
    let nv = serve(
        model.clone(),
        HostMemoryConfig::nvdram(),
        PlacementKind::Baseline,
        false,
        1,
    );
    let mm = serve(
        model,
        HostMemoryConfig::memory_mode(),
        PlacementKind::Baseline,
        false,
        1,
    );
    let penalty = nv.tbt_ms() / dram.tbt_ms() - 1.0;
    assert!((0.25..=0.40).contains(&penalty), "NVDRAM penalty {penalty}");
    let mm_gap = (mm.tbt_ms() / dram.tbt_ms() - 1.0).abs();
    assert!(mm_gap < 0.02, "MemoryMode should match DRAM: {mm_gap}");
}

/// §V-A: the baseline allocator misses its requested distribution.
#[test]
fn requested_vs_achieved_distribution() {
    let report = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
    let [disk, cpu, gpu] = report.achieved_distribution;
    assert!(disk.abs() < 1e-6);
    assert!((cpu - 91.7).abs() < 1.0, "cpu {cpu} (requested 80)");
    assert!((gpu - 8.3).abs() < 1.0, "gpu {gpu} (requested 20)");
}

/// Fig 6: compression trades ~72-75% less transfer for 2.5-13x more
/// compute, end to end.
#[test]
fn compression_tradeoff_end_to_end() {
    let raw = opt175_uncompressed();
    let comp = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
    let xfer_cut = 1.0
        - comp.avg_hidden_weight_transfer(Stage::Decode).as_secs()
            / raw.avg_hidden_weight_transfer(Stage::Decode).as_secs();
    assert!((0.65..=0.80).contains(&xfer_cut), "transfer cut {xfer_cut}");
    let comp_blowup = comp.avg_hidden_compute(Stage::Decode).as_secs()
        / raw.avg_hidden_compute(Stage::Decode).as_secs();
    assert!(
        (2.5..=13.0).contains(&comp_blowup),
        "compute blow-up {comp_blowup}"
    );
    // Net effect is still a large win on NVDRAM.
    assert!(comp.tbt_ms() < raw.tbt_ms());
}

fn opt175_uncompressed() -> RunReport {
    serve(
        ModelConfig::opt_175b(),
        HostMemoryConfig::nvdram(),
        PlacementKind::Baseline,
        false,
        1,
    )
}

/// Fig 11a: HeLM halves FFN transfer time and raises MHA transfer,
/// and the raised MHA transfer hides behind FFN compute.
#[test]
fn helm_rebalances_the_pipeline() {
    let base = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
    let helm = opt175(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1);
    let stage = Stage::Decode;
    let ffn_cut = 1.0
        - helm.avg_weight_transfer(stage, LayerKind::Ffn).as_secs()
            / base.avg_weight_transfer(stage, LayerKind::Ffn).as_secs();
    assert!((0.45..=0.55).contains(&ffn_cut), "FFN cut {ffn_cut}");
    let mha_rise = helm.avg_weight_transfer(stage, LayerKind::Mha).as_secs()
        / base.avg_weight_transfer(stage, LayerKind::Mha).as_secs()
        - 1.0;
    assert!((0.25..=0.40).contains(&mha_rise), "MHA rise {mha_rise}");
    // The increased MHA load stays below FFN compute: fully hidden.
    assert!(
        helm.avg_weight_transfer(stage, LayerKind::Mha) < helm.avg_compute(stage, LayerKind::Ffn)
    );
}

/// Fig 4e/4f: throughput scales nearly linearly with batch while
/// decode stays memory-bound.
#[test]
fn batching_scales_throughput() {
    let b1 = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
    let b8 = opt175(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 8);
    let scale = b8.throughput_tps() / b1.throughput_tps();
    assert!((6.5..=8.2).contains(&scale), "b8/b1 throughput {scale}");
}
