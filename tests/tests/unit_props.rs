//! Property tests over the `simcore::units` / `simcore::time`
//! arithmetic: the algebraic laws the rest of the workspace leans on
//! (conservation under `+`/`-`, monotone scaling, rate/time duality)
//! plus the contract of the fallible `try_from_*` constructors.

use proptest::prelude::*;
use simcore::time::{SimDuration, SimTime};
use simcore::units::{Bandwidth, ByteSize, UnitError};

fn bytes_strategy() -> impl Strategy<Value = ByteSize> {
    (0.0f64..=64.0).prop_map(ByteSize::from_gb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ByteSize addition is exact (integer-backed), commutative, and
    /// inverted by subtraction — the foundation of ledger balancing.
    #[test]
    fn byte_addition_is_exact_and_invertible(
        a in bytes_strategy(),
        b in bytes_strategy(),
    ) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!(a.saturating_sub(a + b), ByteSize::ZERO);
        prop_assert!(a + b >= a.max(b));
    }

    /// Integer scaling distributes over addition exactly.
    #[test]
    fn byte_scaling_distributes(
        a in bytes_strategy(),
        b in bytes_strategy(),
        k in 0u64..16,
    ) {
        prop_assert_eq!((a + b) * k, a * k + b * k);
    }

    /// Unit conversions round-trip within f64 precision.
    #[test]
    fn byte_conversions_round_trip(gb in 0.0f64..=1024.0) {
        let b = ByteSize::from_gb(gb);
        prop_assert!((b.as_gb() - gb).abs() < 1e-6);
        let mib = ByteSize::from_mib(gb);
        prop_assert!((mib.as_mib() - gb).abs() < 1e-6);
    }

    /// `Bandwidth::time_for` is the inverse of rate x time: moving
    /// the computed duration at the same rate reproduces the bytes.
    #[test]
    fn rate_time_duality(
        bytes in bytes_strategy(),
        gbps in 0.1f64..=400.0,
    ) {
        let bw = Bandwidth::from_gb_per_s(gbps);
        let t = bw.time_for(bytes);
        let back = bw.as_bytes_per_s() * t.as_secs();
        let expect = bytes.as_f64();
        prop_assert!((back - expect).abs() <= 1.0 + expect * 1e-12,
            "{back} vs {expect}");
    }

    /// Scaling a bandwidth scales transfer time inversely; `serial`
    /// composition is never faster than its slowest stage.
    #[test]
    fn bandwidth_scaling_and_serial_composition(
        gbps in 0.1f64..=400.0,
        factor in 0.1f64..=1.0,
        bytes in bytes_strategy(),
    ) {
        let bw = Bandwidth::from_gb_per_s(gbps);
        let slow = bw.scale(factor);
        prop_assert!(slow <= bw);
        prop_assert!(slow.time_for(bytes) >= bw.time_for(bytes));
        let serial = Bandwidth::serial(&[bw, slow]);
        prop_assert!(serial <= slow.min(bw));
    }

    /// Duration arithmetic: addition commutes, `Sum` agrees with a
    /// fold, and millisecond/second views stay consistent.
    #[test]
    fn duration_arithmetic_is_consistent(
        a in 0.0f64..=100.0,
        b in 0.0f64..=100.0,
    ) {
        let (da, db) = (SimDuration::from_secs(a), SimDuration::from_secs(b));
        prop_assert_eq!(da + db, db + da);
        let summed: SimDuration = [da, db, da].into_iter().sum();
        prop_assert!(((da + db + da).as_secs() - summed.as_secs()).abs() < 1e-12);
        prop_assert!((da.as_millis() - a * 1e3).abs() < 1e-6);
        let t = SimTime::ZERO + da + db;
        prop_assert!((t.duration_since(SimTime::ZERO + da).as_secs() - db.as_secs()).abs() < 1e-9);
    }

    /// The fallible constructors accept exactly the values the
    /// panicking ones accept, and name the offending value.
    #[test]
    fn try_constructors_partition_the_domain(v in -100.0f64..=100.0) {
        match Bandwidth::try_from_gb_per_s(v) {
            Ok(bw) => {
                prop_assert!(v >= 0.0);
                prop_assert!((bw.as_gb_per_s() - v).abs() < 1e-9);
            }
            Err(UnitError::InvalidBandwidth(bad)) => {
                prop_assert!(v < 0.0);
                prop_assert_eq!(bad, v);
            }
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
        }
        match SimDuration::try_from_secs(v) {
            Ok(d) => prop_assert!(v >= 0.0 && (d.as_secs() - v).abs() < 1e-12),
            Err(UnitError::InvalidTime(bad)) => {
                prop_assert!(v < 0.0);
                prop_assert_eq!(bad, v);
            }
            Err(other) => prop_assert!(false, "wrong error kind: {other:?}"),
        }
    }
}

#[test]
fn try_constructors_reject_nan() {
    assert!(matches!(
        Bandwidth::try_from_gb_per_s(f64::NAN),
        Err(UnitError::InvalidBandwidth(_))
    ));
    assert!(matches!(
        ByteSize::try_from_gb(f64::NAN),
        Err(UnitError::InvalidByteSize(_))
    ));
    assert!(matches!(
        SimTime::try_from_secs(f64::NAN),
        Err(UnitError::InvalidTime(_))
    ));
}
