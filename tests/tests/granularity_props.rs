//! Byte-identity of the coalesced (macro-stepped) cluster DES against
//! the per-step backend: across schedulers, admission policies,
//! heterogeneous mixes, deadline regimes, batching modes, and both
//! recording modes, the two granularities must produce the *same*
//! `ClusterReport` byte for byte — coalescing is a perf knob, never a
//! semantics knob. The `Debug` rendering prints every float via its
//! shortest round-trip form, so string equality is bit-identity of
//! every aggregate, sample vector, and audit ledger.

use helm_core::exec::RecordMode;
use helm_core::online::{
    run_cluster_mix, run_cluster_mix_cached, run_cluster_mix_traced, AdmissionPolicy,
    CalibrationCache, ClusterSpec, DeadlineSpec, PoissonArrivals, SchedulerKind, StepGranularity,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use simcore::time::SimDuration;
use workload::WorkloadSpec;

/// Small calibration-cheap replica classes (OPT-1.3B on DRAM), one
/// per placement shape, mirroring the planner's template lattice.
fn small_server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_1_3b();
    let memory = HostMemoryConfig::dram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

/// Paper-scale replica classes (OPT-175B on NV-DRAM) for the
/// million-scale byte compares below.
fn paper_server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_175b();
    let memory = HostMemoryConfig::nvdram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

fn deadline_strategy() -> impl Strategy<Value = DeadlineSpec> {
    (
        0u8..3,
        100.0..60_000.0f64,
        10_000.0..120_000.0f64,
        0.0..1.0f64,
        0u64..1_000,
    )
        .prop_map(
            |(select, tight_ms, loose_ms, tight_fraction, seed)| match select {
                0 => DeadlineSpec::None,
                1 => DeadlineSpec::Fixed(SimDuration::from_millis(tight_ms)),
                _ => DeadlineSpec::Bimodal {
                    tight: SimDuration::from_millis(tight_ms),
                    loose: SimDuration::from_millis(loose_ms),
                    tight_fraction,
                    seed,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole property: whatever the draw — scheduler,
    /// admission, mix, deadline regime, batching mode, recording
    /// mode, load — the coalesced run's `ClusterReport` is
    /// byte-identical to the per-step run's.
    #[test]
    fn granularities_agree_across_the_whole_policy_space(
        lambda in 0.05f64..2.0,
        deadlines in deadline_strategy(),
        raw_counts in (0usize..=2, 0usize..=2, 0usize..=2),
        scheduler_sel in 0u8..4,
        admission_sel in 0u8..3,
        queue_cap in 1usize..=3,
        continuous in any::<bool>(),
        record_sel in any::<bool>(),
        num_requests in 10usize..=50,
        seed in 0u64..100_000,
    ) {
        simaudit::force_enable();
        let counts = match raw_counts {
            (0, 0, 0) => [0, 0, 1],
            (a, b, c) => [a, b, c],
        };
        let workload = WorkloadSpec::new(32, 3, 1);
        let servers = [
            small_server(PlacementKind::Helm, 2),
            small_server(PlacementKind::AllCpu, 4),
            small_server(PlacementKind::Baseline, 1),
        ];
        let groups: Vec<(&Server, usize)> = servers
            .iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .collect();
        let scheduler = [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ][scheduler_sel as usize];
        let admission = match admission_sel {
            0 => AdmissionPolicy::AcceptAll,
            1 => AdmissionPolicy::QueueCap(queue_cap),
            _ => AdmissionPolicy::DeadlineFeasible,
        };
        let record = if record_sel {
            RecordMode::Full
        } else {
            RecordMode::Aggregate
        };
        // One shared calibration memo: both granularity runs draw the
        // exact same service models, so any report diff comes from
        // the event engine alone.
        let mut cache = CalibrationCache::new();
        let mut run = |granularity| {
            let spec = ClusterSpec::new(1)
                .with_scheduler(scheduler)
                .with_admission(admission)
                .with_deadlines(deadlines)
                .with_continuous(continuous)
                .with_record(record)
                .with_granularity(granularity);
            let mut arrivals = PoissonArrivals::new(lambda, seed);
            let report = run_cluster_mix_cached(
                &groups, &workload, &mut arrivals, num_requests, spec, &mut cache,
            )
            .unwrap();
            assert!(report.audit.is_some(), "auditing forced on");
            format!("{report:?}")
        };
        let step = run(StepGranularity::PerStep);
        let coalesced = run(StepGranularity::Coalesced);
        prop_assert_eq!(
            coalesced, step,
            "granularities diverged (scheduler {}, admission {}, continuous {}, \
             record {:?}, counts {:?})",
            scheduler, admission, continuous, record, counts
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Span trees are part of the byte-identity contract: the
    /// coalesced engine synthesizes per-step decode boundaries from
    /// span arithmetic (it never re-runs per-step), and whatever the
    /// draw the resulting `Trace` — every span name, depth, and tick
    /// boundary, every attribution bucket — must render byte-identical
    /// to the per-step engine's. The reports must stay byte-identical
    /// with tracing enabled too.
    #[test]
    fn span_trees_byte_identical_across_granularities(
        lambda in 0.05f64..2.0,
        deadlines in deadline_strategy(),
        scheduler_sel in 0u8..4,
        continuous in any::<bool>(),
        num_requests in 5usize..=30,
        seed in 0u64..100_000,
    ) {
        let workload = WorkloadSpec::new(32, 3, 1);
        let servers = [
            small_server(PlacementKind::Helm, 2),
            small_server(PlacementKind::AllCpu, 4),
        ];
        let groups: Vec<(&Server, usize)> = servers.iter().map(|s| (s, 1)).collect();
        let scheduler = [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ][scheduler_sel as usize];
        let mut cache = CalibrationCache::new();
        let mut run = |granularity| {
            let spec = ClusterSpec::new(1)
                .with_scheduler(scheduler)
                .with_deadlines(deadlines)
                .with_continuous(continuous)
                .with_granularity(granularity);
            let mut arrivals = PoissonArrivals::new(lambda, seed);
            let (report, trace) = run_cluster_mix_traced(
                &groups, &workload, &mut arrivals, num_requests, spec, &mut cache,
            )
            .unwrap();
            (format!("{report:?}"), format!("{trace:?}"))
        };
        let (step_report, step_trace) = run(StepGranularity::PerStep);
        let (coal_report, coal_trace) = run(StepGranularity::Coalesced);
        prop_assert_eq!(
            coal_trace, step_trace,
            "span trees diverged across granularities (scheduler {}, continuous {})",
            scheduler, continuous
        );
        prop_assert_eq!(
            coal_report, step_report,
            "traced reports diverged across granularities"
        );
    }
}

/// Byte-identity at production scale: a 100 000-request mixed-cluster
/// run must render the *entire* `ClusterReport` identically across
/// granularities, in both recording modes — the volume the coalesced
/// path exists for.
#[test]
fn granularities_byte_identical_at_1e5_requests() {
    let workload = WorkloadSpec::paper_default();
    let helm = paper_server(PlacementKind::Helm, 4);
    let allcpu = paper_server(PlacementKind::AllCpu, 44);
    let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 2)];
    for record in [RecordMode::Full, RecordMode::Aggregate] {
        let run = |granularity| {
            let spec = ClusterSpec::new(1)
                .with_scheduler(SchedulerKind::JoinShortestQueue)
                .with_record(record)
                .with_granularity(granularity);
            let mut arrivals = PoissonArrivals::new(2.0, 97);
            let report = run_cluster_mix(groups, &workload, &mut arrivals, 100_000, spec)
                .expect("cluster runs");
            format!("{report:?}")
        };
        assert_eq!(
            run(StepGranularity::PerStep),
            run(StepGranularity::Coalesced),
            "granularities diverged at 1e5 requests ({record:?})"
        );
    }
}

/// The continuous-batching variant at 1e4 requests: decode spans are
/// where coalescing actually rewrites the event flow (every step is a
/// work unit), so the byte-identity claim gets its own volume check
/// there.
#[test]
fn granularities_byte_identical_with_continuous_decode_spans() {
    let workload = WorkloadSpec::paper_default();
    let helm = paper_server(PlacementKind::Helm, 4);
    let allcpu = paper_server(PlacementKind::AllCpu, 44);
    let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 2)];
    let run = |granularity| {
        let spec = ClusterSpec::new(1)
            .with_scheduler(SchedulerKind::JoinShortestQueue)
            .with_continuous(true)
            .with_record(RecordMode::Aggregate)
            .with_granularity(granularity);
        let mut arrivals = PoissonArrivals::new(2.0, 97);
        let report =
            run_cluster_mix(groups, &workload, &mut arrivals, 10_000, spec).expect("cluster runs");
        format!("{report:?}")
    };
    assert_eq!(
        run(StepGranularity::PerStep),
        run(StepGranularity::Coalesced),
        "granularities diverged on continuous decode spans"
    );
}
