//! Failure-injection tests: the serving stack must degrade
//! gracefully — and predictably — when the platform does.

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn serve(memory: HostMemoryConfig, placement: PlacementKind) -> helm_core::RunReport {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(1);
    Server::new(SystemConfig::paper_platform(memory), model, policy)
        .expect("fits")
        .run(&WorkloadSpec::paper_default())
        .expect("serves")
}

#[test]
fn thermal_throttling_degrades_monotonically() {
    let mut last = 0.0;
    for factor in [1.0, 0.8, 0.5, 0.25] {
        let memory = HostMemoryConfig::nvdram().with_cpu_throttle(factor, 1.0);
        let tbt = serve(memory, PlacementKind::Baseline).tbt_ms();
        assert!(tbt >= last, "factor {factor}: {tbt} < {last}");
        last = tbt;
    }
}

#[test]
fn transfer_bound_serving_scales_inversely_with_throttle() {
    // Decode is transfer-bound at batch 1: halving host bandwidth
    // roughly doubles the transfer side of every step.
    let healthy = serve(HostMemoryConfig::nvdram(), PlacementKind::Baseline);
    let halved = serve(
        HostMemoryConfig::nvdram().with_cpu_throttle(0.5, 1.0),
        PlacementKind::Baseline,
    );
    let ratio = halved.tbt_ms() / healthy.tbt_ms();
    assert!(
        (1.5..=2.1).contains(&ratio),
        "TBT should roughly double: x{ratio}"
    );
}

#[test]
fn helm_still_helps_on_a_degraded_platform() {
    // The placement insight is relative: even a throttled device
    // benefits from a balanced pipeline.
    let memory = HostMemoryConfig::nvdram().with_cpu_throttle(0.6, 1.5);
    let base = serve(memory.clone(), PlacementKind::Baseline);
    let helm = serve(memory, PlacementKind::Helm);
    let gain = 1.0 - helm.tbt_ms() / base.tbt_ms();
    assert!(gain > 0.15, "HeLM gain under throttle {gain}");
}

#[test]
fn capacity_is_unaffected_by_throttling() {
    // Degradation changes rates, not placement feasibility.
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(PlacementKind::AllCpu)
        .with_compression(true);
    let healthy = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model.clone(),
        policy.clone(),
    )
    .unwrap();
    let throttled = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram().with_cpu_throttle(0.3, 2.0)),
        model,
        policy,
    )
    .unwrap();
    let ws = WorkloadSpec::paper_default();
    assert_eq!(healthy.max_batch(&ws), throttled.max_batch(&ws));
}

#[test]
fn autoplace_adapts_to_degradation() {
    // With the host tier throttled hard, transfers dominate even
    // more; the latency search still returns a feasible placement
    // that beats the baseline.
    let memory = HostMemoryConfig::nvdram().with_cpu_throttle(0.5, 1.0);
    let system = SystemConfig::paper_platform(memory.clone());
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_compression(true)
        .with_batch_size(1);
    let auto = helm_core::autoplace::optimize(
        &system,
        &model,
        &policy,
        &WorkloadSpec::paper_default(),
        helm_core::autoplace::Objective::Latency,
    )
    .expect("search succeeds");
    let base = serve(memory, PlacementKind::Baseline);
    assert!(auto.report.tbt_ms() < base.tbt_ms());
}
