//! Integration tests for the multi-pipeline online serving path:
//! cross-validation of the hand-rolled loop against the event-driven
//! cluster with arrivals landing mid-batch, request conservation
//! under randomized load/dispatch, saturation absorption by extra
//! replicas, and the cancelled-transfer path of the byte auditor.

use helm_core::online::{
    run_cluster, run_online, run_online_des, ClusterSpec, PoissonArrivals, SchedulerKind,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::{HostMemoryConfig, MemoryConfigKind};
use llm::ModelConfig;
use proptest::prelude::*;
use simaudit::Auditor;
use simcore::units::{Bandwidth, ByteSize};
use simcore::SimTime;
use workload::WorkloadSpec;
use xfer::link::CappedLink;

fn server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
    .expect("paper config fits")
}

#[test]
fn loop_and_des_agree_with_arrivals_landing_mid_batch() {
    // λ chosen so the mean inter-arrival (~10 s) is far below the
    // pipeline service time (minutes): nearly every arrival lands
    // while a batch is in flight and must wait for the free-up
    // instant. The loop and the event engine must then agree on the
    // exact batch formation, not just on aggregate statistics.
    let ws = WorkloadSpec::paper_default();
    for (placement, batch) in [(PlacementKind::Baseline, 8u32), (PlacementKind::AllCpu, 44)] {
        let s = server(placement, batch);
        let a = run_online(&s, &ws, &mut PoissonArrivals::new(0.1, 77), 64).expect("loop");
        let b = run_online_des(&s, &ws, &mut PoissonArrivals::new(0.1, 77), 64).expect("des");
        // Mid-batch arrivals actually happened: some batch is > 1.
        assert!(
            a.batch_sizes.iter().any(|&x| x > 1),
            "{placement}: load too light to exercise mid-batch arrivals"
        );
        assert_eq!(a.batch_sizes, b.batch_sizes, "{placement} batches");
        assert_eq!(
            a.makespan.as_secs().to_bits(),
            b.makespan.as_secs().to_bits(),
            "{placement} makespan"
        );
        assert_eq!(
            a.queue_delay.samples(),
            b.queue_delay.samples(),
            "{placement} queue delays"
        );
        assert_eq!(
            a.e2e_latency.samples(),
            b.e2e_latency.samples(),
            "{placement} latencies"
        );
    }
}

#[test]
fn four_pipelines_absorb_a_rate_that_saturates_one() {
    // Acceptance scenario from the issue: a λ that saturates the N=1
    // All-CPU pipeline is sustained by N=4, with the online simaudit
    // conservation checks passing.
    simaudit::force_enable();
    let s = server(PlacementKind::AllCpu, 8);
    let ws = WorkloadSpec::paper_default();
    let lambda = 0.10;
    let one = run_cluster(
        &s,
        &ws,
        &mut PoissonArrivals::new(lambda, 5),
        100,
        ClusterSpec::new(1),
    )
    .expect("N=1");
    let four = run_cluster(
        &s,
        &ws,
        &mut PoissonArrivals::new(lambda, 5),
        100,
        ClusterSpec::new(4).with_scheduler(SchedulerKind::JoinShortestQueue),
    )
    .expect("N=4");
    assert!(
        one.utilization > 0.95,
        "N=1 not saturated: {}",
        one.utilization
    );
    assert!(
        four.e2e_percentile_ms(95.0) < one.e2e_percentile_ms(95.0) / 2.0,
        "N=4 p95 {} vs N=1 {}",
        four.e2e_percentile_ms(95.0),
        one.e2e_percentile_ms(95.0)
    );
    assert!(four.tokens_per_s > one.tokens_per_s * 1.5);
    for r in [&one, &four] {
        let audit = r.audit.as_ref().expect("auditing forced on");
        assert!(audit.is_clean(), "audit:\n{audit}");
        assert_eq!(audit.completed_with_prefix("requests:"), 100);
    }
}

#[test]
fn audit_dropped_balances_a_cancelled_transfer() {
    // The DES transfer path can abandon an in-flight DMA (e.g. a
    // prefetch made useless by a placement change). The byte auditor
    // must then balance the channel through `dropped`, not lose the
    // bytes: scheduled = delivered + dropped.
    simaudit::force_enable();
    let mut audit = Auditor::capture();
    let mut link = CappedLink::new(Bandwidth::from_gb_per_s(20.0));
    let total = 10e9;
    audit.scheduled("h2d:weights", ByteSize::from_bytes(total as u64));
    audit.scheduled("h2d:weights", ByteSize::from_bytes(total as u64));
    let keep = link.start(SimTime::ZERO, total, Bandwidth::from_gb_per_s(100.0));
    let cancel = link.start(SimTime::ZERO, total, Bandwidth::from_gb_per_s(100.0));

    // Cancel the second flow mid-flight; its progress so far counts
    // as delivered, the remainder as dropped.
    let at = SimTime::from_secs(0.5);
    let remaining = link.cancel(at, cancel);
    assert!(remaining > 0.0 && remaining < total);
    audit.delivered(
        "h2d:weights",
        ByteSize::from_bytes((total - remaining) as u64),
    );
    audit.dropped("h2d:weights", ByteSize::from_bytes(remaining as u64));

    // The surviving flow finishes and delivers everything.
    let (done, id) = link.next_completion(at).expect("one flow left");
    assert_eq!(id, keep);
    link.complete(done, keep);
    audit.delivered("h2d:weights", ByteSize::from_bytes(total as u64));

    let report = audit.finish();
    assert!(report.is_clean(), "audit:\n{report}");
    let (_, ledger) = report
        .ledgers
        .iter()
        .find(|(name, _)| name == "h2d:weights")
        .expect("channel ledgered");
    assert_eq!(ledger.dropped.as_u64(), remaining as u64);
    assert_eq!(
        ledger.scheduled.as_u64(),
        ledger.delivered.as_u64() + ledger.dropped.as_u64()
    );
}

proptest! {
    // Each case runs two full pipeline calibrations; keep the count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded dispatch conserves requests: whatever the arrival
    /// rate, seed, replica count, scheduler, and batching granularity,
    /// every arrival is served exactly once and the audit ledgers
    /// balance.
    #[test]
    fn sharded_dispatch_conserves_requests(
        lambda in 0.01f64..0.5,
        seed in 0u64..1000,
        pipelines in 1usize..=5,
        jsq in any::<bool>(),
        continuous in any::<bool>(),
        n in 1usize..=40,
    ) {
        simaudit::force_enable();
        let s = server(PlacementKind::Helm, 4);
        let spec = ClusterSpec::new(pipelines)
            .with_scheduler(if jsq {
                SchedulerKind::JoinShortestQueue
            } else {
                SchedulerKind::RoundRobin
            })
            .with_continuous(continuous);
        let ws = WorkloadSpec::paper_default();
        let r = run_cluster(&s, &ws, &mut PoissonArrivals::new(lambda, seed), n, spec)
            .expect("cluster run");
        prop_assert_eq!(r.served, n);
        prop_assert_eq!(r.queue_delay.count(), n);
        prop_assert_eq!(r.e2e_latency.count(), n);
        let per_pipe: usize = r.per_pipeline.iter().map(|p| p.served).sum();
        prop_assert_eq!(per_pipe, n);
        if !continuous {
            let batched: u32 = r.batch_sizes.iter().sum();
            prop_assert_eq!(batched as usize, n);
        }
        let audit = r.audit.as_ref().expect("auditing forced on");
        prop_assert!(audit.is_clean(), "audit:\n{}", audit);
        prop_assert_eq!(audit.completed_with_prefix("requests:"), n as u64);
    }
}
