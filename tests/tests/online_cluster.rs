//! Integration tests for the multi-pipeline online serving path:
//! cross-validation of the hand-rolled loop against the event-driven
//! cluster with arrivals landing mid-batch, request conservation
//! under randomized load/dispatch, saturation absorption by extra
//! replicas, and the cancelled-transfer path of the byte auditor.

use helm_core::online::{
    run_cluster, run_cluster_mix, run_online, run_online_des, AdmissionPolicy, ClusterSpec,
    DeadlineSpec, PoissonArrivals, SchedulerKind,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::{HostMemoryConfig, MemoryConfigKind};
use llm::ModelConfig;
use proptest::prelude::*;
use simaudit::Auditor;
use simcore::units::{Bandwidth, ByteSize};
use simcore::{SimDuration, SimTime};
use workload::WorkloadSpec;
use xfer::link::CappedLink;

fn server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
    .expect("paper config fits")
}

#[test]
fn loop_and_des_agree_with_arrivals_landing_mid_batch() {
    // λ chosen so the mean inter-arrival (~10 s) is far below the
    // pipeline service time (minutes): nearly every arrival lands
    // while a batch is in flight and must wait for the free-up
    // instant. The loop and the event engine must then agree on the
    // exact batch formation, not just on aggregate statistics.
    let ws = WorkloadSpec::paper_default();
    for (placement, batch) in [(PlacementKind::Baseline, 8u32), (PlacementKind::AllCpu, 44)] {
        let s = server(placement, batch);
        let a = run_online(&s, &ws, &mut PoissonArrivals::new(0.1, 77), 64).expect("loop");
        let b = run_online_des(&s, &ws, &mut PoissonArrivals::new(0.1, 77), 64).expect("des");
        // Mid-batch arrivals actually happened: some batch is > 1.
        assert!(
            a.batch_sizes.iter().any(|&x| x > 1),
            "{placement}: load too light to exercise mid-batch arrivals"
        );
        assert_eq!(a.batch_sizes, b.batch_sizes, "{placement} batches");
        assert_eq!(
            a.makespan.as_secs().to_bits(),
            b.makespan.as_secs().to_bits(),
            "{placement} makespan"
        );
        assert_eq!(
            a.queue_delay.samples(),
            b.queue_delay.samples(),
            "{placement} queue delays"
        );
        assert_eq!(
            a.e2e_latency.samples(),
            b.e2e_latency.samples(),
            "{placement} latencies"
        );
    }
}

#[test]
fn four_pipelines_absorb_a_rate_that_saturates_one() {
    // Acceptance scenario from the issue: a λ that saturates the N=1
    // All-CPU pipeline is sustained by N=4, with the online simaudit
    // conservation checks passing.
    simaudit::force_enable();
    let s = server(PlacementKind::AllCpu, 8);
    let ws = WorkloadSpec::paper_default();
    let lambda = 0.10;
    let one = run_cluster(
        &s,
        &ws,
        &mut PoissonArrivals::new(lambda, 5),
        100,
        ClusterSpec::new(1),
    )
    .expect("N=1");
    let four = run_cluster(
        &s,
        &ws,
        &mut PoissonArrivals::new(lambda, 5),
        100,
        ClusterSpec::new(4).with_scheduler(SchedulerKind::JoinShortestQueue),
    )
    .expect("N=4");
    assert!(
        one.utilization > 0.95,
        "N=1 not saturated: {}",
        one.utilization
    );
    assert!(
        four.e2e_percentile_ms(95.0) < one.e2e_percentile_ms(95.0) / 2.0,
        "N=4 p95 {} vs N=1 {}",
        four.e2e_percentile_ms(95.0),
        one.e2e_percentile_ms(95.0)
    );
    assert!(four.tokens_per_s > one.tokens_per_s * 1.5);
    for r in [&one, &four] {
        let audit = r.audit.as_ref().expect("auditing forced on");
        assert!(audit.is_clean(), "audit:\n{audit}");
        assert_eq!(audit.completed_with_prefix("requests:"), 100);
    }
}

#[test]
fn audit_dropped_balances_a_cancelled_transfer() {
    // The DES transfer path can abandon an in-flight DMA (e.g. a
    // prefetch made useless by a placement change). The byte auditor
    // must then balance the channel through `dropped`, not lose the
    // bytes: scheduled = delivered + dropped.
    simaudit::force_enable();
    let mut audit = Auditor::capture();
    let mut link = CappedLink::new(Bandwidth::from_gb_per_s(20.0));
    let total = 10e9;
    audit.scheduled("h2d:weights", ByteSize::from_bytes(total as u64));
    audit.scheduled("h2d:weights", ByteSize::from_bytes(total as u64));
    let keep = link.start(SimTime::ZERO, total, Bandwidth::from_gb_per_s(100.0));
    let cancel = link.start(SimTime::ZERO, total, Bandwidth::from_gb_per_s(100.0));

    // Cancel the second flow mid-flight; its progress so far counts
    // as delivered, the remainder as dropped.
    let at = SimTime::from_secs(0.5);
    let remaining = link.cancel(at, cancel);
    assert!(remaining > 0.0 && remaining < total);
    audit.delivered(
        "h2d:weights",
        ByteSize::from_bytes((total - remaining) as u64),
    );
    audit.dropped("h2d:weights", ByteSize::from_bytes(remaining as u64));

    // The surviving flow finishes and delivers everything.
    let (done, id) = link.next_completion(at).expect("one flow left");
    assert_eq!(id, keep);
    link.complete(done, keep);
    audit.delivered("h2d:weights", ByteSize::from_bytes(total as u64));

    let report = audit.finish();
    assert!(report.is_clean(), "audit:\n{report}");
    let (_, ledger) = report
        .ledgers
        .iter()
        .find(|(name, _)| name == "h2d:weights")
        .expect("channel ledgered");
    assert_eq!(ledger.dropped.as_u64(), remaining as u64);
    assert_eq!(
        ledger.scheduled.as_u64(),
        ledger.delivered.as_u64() + ledger.dropped.as_u64()
    );
}

#[test]
fn transfer_completing_one_step_before_batch_balances_the_ledger() {
    // Epoch edge case on the transfer path: a weight prefetch whose
    // completion lands exactly one decode step before the batch
    // boundary. Coalesced spans replay flow completions through
    // `CappedLink::drain`, so the completion instant and the
    // delivered byte count must match the stepwise water-filling
    // arithmetic exactly, and the drain anchored at the boundary
    // itself must be a no-op with the ledger already balanced.
    simaudit::force_enable();
    let mut audit = Auditor::capture();
    let bw = Bandwidth::from_gb_per_s(10.0);
    let mut link = CappedLink::new(bw);
    // Batch span [0, 10] s with 1 s decode steps; the flow's size at
    // the link rate completes at exactly t = 9 s.
    let step = SimDuration::from_secs(1.0);
    let batch_done = SimTime::from_secs(10.0);
    let bytes = 9.0 * bw.as_bytes_per_s();
    audit.scheduled("h2d:weights", ByteSize::from_bytes(bytes as u64));
    let id = link.start(SimTime::ZERO, bytes, bw);
    let mut completions = Vec::new();
    let end = link.drain(SimTime::ZERO, |at, done| completions.push((at, done)));
    assert_eq!(completions.len(), 1);
    let (at, done) = completions[0];
    assert_eq!(done, id);
    assert_eq!(
        at.as_secs().to_bits(),
        (batch_done.as_secs() - step.as_secs()).to_bits(),
        "flow must complete exactly one step before the batch boundary"
    );
    assert_eq!(end.as_secs().to_bits(), at.as_secs().to_bits());
    audit.delivered("h2d:weights", ByteSize::from_bytes(bytes as u64));
    let idle = link.drain(batch_done, |_, _| unreachable!("no flows left"));
    assert_eq!(idle.as_secs().to_bits(), batch_done.as_secs().to_bits());
    let report = audit.finish();
    assert!(report.is_clean(), "audit:\n{report}");
    let (_, ledger) = report
        .ledgers
        .iter()
        .find(|(name, _)| name == "h2d:weights")
        .expect("channel ledgered");
    assert_eq!(ledger.scheduled.as_u64(), ledger.delivered.as_u64());
    assert_eq!(ledger.dropped.as_u64(), 0);
}

proptest! {
    // Each case runs two full pipeline calibrations; keep the count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded dispatch conserves requests: whatever the arrival
    /// rate, seed, replica count, scheduler, and batching granularity,
    /// every arrival is served exactly once and the audit ledgers
    /// balance.
    #[test]
    fn sharded_dispatch_conserves_requests(
        lambda in 0.01f64..0.5,
        seed in 0u64..1000,
        pipelines in 1usize..=5,
        jsq in any::<bool>(),
        continuous in any::<bool>(),
        n in 1usize..=40,
    ) {
        simaudit::force_enable();
        let s = server(PlacementKind::Helm, 4);
        let spec = ClusterSpec::new(pipelines)
            .with_scheduler(if jsq {
                SchedulerKind::JoinShortestQueue
            } else {
                SchedulerKind::RoundRobin
            })
            .with_continuous(continuous);
        let ws = WorkloadSpec::paper_default();
        let r = run_cluster(&s, &ws, &mut PoissonArrivals::new(lambda, seed), n, spec)
            .expect("cluster run");
        prop_assert_eq!(r.served, n as u64);
        prop_assert_eq!(r.queue_delay.count(), n as u64);
        prop_assert_eq!(r.e2e_latency.count(), n as u64);
        let per_pipe: u64 = r.per_pipeline.iter().map(|p| p.served).sum();
        prop_assert_eq!(per_pipe, n as u64);
        if !continuous {
            let batched: u32 = r.batch_sizes.iter().sum();
            prop_assert_eq!(batched as usize, n);
        }
        let audit = r.audit.as_ref().expect("auditing forced on");
        prop_assert!(audit.is_clean(), "audit:\n{}", audit);
        prop_assert_eq!(audit.completed_with_prefix("requests:"), n as u64);
    }

    /// Admission control and deadline-aware dispatch never lose a
    /// request, across schedulers × admission policies ×
    /// heterogeneous mixes: every arrival is served, rejected, or
    /// expired — never silently dropped — and the per-pipeline audit
    /// ledgers balance (`enqueued == completed + abandoned`).
    #[test]
    fn admission_and_mixes_conserve_requests(
        lambda in 0.02f64..0.4,
        seed in 0u64..1000,
        sched_idx in 0usize..4,
        adm_idx in 0usize..3,
        helm_replicas in 1usize..=2,
        allcpu_replicas in 0usize..=2,
        continuous in any::<bool>(),
        slo_s in 150.0f64..2000.0,
        n in 1usize..=40,
    ) {
        simaudit::force_enable();
        let scheduler = [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ][sched_idx];
        let admission = [
            AdmissionPolicy::AcceptAll,
            AdmissionPolicy::QueueCap(3),
            AdmissionPolicy::DeadlineFeasible,
        ][adm_idx];
        let helm = server(PlacementKind::Helm, 4);
        let allcpu = server(PlacementKind::AllCpu, 44);
        let mut groups = vec![(&helm, helm_replicas)];
        if allcpu_replicas > 0 {
            groups.push((&allcpu, allcpu_replicas));
        }
        let spec = ClusterSpec::new(1)
            .with_scheduler(scheduler)
            .with_admission(admission)
            .with_continuous(continuous)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(slo_s)));
        let ws = WorkloadSpec::paper_default();
        let r = run_cluster_mix(&groups, &ws, &mut PoissonArrivals::new(lambda, seed), n, spec)
            .expect("cluster run");
        prop_assert_eq!(r.served + r.rejected + r.expired, n as u64);
        prop_assert_eq!(r.queue_delay.count(), r.served);
        prop_assert_eq!(r.e2e_latency.count(), r.served);
        prop_assert_eq!(r.met + r.slo_violations, r.served);
        let audit = r.audit.as_ref().expect("auditing forced on");
        prop_assert!(audit.is_clean(), "audit:\n{}", audit);
        prop_assert_eq!(audit.enqueued_with_prefix("requests:"), n as u64);
        prop_assert_eq!(
            audit.completed_with_prefix("requests:") + audit.abandoned_with_prefix("requests:"),
            n as u64
        );
        for (p, stats) in r.per_pipeline.iter().enumerate() {
            match audit.count_ledger(&format!("requests:pipe{p}")) {
                Some(l) => {
                    prop_assert_eq!(l.enqueued, l.completed + l.abandoned);
                    prop_assert_eq!(l.completed, stats.served);
                    prop_assert_eq!(l.abandoned, stats.rejected + stats.expired);
                }
                None => prop_assert_eq!(stats.served + stats.rejected + stats.expired, 0),
            }
        }
    }

    /// Tightening a uniform SLO never increases goodput: under
    /// accept-all admission with a deadline-blind dispatcher the
    /// serving trajectory is SLO-invariant, so the requests meeting a
    /// tighter deadline are a subset of those meeting a looser one.
    #[test]
    fn tighter_slo_never_increases_goodput(
        lambda in 0.02f64..0.3,
        seed in 0u64..1000,
        jsq in any::<bool>(),
        tight_s in 100.0f64..500.0,
        slack_s in 1.0f64..2000.0,
        n in 1usize..=30,
    ) {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let sched = if jsq {
            SchedulerKind::JoinShortestQueue
        } else {
            SchedulerKind::RoundRobin
        };
        let run = |slo: f64| {
            run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(lambda, seed),
                n,
                ClusterSpec::new(2)
                    .with_scheduler(sched)
                    .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(slo))),
            )
            .expect("cluster run")
        };
        let tight = run(tight_s);
        let loose = run(tight_s + slack_s);
        prop_assert_eq!(tight.served, n as u64);
        prop_assert_eq!(loose.served, n as u64);
        // The deadline is observation-only here, so the trajectories
        // are identical and the comparison is exact, not statistical.
        prop_assert_eq!(
            tight.makespan.as_secs().to_bits(),
            loose.makespan.as_secs().to_bits()
        );
        prop_assert!(tight.met <= loose.met, "tight {} loose {}", tight.met, loose.met);
        prop_assert!(tight.tokens_per_s_met <= loose.tokens_per_s_met);
    }
}

#[test]
fn mix_beats_both_homogeneous_clusters_under_mixed_slo() {
    // The tentpole scenario: mixed traffic where 10% of requests are
    // latency-critical (130 s SLO — only the HeLM batch-4 replica can
    // meet it, All-CPU's batch-1 service time is already ~137 s) and
    // 90% are throughput traffic (400 s SLO — needs All-CPU's
    // batch-44 capacity at this λ: HeLM replicas serve ~0.04 req/s,
    // so an all-HeLM cluster's backlog outgrows the loose deadline
    // early in the run). A heterogeneous {HeLM-4, AllCpu-44} pair
    // behind a deadline-aware dispatcher serves the blend better
    // than two replicas of either homogeneous configuration: best-fit
    // dispatch keeps the HeLM replica free for the tight traffic only
    // it can serve in time.
    simaudit::force_enable();
    let ws = WorkloadSpec::paper_default();
    let helm = server(PlacementKind::Helm, 4);
    let allcpu = server(PlacementKind::AllCpu, 44);
    let deadlines = DeadlineSpec::Bimodal {
        tight: SimDuration::from_secs(130.0),
        loose: SimDuration::from_secs(400.0),
        tight_fraction: 0.1,
        seed: 9,
    };
    let spec = ClusterSpec::new(1)
        .with_scheduler(SchedulerKind::DeadlineAware)
        .with_deadlines(deadlines);
    let lambda = 0.15;
    let n = 150;
    let run = |groups: &[(&Server, usize)]| {
        run_cluster_mix(groups, &ws, &mut PoissonArrivals::new(lambda, 9), n, spec)
            .expect("cluster run")
    };
    let mix = run(&[(&helm, 1), (&allcpu, 1)]);
    let homog_helm = run(&[(&helm, 2)]);
    let homog_allcpu = run(&[(&allcpu, 2)]);
    for (name, r) in [
        ("mix", &mix),
        ("all-helm", &homog_helm),
        ("all-allcpu", &homog_allcpu),
    ] {
        assert_eq!(
            r.served + r.rejected + r.expired,
            n as u64,
            "{name} conservation"
        );
        let audit = r.audit.as_ref().expect("auditing forced on");
        assert!(audit.is_clean(), "{name} audit:\n{audit}");
    }
    // The mix wins on SLO attainment (requests finishing under their
    // deadline, the p95-under-SLO proxy the bench sweeps): it meets
    // tight deadlines the all-AllCpu cluster structurally cannot...
    assert!(
        mix.slo_attainment() > homog_allcpu.slo_attainment(),
        "mix {} vs all-allcpu {}",
        mix.slo_attainment(),
        homog_allcpu.slo_attainment()
    );
    assert!(mix.met > homog_allcpu.met);
    // ...while clearing the backlog the all-HeLM cluster drowns in.
    assert!(
        mix.slo_attainment() > homog_helm.slo_attainment(),
        "mix {} vs all-helm {}",
        mix.slo_attainment(),
        homog_helm.slo_attainment()
    );
    assert!(mix.tokens_per_s_met > homog_helm.tokens_per_s_met);
}
