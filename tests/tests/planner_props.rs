//! Properties of the capacity planner: soundness of the analytical
//! attainment bound (bound-feasible ⊇ DES-feasible over random
//! traffic, mixes, schedulers, and admission policies), thread-count
//! determinism of the search, and minimum-resource correctness of the
//! chosen configuration.

use helm_core::exec::RecordMode;
use helm_core::online::{
    run_cluster_mix_cached, AdmissionPolicy, CalibrationCache, ClusterSpec, DeadlineSpec,
    PoissonArrivals, SchedulerKind, ServiceModel, StepGranularity,
};
use helm_core::placement::PlacementKind;
use helm_core::planner::{
    attainment_bound, plan, GroupTemplate, PlanReport, PlanSpace, PlanTarget, SearchBudget,
    TrafficSpec,
};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use simcore::time::SimDuration;
use workload::WorkloadSpec;

/// The template lattice every test shares: a latency-, a throughput-,
/// and a baseline-shaped replica class of OPT-1.3B on DRAM (small
/// enough that calibration is cheap inside proptest).
const TEMPLATES: [(PlacementKind, u32); 3] = [
    (PlacementKind::Helm, 2),
    (PlacementKind::AllCpu, 4),
    (PlacementKind::Baseline, 1),
];

fn server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_1_3b();
    let memory = HostMemoryConfig::dram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

fn deadline_strategy() -> impl Strategy<Value = DeadlineSpec> {
    (
        0u8..3,
        100.0..60_000.0f64,
        10_000.0..120_000.0f64,
        0.0..1.0f64,
        0u64..1_000,
    )
        .prop_map(
            |(select, tight_ms, loose_ms, tight_fraction, seed)| match select {
                0 => DeadlineSpec::None,
                1 => DeadlineSpec::Fixed(SimDuration::from_millis(tight_ms)),
                _ => DeadlineSpec::Bimodal {
                    tight: SimDuration::from_millis(tight_ms),
                    loose: SimDuration::from_millis(loose_ms),
                    tight_fraction,
                    seed,
                },
            },
        )
}

/// Debug-renders a plan report with the wall clocks zeroed — the only
/// legitimately nondeterministic fields — so equality of the strings
/// is bit-identity of everything else (floats print as shortest
/// round-trip).
fn fingerprint(report: &PlanReport) -> String {
    let mut clone = report.clone();
    clone.stats.wall_ms = 0.0;
    clone.confirm_wall_ms = 0.0;
    format!("{clone:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness of the pruning bound: no scheduler, admission
    /// policy, batching mode, or mix can push the DES's attainment
    /// above [`attainment_bound`] for the same realized traffic — the
    /// property that makes pruning safe.
    #[test]
    fn bound_never_undercuts_the_des(
        lambda in 0.05f64..2.0,
        deadlines in deadline_strategy(),
        raw_counts in (0usize..=2, 0usize..=2, 0usize..=2),
        scheduler_sel in 0u8..4,
        admission_sel in 0u8..3,
        queue_cap in 1usize..=3,
        continuous in any::<bool>(),
        num_requests in 10usize..=40,
        seed in 0u64..100_000,
    ) {
        // An all-zero draw has no cluster to simulate; give it the
        // cheapest nonempty shape instead of discarding the case.
        let counts = match raw_counts {
            (0, 0, 0) => [0, 0, 1],
            (a, b, c) => [a, b, c],
        };
        let workload = WorkloadSpec::new(32, 3, 1);
        let servers: Vec<Server> = TEMPLATES.iter().map(|&(p, b)| server(p, b)).collect();
        let mut cache = CalibrationCache::new();
        let models: Vec<ServiceModel> = servers
            .iter()
            .map(|s| cache.get_or_calibrate(s, &workload).unwrap())
            .collect();
        let scheduler = [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ][scheduler_sel as usize];
        let admission = match admission_sel {
            0 => AdmissionPolicy::AcceptAll,
            1 => AdmissionPolicy::QueueCap(queue_cap),
            _ => AdmissionPolicy::DeadlineFeasible,
        };
        let groups: Vec<(&Server, usize)> = servers
            .iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .collect();
        let spec = ClusterSpec::new(1)
            .with_scheduler(scheduler)
            .with_admission(admission)
            .with_deadlines(deadlines)
            .with_continuous(continuous)
            .with_record(RecordMode::Aggregate);
        let mut arrivals = PoissonArrivals::new(lambda, seed);
        let report = run_cluster_mix_cached(
            &groups, &workload, &mut arrivals, num_requests, spec, &mut cache,
        ).unwrap();
        let traffic = TrafficSpec::new(lambda, num_requests, seed).with_deadlines(deadlines);
        let model_groups: Vec<(&ServiceModel, usize)> =
            models.iter().zip(counts).collect();
        let bound = attainment_bound(&model_groups, &traffic, continuous);
        prop_assert!(
            report.slo_attainment() <= bound + 1e-9,
            "DES attainment {} exceeds the analytical bound {bound} \
             (scheduler {scheduler}, admission {admission}, continuous {continuous}, \
             counts {counts:?})",
            report.slo_attainment(),
        );
    }

    /// The planner's full report — chosen configuration, confirmation
    /// run, search statistics — is bit-identical at any thread count
    /// and across repeated runs.
    #[test]
    fn plan_is_thread_deterministic(
        lambda in 0.1f64..1.0,
        slo_ms in 1_000.0..30_000.0f64,
        seed in 0u64..10_000,
    ) {
        let workload = WorkloadSpec::new(32, 3, 1);
        let base = server(PlacementKind::Baseline, 1);
        let space = PlanSpace {
            templates: TEMPLATES
                .iter()
                .map(|&(p, b)| GroupTemplate::new(p, b))
                .collect(),
            max_replicas: 2,
            schedulers: vec![SchedulerKind::JoinShortestQueue, SchedulerKind::DeadlineAware],
            admissions: vec![AdmissionPolicy::AcceptAll, AdmissionPolicy::DeadlineFeasible],
            continuous: false,
            granularity: StepGranularity::default(),
            probe_requests: 8,
        };
        let traffic = TrafficSpec::new(lambda, 24, seed)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_millis(slo_ms)));
        let target = PlanTarget::attainment(0.8);
        let budget = |threads| SearchBudget { threads, max_evals: 0 };
        let reference = fingerprint(
            &plan(&base, &workload, &traffic, target, &space, budget(1)).unwrap(),
        );
        let repeat = fingerprint(
            &plan(&base, &workload, &traffic, target, &space, budget(1)).unwrap(),
        );
        prop_assert_eq!(&repeat, &reference, "serial planner diverged across runs");
        for threads in [2usize, 4] {
            let parallel = fingerprint(
                &plan(&base, &workload, &traffic, target, &space, budget(threads)).unwrap(),
            );
            prop_assert_eq!(&parallel, &reference, "planner diverged at {} threads", threads);
        }
    }

    /// Step granularity is a pure perf knob: per-step and coalesced
    /// probes/confirmations drive the planner to byte-identical
    /// reports (wall clocks zeroed), in both batching modes.
    #[test]
    fn plan_is_granularity_invariant(
        lambda in 0.1f64..1.0,
        slo_ms in 1_000.0..30_000.0f64,
        continuous in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        let workload = WorkloadSpec::new(32, 3, 1);
        let base = server(PlacementKind::Baseline, 1);
        let space = |granularity| PlanSpace {
            templates: TEMPLATES
                .iter()
                .map(|&(p, b)| GroupTemplate::new(p, b))
                .collect(),
            max_replicas: 2,
            schedulers: vec![SchedulerKind::JoinShortestQueue, SchedulerKind::DeadlineAware],
            admissions: vec![AdmissionPolicy::AcceptAll, AdmissionPolicy::DeadlineFeasible],
            continuous,
            granularity,
            probe_requests: 8,
        };
        let traffic = TrafficSpec::new(lambda, 24, seed)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_millis(slo_ms)));
        let target = PlanTarget::attainment(0.8);
        let budget = SearchBudget { threads: 1, max_evals: 0 };
        let step = fingerprint(
            &plan(&base, &workload, &traffic, target, &space(StepGranularity::PerStep), budget)
                .unwrap(),
        );
        let coalesced = fingerprint(
            &plan(&base, &workload, &traffic, target, &space(StepGranularity::Coalesced), budget)
                .unwrap(),
        );
        prop_assert_eq!(&coalesced, &step, "granularity changed the plan report");
    }
}

/// A generously feasible scenario: the planner must return the
/// cheapest cluster (one replica), confirm it over the full traffic,
/// and calibrate each template exactly once for the whole search.
#[test]
fn planner_finds_minimal_feasible_cluster() {
    let workload = WorkloadSpec::new(32, 3, 1);
    let base = server(PlacementKind::Baseline, 1);
    let space = PlanSpace {
        templates: TEMPLATES
            .iter()
            .map(|&(p, b)| GroupTemplate::new(p, b))
            .collect(),
        max_replicas: 3,
        schedulers: vec![
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
        ],
        admissions: vec![AdmissionPolicy::AcceptAll],
        continuous: false,
        granularity: StepGranularity::default(),
        probe_requests: 10,
    };
    let traffic = TrafficSpec::new(0.2, 30, 7)
        .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(120.0)));
    let report = plan(
        &base,
        &workload,
        &traffic,
        PlanTarget::attainment(0.9),
        &space,
        SearchBudget::default(),
    )
    .unwrap();
    assert!(report.feasible);
    assert!(report.attainment >= 0.9);
    assert_eq!(
        report.chosen.total_replicas(),
        1,
        "a single replica serves 0.2 req/s under a 120 s SLO; the planner must not overbuy"
    );
    assert_eq!(
        report.calibrations, 3,
        "one calibration per distinct template, shared across every probe"
    );
    assert_eq!(report.groups.len(), 1);
    assert!(report.stats.evaluated >= 1);
}

/// A deadline no replica can physically meet: the bound prunes the
/// entire lattice without one DES probe, and the planner still
/// returns an honest best-effort report (single fallback probe, full
/// confirmation, `feasible: false`) instead of erroring.
#[test]
fn plan_survives_unreachable_targets() {
    let workload = WorkloadSpec::new(32, 3, 1);
    let base = server(PlacementKind::Baseline, 1);
    let space = PlanSpace {
        templates: TEMPLATES
            .iter()
            .map(|&(p, b)| GroupTemplate::new(p, b))
            .collect(),
        max_replicas: 2,
        schedulers: vec![SchedulerKind::JoinShortestQueue],
        admissions: vec![AdmissionPolicy::AcceptAll],
        continuous: false,
        granularity: StepGranularity::default(),
        probe_requests: 6,
    };
    let traffic = TrafficSpec::new(0.5, 20, 11)
        .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_millis(1.0)));
    let report = plan(
        &base,
        &workload,
        &traffic,
        PlanTarget::attainment(0.9),
        &space,
        SearchBudget {
            threads: 1,
            max_evals: 0,
        },
    )
    .unwrap();
    assert!(!report.feasible);
    assert!(report.attainment < 0.9);
    assert_eq!(
        report.stats.pruned, report.candidates,
        "a 1 ms deadline is below any replica's minimum service time; \
         the bound must prune every candidate analytically"
    );
    assert_eq!(
        report.stats.evaluated, 1,
        "single best-bound fallback probe"
    );
    assert_eq!(report.confirmations, 1);
    assert!(!report.chosen.counts.is_empty());
}
