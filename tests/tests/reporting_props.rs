//! Property tests over the reporting layers: energy accounting and
//! online-serving statistics.

use helm_core::energy::assess;
use helm_core::online::{run_online, run_online_des, PoissonArrivals};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use workload::WorkloadSpec;

fn small_server(batch: u32, compressed: bool) -> Server {
    let model = ModelConfig::opt_1_3b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_placement(PlacementKind::AllCpu)
        .with_compression(compressed)
        .with_batch_size(batch);
    Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
    .expect("fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Energy components are non-negative and total/tokens identities
    /// hold for arbitrary serving shapes.
    #[test]
    fn energy_accounting_identities(
        batch in 1u32..=16,
        compressed in any::<bool>(),
        gen_len in 2usize..=6,
    ) {
        let server = small_server(batch, compressed);
        let ws = WorkloadSpec::new(64, gen_len, 1);
        let report = server.run(&ws).expect("serves");
        let energy = assess(&report, server.system());
        for (label, j) in [
            ("host_dynamic", energy.host_dynamic_j),
            ("host_static", energy.host_static_j),
            ("pcie", energy.pcie_j),
            ("gpu_dynamic", energy.gpu_dynamic_j),
            ("gpu_idle", energy.gpu_idle_j),
            ("cpu", energy.cpu_j),
        ] {
            prop_assert!(j >= 0.0 && j.is_finite(), "{label}: {j}");
        }
        let sum = energy.host_dynamic_j
            + energy.host_static_j
            + energy.pcie_j
            + energy.gpu_dynamic_j
            + energy.gpu_idle_j
            + energy.cpu_j;
        prop_assert!((energy.total_j() - sum).abs() < 1e-9);
        prop_assert_eq!(energy.tokens, report.tokens_generated);
        prop_assert!(
            (energy.j_per_token() * energy.tokens as f64 - energy.total_j()).abs() < 1e-6
        );
    }

    /// Online reports are internally consistent and the two
    /// implementations agree, for arbitrary loads.
    #[test]
    fn online_statistics_consistency(
        lambda_milli in 1u32..=400, // 0.001 .. 0.4 req/s
        n in 10usize..=60,
        batch in 1u32..=8,
        seed in 0u64..1000,
    ) {
        let lambda = f64::from(lambda_milli) / 1000.0;
        let server = small_server(batch, true);
        let ws = WorkloadSpec::paper_default();
        let a = run_online(&server, &ws, &mut PoissonArrivals::new(lambda, seed), n)
            .expect("serves");
        let b = run_online_des(&server, &ws, &mut PoissonArrivals::new(lambda, seed), n)
            .expect("serves");
        prop_assert_eq!(a.served, n as u64);
        prop_assert_eq!(a.queue_delay.count(), n as u64);
        prop_assert_eq!(a.e2e_latency.count(), n as u64);
        let batched: u32 = a.batch_sizes.iter().sum();
        prop_assert_eq!(batched as usize, n);
        prop_assert!(a.batch_sizes.iter().all(|&bsz| bsz >= 1 && bsz <= batch));
        prop_assert!(a.utilization > 0.0 && a.utilization <= 1.0);
        // End-to-end latency always covers the service floor.
        prop_assert!(
            a.e2e_latency.percentile(0.0).unwrap() + 1e-9
                >= a.makespan.as_secs() / (a.batch_sizes.len() as f64) * 0.0
        );
        // Cross-validation of the two implementations.
        prop_assert_eq!(&a.batch_sizes, &b.batch_sizes);
        prop_assert!((a.makespan.as_secs() - b.makespan.as_secs()).abs() < 1e-9);
        prop_assert!(
            (a.e2e_latency.mean() - b.e2e_latency.mean()).abs() < 1e-9
        );
    }
}

/// Offered load beyond capacity saturates utilization.
#[test]
fn overload_saturates() {
    let server = small_server(4, true);
    let ws = WorkloadSpec::paper_default();
    let r = run_online(&server, &ws, &mut PoissonArrivals::new(50.0, 5), 40).unwrap();
    assert!(r.utilization > 0.99, "utilization {}", r.utilization);
    // Later arrivals wait behind everything: p95 >> p5.
    assert!(r.e2e_percentile_ms(95.0) > r.e2e_percentile_ms(5.0) * 2.0);
}
