//! Scheduler-equivalence properties: the calendar-queue backend must
//! be observationally identical to the binary-heap backend.
//!
//! The DES engine's determinism contract is a single `(time, seq)`
//! total order over events; the calendar queue is allowed to change
//! the *cost* of maintaining that order, never the order itself.
//! These properties drive both backends through the same randomized
//! schedule — quantized times to force exact ties, a heavy-tailed
//! band to force far-future buckets, and interleaved pops so the
//! calendar's current-bucket cursor rewinds and resizes mid-run —
//! and require the popped `(time-bits, id)` sequences to match
//! element for element.

use proptest::prelude::*;
use simcore::queue::{EventQueue, QueueBackend};
use simcore::time::SimTime;

/// One step of a randomized schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at this many seconds (payload is the push index).
    Push(f64),
    /// Pop once from both queues and compare.
    Pop,
}

/// Mixes three time regimes so the calendar gets no free pass:
/// quantized times collide exactly (FIFO ties must hold), continuous
/// times scatter across buckets, and far-future times land orders of
/// magnitude past the current bucket ring. Weights (out of 9): 3
/// quantized pushes, 2 continuous, 1 far-future, 3 pops.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..9, 0u32..200, 0.0f64..100.0).prop_map(|(sel, q, secs)| match sel {
        0..=2 => Op::Push(f64::from(q) * 0.25),
        3 | 4 => Op::Push(secs),
        5 => Op::Push(secs * 1.0e9),
        _ => Op::Pop,
    })
}

/// Runs one schedule against both backends, comparing every pop (and
/// the final drain) for identical `(time, id)`.
fn check_schedule(ops: &[Op]) {
    let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
    let mut heap = EventQueue::with_backend(QueueBackend::Heap);
    let mut id = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Push(secs) => {
                let time = SimTime::from_secs(secs);
                cal.push(time, id);
                heap.push(time, id);
                id += 1;
            }
            Op::Pop => {
                let c = cal.pop();
                let h = heap.pop();
                assert_eq!(
                    c.map(|(t, e)| (t.as_secs().to_bits(), e)),
                    h.map(|(t, e)| (t.as_secs().to_bits(), e)),
                    "pop diverged at step {step}"
                );
            }
        }
        assert_eq!(cal.len(), heap.len(), "length diverged at step {step}");
    }
    while let Some(h) = heap.pop() {
        let c = cal.pop().expect("calendar drained early");
        assert_eq!(
            (c.0.as_secs().to_bits(), c.1),
            (h.0.as_secs().to_bits(), h.1),
            "drain diverged"
        );
    }
    assert!(cal.is_empty(), "calendar kept events the heap drained");
}

proptest! {
    /// Randomized push/pop interleavings, ties and far-future events
    /// included: identical pop sequences.
    #[test]
    fn backends_pop_identical_sequences(ops in prop::collection::vec(op_strategy(), 1..400)) {
        check_schedule(&ops);
    }

    /// All-ties schedules: every event at one instant, so the order
    /// is pure FIFO by sequence number on both backends.
    #[test]
    fn exact_ties_stay_fifo(at in 0.0f64..1.0e6, n in 1usize..300) {
        let ops: Vec<Op> = std::iter::repeat_n(Op::Push(at), n)
            .chain(std::iter::repeat_n(Op::Pop, n))
            .collect();
        check_schedule(&ops);
    }
}

/// A directed worst case no random schedule reliably hits: a dense
/// near-term cluster plus one event so far out the calendar must skip
/// nearly its whole ring (or resize) to find it — then events pushed
/// *behind* the cursor after that jump.
#[test]
fn far_future_then_backfill() {
    let mut ops: Vec<Op> = (0..64).map(|i| Op::Push(f64::from(i) * 0.125)).collect();
    ops.push(Op::Push(3.0e12));
    ops.extend(std::iter::repeat_n(Op::Pop, 65));
    ops.extend((0..64).map(|i| Op::Push(f64::from(i) * 0.125)));
    ops.push(Op::Pop);
    check_schedule(&ops);
}
