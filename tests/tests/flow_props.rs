//! Property tests on the shared-link schedulers: byte conservation,
//! capacity limits, and cap enforcement under random arrival patterns.

use proptest::prelude::*;
use simcore::units::Bandwidth;
use simcore::{FlowScheduler, SimTime};
use xfer::link::CappedLink;

#[derive(Debug, Clone)]
struct Arrival {
    at: f64,
    bytes: f64,
    cap_gbps: f64,
}

fn arrivals_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        (0.0f64..10.0, 1.0f64..5e9, 0.5f64..50.0).prop_map(|(at, bytes, cap_gbps)| Arrival {
            at,
            bytes,
            cap_gbps,
        }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Draining a FlowScheduler completes every flow, and total time
    /// is at least total-bytes/capacity (capacity is never exceeded).
    #[test]
    fn flow_scheduler_conserves_and_respects_capacity(arrivals in arrivals_strategy()) {
        let capacity = 10e9;
        let mut link = FlowScheduler::new(Bandwidth::from_bytes_per_s(capacity));
        let mut sorted = arrivals.clone();
        sorted.sort_by(|a, b| a.at.total_cmp(&b.at));
        let mut now = SimTime::ZERO;
        let mut pending = sorted.len();
        let total_bytes: f64 = sorted.iter().map(|a| a.bytes).sum();
        let mut iter = sorted.into_iter().peekable();
        let mut finished = 0usize;
        while pending > 0 || iter.peek().is_some() {
            // Start every arrival due before the next completion.
            let next_done = link.next_completion(now);
            match (iter.peek(), next_done) {
                (Some(a), Some((done, id))) => {
                    let at = SimTime::from_secs(a.at);
                    if at <= done {
                        let arrival = iter.next().unwrap();
                        now = now.max(at);
                        link.start(now, arrival.bytes, 1.0);
                    } else {
                        now = done;
                        link.complete(now, id);
                        finished += 1;
                        pending -= 1;
                    }
                }
                (Some(_), None) => {
                    let a = iter.next().unwrap();
                    now = now.max(SimTime::from_secs(a.at));
                    link.start(now, a.bytes, 1.0);
                }
                (None, Some((done, id))) => {
                    now = done;
                    link.complete(now, id);
                    finished += 1;
                    pending -= 1;
                }
                (None, None) => break,
            }
        }
        prop_assert_eq!(finished, arrivals.len());
        prop_assert!(
            (link.total_bytes_done() - total_bytes).abs() < total_bytes * 1e-6 + 1.0
        );
        // The drain cannot beat the link capacity.
        prop_assert!(
            now.as_secs() + 1e-9 >= total_bytes / capacity,
            "finished at {} but {} bytes need {}",
            now.as_secs(),
            total_bytes,
            total_bytes / capacity
        );
    }

    /// CappedLink: a flow never finishes earlier than bytes/cap, and
    /// the whole batch never finishes earlier than bytes/capacity.
    #[test]
    fn capped_link_respects_caps_and_capacity(arrivals in arrivals_strategy()) {
        let capacity_gbps = 25.0;
        let mut link = CappedLink::new(Bandwidth::from_gb_per_s(capacity_gbps));
        // Start everything at t=0 for a clean bound.
        let mut earliest_possible: f64 = 0.0;
        let mut total_bytes = 0.0;
        for a in &arrivals {
            link.start(SimTime::ZERO, a.bytes, Bandwidth::from_gb_per_s(a.cap_gbps));
            earliest_possible = earliest_possible.max(a.bytes / (a.cap_gbps * 1e9));
            total_bytes += a.bytes;
        }
        earliest_possible = earliest_possible.max(total_bytes / (capacity_gbps * 1e9));
        let mut now = SimTime::ZERO;
        let mut completions = 0;
        while let Some((at, id)) = link.next_completion(now) {
            now = at;
            link.complete(now, id);
            completions += 1;
        }
        prop_assert_eq!(completions, arrivals.len());
        prop_assert!(
            now.as_secs() + 1e-9 >= earliest_possible,
            "drained in {} but lower bound is {}",
            now.as_secs(),
            earliest_possible
        );
    }

    /// Water-filling never hands out more than the link capacity and
    /// never exceeds any flow's cap.
    #[test]
    fn water_filling_rates_are_feasible(arrivals in arrivals_strategy()) {
        let capacity = Bandwidth::from_gb_per_s(25.0);
        let mut link = CappedLink::new(capacity);
        let mut caps = Vec::new();
        for a in &arrivals {
            let cap = Bandwidth::from_gb_per_s(a.cap_gbps);
            let id = link.start(SimTime::ZERO, a.bytes, cap);
            caps.push((id, cap));
        }
        let rates = link.rates();
        let total: f64 = rates.values().map(|r| r.as_bytes_per_s()).sum();
        prop_assert!(total <= capacity.as_bytes_per_s() * (1.0 + 1e-9));
        for (id, cap) in caps {
            prop_assert!(rates[&id] <= cap.scale(1.0 + 1e-9));
        }
    }
}
