//! Properties of the span-trace substrate and critical-path
//! attribution.
//!
//! Three families of claims are pinned here:
//!
//! 1. **Exactness** — attribution is an integer-tick partition:
//!    `queue + compute + transfer == total` is an *equality* for every
//!    request and for every run-level aggregate, never a tolerance.
//!    Per-request span trees partition the request's service span the
//!    same way: leaf spans sum exactly to their parent's extent.
//! 2. **Structure** — every collected span tree nests (children
//!    contained in parents, siblings ordered, no overlap), and the
//!    chrome-trace rendering of any trace parses and nests too.
//! 3. **The paper's overlap claim** — at matched batch size on the
//!    paper platform, the HeLM placement keeps the critical path
//!    mostly compute-bound (transfer fraction < 0.5) while the
//!    All-CPU baseline is transfer-bound (>= 0.5). This is the
//!    headline of the source paper expressed as a property.

use helm_core::online::{
    run_cluster_mix_traced, AdmissionPolicy, CalibrationCache, ClusterSpec, DeadlineSpec,
    PoissonArrivals, SchedulerKind,
};
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use helm_core::trace::validate_chrome_trace;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use simcore::time::SimDuration;
use workload::WorkloadSpec;

fn small_server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_1_3b();
    let memory = HostMemoryConfig::dram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

fn paper_server(placement: PlacementKind, batch: u32) -> Server {
    let model = ModelConfig::opt_175b();
    let memory = HostMemoryConfig::nvdram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the cluster draw, every collected request trace has
    /// (a) a structurally sound span tree, (b) exact attribution, and
    /// (c) segments that sum to the request's end-to-end extent; and
    /// the run-level aggregate is the exact bucket-wise sum of the
    /// per-request attributions.
    #[test]
    fn attribution_partitions_exactly(
        lambda in 0.05f64..2.0,
        scheduler_sel in 0u8..4,
        admission_sel in 0u8..3,
        continuous in any::<bool>(),
        slo_ms in 500.0..60_000.0f64,
        num_requests in 5usize..=30,
        seed in 0u64..100_000,
    ) {
        let servers = [
            small_server(PlacementKind::Helm, 2),
            small_server(PlacementKind::AllCpu, 4),
        ];
        let groups: Vec<(&Server, usize)> = servers.iter().map(|s| (s, 1)).collect();
        let scheduler = [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ][scheduler_sel as usize];
        let admission = match admission_sel {
            0 => AdmissionPolicy::AcceptAll,
            1 => AdmissionPolicy::QueueCap(2),
            _ => AdmissionPolicy::DeadlineFeasible,
        };
        let spec = ClusterSpec::new(1)
            .with_scheduler(scheduler)
            .with_admission(admission)
            .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_millis(slo_ms)))
            .with_continuous(continuous);
        let workload = WorkloadSpec::new(32, 3, 1);
        let mut arrivals = PoissonArrivals::new(lambda, seed);
        let mut cache = CalibrationCache::new();
        let (report, trace) = run_cluster_mix_traced(
            &groups, &workload, &mut arrivals, num_requests, spec, &mut cache,
        )
        .unwrap();

        let nesting = trace.validate();
        prop_assert!(
            nesting.is_ok(),
            "malformed span tree: {:?}",
            nesting.err()
        );
        let mut summed = helm_core::trace::Attribution::default();
        for req in &trace.requests {
            prop_assert!(
                req.attribution.is_exact(),
                "request {} attribution is not an exact partition: {:?}",
                req.id,
                req.attribution
            );
            // The request's root span covers exactly the attributed
            // total: segments sum to e2e as an equality.
            let root = req.spans.first().expect("every request has a root span");
            prop_assert_eq!(
                u128::from(root.end - root.start),
                req.attribution.total_ticks,
                "request {} root span does not cover its attributed total",
                req.id
            );
            summed.absorb(req.attribution);
        }
        prop_assert!(report.attribution.is_exact(), "run aggregate is not exact");
        prop_assert_eq!(
            report.attribution,
            summed,
            "run aggregate is not the sum of per-request attributions"
        );

        // The chrome-trace rendering of whatever we collected parses
        // and nests (empty traces render as a valid empty file).
        let json = trace.to_chrome_json();
        let stats = validate_chrome_trace(&json);
        prop_assert!(stats.is_ok(), "chrome trace invalid: {:?}", stats.err());
        prop_assert_eq!(stats.unwrap().events, trace.span_count());
    }
}

/// The paper's overlap claim as a pinned property: on the paper
/// platform (OPT-175B, NV-DRAM, 4-bit weights) at matched batch size,
/// the HeLM placement hides most transfer behind compute (critical
/// path transfer-bound < 50%) while the All-CPU baseline, which pulls
/// every weight across the bus per step, is transfer-bound (>= 50%).
#[test]
fn helm_is_compute_bound_where_all_cpu_is_transfer_bound() {
    let workload = WorkloadSpec::paper_default();
    let helm = paper_server(PlacementKind::Helm, 4)
        .run(&workload)
        .expect("helm runs");
    let allcpu = paper_server(PlacementKind::AllCpu, 4)
        .run(&workload)
        .expect("all-cpu runs");
    assert!(helm.attribution.is_exact());
    assert!(allcpu.attribution.is_exact());
    let helm_xfer = helm.attribution.transfer_fraction();
    let allcpu_xfer = allcpu.attribution.transfer_fraction();
    assert!(
        helm_xfer < 0.5,
        "HeLM placement should be compute-bound, got transfer fraction {helm_xfer:.3}"
    );
    assert!(
        allcpu_xfer >= 0.5,
        "All-CPU baseline should be transfer-bound, got transfer fraction {allcpu_xfer:.3}"
    );
    assert!(
        helm_xfer < allcpu_xfer,
        "HeLM ({helm_xfer:.3}) should hide more transfer than All-CPU ({allcpu_xfer:.3})"
    );
}

/// Offline traced runs produce one span tree for the fused batch,
/// structurally sound, with segments summing exactly to the
/// attributed end-to-end extent.
#[test]
fn offline_trace_is_sound_and_exact() {
    let workload = WorkloadSpec::paper_default();
    let server = paper_server(PlacementKind::Helm, 4);
    let (report, trace) = server.run_traced(&workload).expect("traced run");
    assert_eq!(
        trace.requests.len(),
        1,
        "offline batches trace as one fused request"
    );
    trace.validate().expect("span trees nest");
    for req in &trace.requests {
        assert!(req.attribution.is_exact());
        let root = req.spans[0];
        assert_eq!(
            u128::from(root.end - root.start),
            req.attribution.total_ticks
        );
        // Offline runs never queue: the critical path is entirely
        // compute + transfer.
        assert_eq!(req.attribution.queue_ticks, 0);
    }
    assert!(report.attribution.is_exact());
    let json = trace.to_chrome_json();
    let stats = validate_chrome_trace(&json).expect("chrome trace parses and nests");
    assert_eq!(stats.events, trace.span_count());
    assert_eq!(stats.tracks, 1);
}
