//! Golden-value regression tests for the placement algorithms.
//!
//! The achieved distributions below were produced by the faithful
//! Listing-2/Listing-3 ports and verified against the paper's §V-A
//! numbers where the paper reports them ((0, 91.7, 8.3) and
//! (58.6, 33.1, 8.3) for OPT-175B). Any model or allocator change
//! that shifts them is placement-visible and must be deliberate.

use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::Policy;
use hetmem::MemoryConfigKind;
use llm::ModelConfig;

struct Golden {
    model: fn() -> ModelConfig,
    placement: PlacementKind,
    compressed: bool,
    memory: MemoryConfigKind,
    expect: [f64; 3],
    staging: u64,
}

const TOL: f64 = 0.05; // percentage points

fn goldens() -> Vec<Golden> {
    use MemoryConfigKind::{NvDram, Ssd};
    use PlacementKind::{AllCpu, Baseline, Helm};
    vec![
        // OPT-175B: the paper's reported achieved distributions.
        Golden {
            model: ModelConfig::opt_175b,
            placement: Baseline,
            compressed: false,
            memory: NvDram,
            expect: [0.0, 91.709, 8.291],
            staging: 3_651_551_232,
        },
        Golden {
            model: ModelConfig::opt_175b,
            placement: Baseline,
            compressed: false,
            memory: Ssd,
            expect: [58.618, 33.091, 8.291],
            staging: 3_651_551_232,
        },
        Golden {
            model: ModelConfig::opt_175b,
            placement: Baseline,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 91.700, 8.300],
            staging: 1_027_104_768,
        },
        Golden {
            model: ModelConfig::opt_175b,
            placement: Helm,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 66.871, 33.129],
            staging: 694_960_128,
        },
        Golden {
            model: ModelConfig::opt_175b,
            placement: Helm,
            compressed: true,
            memory: Ssd,
            expect: [0.705, 66.166, 33.129],
            staging: 694_960_128,
        },
        Golden {
            model: ModelConfig::opt_175b,
            placement: AllCpu,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 100.0, 0.0],
            staging: 1_027_178_496,
        },
        // OPT-30B: all-host default; HeLM carves out its third.
        Golden {
            model: ModelConfig::opt_30b,
            placement: Baseline,
            compressed: false,
            memory: NvDram,
            expect: [0.0, 100.0, 0.0],
            staging: 1_542_912_000,
        },
        Golden {
            model: ModelConfig::opt_30b,
            placement: Helm,
            compressed: false,
            memory: NvDram,
            expect: [0.0, 67.465, 32.535],
            staging: 1_470_816_256,
        },
        // OPT-66B.
        Golden {
            model: ModelConfig::opt_66b,
            placement: Helm,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 67.115, 32.885],
            staging: 531_884_160,
        },
        // LLaMA-2-70B: the gated FFN shifts HeLM's share slightly.
        Golden {
            model: ModelConfig::llama_2_70b,
            placement: Helm,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 70.821, 29.179],
            staging: 411_729_920,
        },
        Golden {
            model: ModelConfig::llama_2_70b,
            placement: Baseline,
            compressed: true,
            memory: NvDram,
            expect: [0.0, 100.0, 0.0],
            staging: 543_866_880,
        },
    ]
}

#[test]
fn achieved_distributions_match_goldens() {
    for g in goldens() {
        let model = (g.model)();
        let policy = Policy::paper_default(&model, g.memory)
            .with_placement(g.placement)
            .with_compression(g.compressed);
        let placement = ModelPlacement::compute(&model, &policy);
        let achieved = placement.achieved_distribution();
        for (i, (got, want)) in achieved.iter().zip(g.expect.iter()).enumerate() {
            assert!(
                (got - want).abs() < TOL,
                "{} {:?} c={} {:?}: component {i}: {got} != {want}",
                model.name(),
                g.placement,
                g.compressed,
                g.memory
            );
        }
        assert_eq!(
            placement.staging_bytes().as_u64(),
            g.staging,
            "{} {:?} c={} staging",
            model.name(),
            g.placement,
            g.compressed
        );
    }
}

#[test]
fn pinned_prefix_places_whole_blocks() {
    let model = ModelConfig::opt_175b();
    let placement = ModelPlacement::compute_pinned_prefix(&model, true, 32);
    for lp in placement.layers() {
        let expect_gpu = lp.layer().block().map(|b| b < 32).unwrap_or(false);
        for w in lp.weights() {
            assert_eq!(
                w.tier == helm_core::placement::Tier::Gpu,
                expect_gpu,
                "layer {} tensor {}",
                lp.layer().index(),
                w.spec.name()
            );
        }
    }
    // 32 of 96 blocks pinned: one third of the block weights.
    let [_, cpu, gpu] = placement.achieved_distribution();
    assert!(gpu > 30.0 && gpu < 35.0, "gpu {gpu}");
    assert!(cpu > 65.0);
}

#[test]
fn compression_does_not_change_baseline_opt175b_split_much() {
    // The midpoint allocator works on relative sizes; 4-bit
    // compression preserves relative matrix sizes, so the achieved
    // split barely moves (biases/norms stay FP16, hence "barely").
    let model = ModelConfig::opt_175b();
    let raw = ModelPlacement::compute(
        &model,
        &Policy::paper_default(&model, MemoryConfigKind::NvDram),
    );
    let comp = ModelPlacement::compute(
        &model,
        &Policy::paper_default(&model, MemoryConfigKind::NvDram).with_compression(true),
    );
    let a = raw.achieved_distribution();
    let b = comp.achieved_distribution();
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() < 0.1, "{a:?} vs {b:?}");
    }
}
