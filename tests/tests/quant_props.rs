//! Property tests on the group-wise quantizer: round-trip error
//! bounds, size accounting, idempotence.

use llm::quant::GroupQuant;
use proptest::prelude::*;

fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e4f32..1e4, 0..600)
}

fn config_strategy() -> impl Strategy<Value = GroupQuant> {
    (1u8..=8, 1usize..=128).prop_map(|(bits, group)| GroupQuant::new(bits, group))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reconstruction error never exceeds half a quantization step.
    #[test]
    fn round_trip_error_bounded(data in data_strategy(), q in config_strategy()) {
        let t = q.quantize(&data);
        let back = q.dequantize(&t);
        prop_assert_eq!(back.len(), data.len());
        let bound = t.max_error() * (1.0 + 1e-5) + 1e-6;
        for (i, (a, b)) in data.iter().zip(&back).enumerate() {
            prop_assert!(
                (a - b).abs() <= bound,
                "elem {i}: {a} vs {b}, bound {bound}"
            );
        }
    }

    /// Packed storage matches the analytic size model exactly.
    #[test]
    fn storage_matches_size_model(data in data_strategy(), q in config_strategy()) {
        let t = q.quantize(&data);
        prop_assert_eq!(
            t.storage_bytes() as u64,
            q.compressed_bytes(data.len() as u64)
        );
    }

    /// Quantization is idempotent: re-quantizing the dequantized
    /// values reproduces them exactly (values are already on grid).
    #[test]
    fn quantization_is_idempotent(data in data_strategy(), q in config_strategy()) {
        let once = q.dequantize(&q.quantize(&data));
        let twice = q.dequantize(&q.quantize(&once));
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() <= t_eps(*a), "{a} vs {b}");
        }
    }

    /// More bits never increase the worst-case error.
    #[test]
    fn more_bits_never_hurt(data in data_strategy(), group in 1usize..=128) {
        let mut last = f32::INFINITY;
        for bits in [2u8, 4, 8] {
            let e = GroupQuant::new(bits, group).quantize(&data).max_error();
            prop_assert!(e <= last * (1.0 + 1e-5) + 1e-6, "bits {bits}: {e} > {last}");
            last = e;
        }
    }

    /// The 4-bit/64-group size model stays near a quarter of FP16 for
    /// any large tensor.
    #[test]
    fn default_ratio_near_quarter(elems in 1024u64..10_000_000) {
        let ratio = GroupQuant::default().compressed_bytes(elems) as f64 / (elems * 2) as f64;
        prop_assert!((0.25..0.30).contains(&ratio), "ratio {ratio}");
    }
}

/// Tolerance for float re-encode comparisons: one part in 1e5 of
/// magnitude (grid values re-encode to themselves up to fp rounding).
fn t_eps(x: f32) -> f32 {
    x.abs() * 1e-4 + 1e-5
}
