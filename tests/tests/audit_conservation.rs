//! Conservation-law integration tests: for every placement policy and
//! both executors, the simaudit byte ledgers must balance to zero
//! outstanding bytes, the audited totals must agree with the report's
//! own accounting, and the DES executor must move exactly the same
//! traffic as the analytic one.
//!
//! These tests run the real `Server` pipeline, so they double as a
//! regression net for the audit wiring in `exec.rs` / `exec_des.rs`.

use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use helm_core::RunReport;
use hetmem::{HostMemoryConfig, MemoryConfigKind};
use llm::ModelConfig;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

const POLICIES: [PlacementKind; 3] = [
    PlacementKind::Baseline,
    PlacementKind::Helm,
    PlacementKind::AllCpu,
];

/// Runs one policy on both executors, returning the two reports plus
/// the pipeline-fill bytes (layer 0 streams before any step record
/// exists, so the audit ledgers see it but the per-step totals don't).
fn run_pair(kind: PlacementKind) -> (RunReport, RunReport, ByteSize) {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
        .with_placement(kind)
        .with_compression(true);
    let placement = ModelPlacement::compute(&model, &policy);
    let fill = placement.layers()[0].offloaded_bytes(placement.dtype());
    let server = Server::new(
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
        model,
        policy,
    )
    .expect("paper config fits");
    let ws = WorkloadSpec::paper_default();
    let analytic = server.run(&ws).expect("analytic run");
    let des = server.run_des(&ws).expect("des run");
    (analytic, des, fill)
}

#[test]
fn ledgers_balance_for_all_policies_on_both_executors() {
    // Audit capture is on under `debug_assertions`; the tier-1 test
    // profile is a debug build, so reports must carry audit data.
    for kind in POLICIES {
        let (analytic, des, _) = run_pair(kind);
        for (label, report) in [("analytic", &analytic), ("des", &des)] {
            let audit = report
                .audit
                .as_ref()
                .unwrap_or_else(|| panic!("{kind}/{label}: no audit report in debug build"));
            assert!(audit.is_clean(), "{kind}/{label}:\n{audit}");
            for (channel, ledger) in &audit.ledgers {
                assert!(
                    ledger.is_balanced(),
                    "{kind}/{label}: channel {channel} left {} outstanding",
                    ledger.outstanding()
                );
            }
        }
    }
}

#[test]
fn audited_traffic_matches_report_accounting() {
    for kind in POLICIES {
        let (analytic, des, fill) = run_pair(kind);
        for (label, report) in [("analytic", &analytic), ("des", &des)] {
            let audit = report.audit.as_ref().expect("audit in debug build");
            let h2d = audit.delivered_with_prefix("h2d:");
            let d2h = audit.delivered_with_prefix("d2h:");
            assert_eq!(
                h2d,
                report.total_h2d_bytes() + fill,
                "{kind}/{label}: audited h2d disagrees with the report \
                 (per-step totals plus the layer-0 pipeline fill)"
            );
            assert_eq!(
                d2h,
                report.total_d2h_bytes(),
                "{kind}/{label}: audited d2h disagrees with the report"
            );
        }
    }
}

#[test]
fn des_and_analytic_executors_move_identical_traffic() {
    for kind in POLICIES {
        let (analytic, des, _) = run_pair(kind);
        assert_eq!(
            analytic.total_h2d_bytes(),
            des.total_h2d_bytes(),
            "{kind}: executors disagree on h2d traffic"
        );
        assert_eq!(
            analytic.total_d2h_bytes(),
            des.total_d2h_bytes(),
            "{kind}: executors disagree on d2h traffic"
        );
    }
}
