//! Property tests on the memory device models: monotonicity and
//! ordering invariants that must hold for the serving results to be
//! meaningful.

use hetmem::cxl::CxlDevice;
use hetmem::dram::DramDevice;
use hetmem::memmode::MemoryModeDevice;
use hetmem::optane::OptaneDevice;
use hetmem::storage::StorageDevice;
use hetmem::{AccessKind, AccessProfile, MemoryDevice};
use proptest::prelude::*;
use simcore::units::ByteSize;

fn devices() -> Vec<Box<dyn MemoryDevice>> {
    vec![
        Box::new(DramDevice::ddr4_2933_socket()),
        Box::new(OptaneDevice::dcpmm_200_socket()),
        Box::new(MemoryModeDevice::paper_socket()),
        Box::new(StorageDevice::optane_block()),
        Box::new(StorageDevice::optane_fsdax()),
        Box::new(CxlDevice::fpga_ddr4()),
        Box::new(CxlDevice::asic_ddr5()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bandwidth is positive and finite for every device and profile.
    #[test]
    fn bandwidth_is_positive_finite(
        buffer_mb in 1.0f64..64_000.0,
        ws_mb in 1.0f64..1_000_000.0,
        conc in 1u32..32,
        kind_sel in 0u8..4,
        remote in any::<bool>(),
    ) {
        let kind = [
            AccessKind::SeqRead,
            AccessKind::SeqWrite,
            AccessKind::RandRead,
            AccessKind::RandWrite,
        ][kind_sel as usize];
        let mut profile = AccessProfile::sequential_read(ByteSize::from_mb(buffer_mb))
            .with_concurrency(conc)
            .with_working_set(ByteSize::from_mb(ws_mb.max(buffer_mb)));
        profile.kind = kind;
        profile.remote = remote;
        for d in devices() {
            let bw = d.bandwidth(&profile).as_gb_per_s();
            prop_assert!(bw.is_finite() && bw > 0.0, "{}: {bw}", d.name());
            // Service components blend back to a consistent rate.
            let comps = d.service_components(&profile);
            let fsum: f64 = comps.iter().map(|(f, _)| f).sum();
            prop_assert!((fsum - 1.0).abs() < 1e-9, "{} fractions {fsum}", d.name());
        }
    }

    /// Sequential reads never lose to random reads; remote access
    /// never beats local for CPU initiators.
    #[test]
    fn access_kind_and_locality_orderings(buffer_mb in 1.0f64..32_000.0) {
        let buffer = ByteSize::from_mb(buffer_mb);
        for d in devices() {
            let seq = d.bandwidth(&AccessProfile::sequential_read(buffer));
            let mut rand_profile = AccessProfile::sequential_read(buffer);
            rand_profile.kind = AccessKind::RandRead;
            prop_assert!(d.bandwidth(&rand_profile) <= seq, "{}", d.name());
            let remote = d.bandwidth(&AccessProfile::sequential_read(buffer).remote());
            prop_assert!(remote <= seq, "{} remote > local", d.name());
        }
    }

    /// Optane read bandwidth is monotone non-increasing in both the
    /// buffer size and the declared working set.
    #[test]
    fn optane_reads_degrade_monotonically(
        small_mb in 1.0f64..16_000.0,
        grow in 1.0f64..20.0,
    ) {
        let d = OptaneDevice::dcpmm_200_socket();
        let small = ByteSize::from_mb(small_mb);
        let large = ByteSize::from_mb(small_mb * grow);
        let by_buffer_small = d.bandwidth(&AccessProfile::sequential_read(small));
        let by_buffer_large = d.bandwidth(&AccessProfile::sequential_read(large));
        prop_assert!(by_buffer_large <= by_buffer_small);
        let by_ws_small =
            d.bandwidth(&AccessProfile::sequential_read(small).with_working_set(small));
        let by_ws_large =
            d.bandwidth(&AccessProfile::sequential_read(small).with_working_set(large));
        prop_assert!(by_ws_large <= by_ws_small);
    }

    /// Memory Mode sits between DRAM and derated Optane for any
    /// working set, and its hit rate is monotone non-increasing.
    #[test]
    fn memmode_is_sandwiched(ws_gb in 1.0f64..2_000.0) {
        let mm = MemoryModeDevice::paper_socket();
        let dram = DramDevice::ddr4_2933_socket();
        let p = AccessProfile::sequential_read(ByteSize::from_mb(256.0))
            .with_working_set(ByteSize::from_gb(ws_gb));
        prop_assert!(mm.bandwidth(&p) <= dram.bandwidth(&p));
        prop_assert!(
            mm.hit_rate(ByteSize::from_gb(ws_gb))
                >= mm.hit_rate(ByteSize::from_gb(ws_gb * 2.0))
        );
    }

    /// Idle latencies order by technology: DRAM < MM < Optane, and
    /// CXL adds its hop over plain media.
    #[test]
    fn latency_orderings(remote in any::<bool>()) {
        let dram = DramDevice::ddr4_2933_socket();
        let mm = MemoryModeDevice::paper_socket();
        let optane = OptaneDevice::dcpmm_200_socket();
        let kind = AccessKind::RandRead;
        prop_assert!(dram.idle_latency(kind, remote) < mm.idle_latency(kind, remote));
        prop_assert!(mm.idle_latency(kind, remote) < optane.idle_latency(kind, remote));
        let cxl = CxlDevice::asic_ddr5();
        prop_assert!(cxl.idle_latency(kind, remote) > dram.idle_latency(kind, remote));
    }
}
