//! Property tests over the pipeline executors: structural invariants
//! of every run, and cross-validation between the analytic and
//! discrete-event executors, over randomized small models and
//! policies.

use helm_core::exec::{run_pipeline, PipelineInputs, SYNC_OVERHEAD};
use helm_core::exec_des::run_pipeline_des;
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::{PercentDist, Policy};
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use workload::WorkloadSpec;

fn small_model() -> impl Strategy<Value = ModelConfig> {
    (1usize..=6, 1usize..=4).prop_map(|(heads, blocks)| {
        ModelConfig::new("prop", heads * 64, heads, blocks, 4, 2000, 512)
    })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (
        0u8..3,
        any::<bool>(),
        1u32..=8,
        1u32..=3,
        any::<bool>(),
        0.0f64..=100.0,
    )
        .prop_map(|(kind, compressed, batch, micro, kv_offload, cpu)| {
            let kind = match kind {
                0 => PlacementKind::Baseline,
                1 => PlacementKind::Helm,
                _ => PlacementKind::AllCpu,
            };
            Policy::new(
                PercentDist::new(0.0, cpu, 100.0 - cpu),
                kind,
                compressed,
                batch,
            )
            .with_gpu_batches(micro)
            .with_kv_offload(kv_offload)
        })
}

fn memory_strategy() -> impl Strategy<Value = HostMemoryConfig> {
    (0u8..4).prop_map(|sel| match sel {
        0 => HostMemoryConfig::dram(),
        1 => HostMemoryConfig::nvdram(),
        2 => HostMemoryConfig::memory_mode(),
        _ => HostMemoryConfig::cxl_asic(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run satisfies the structural step invariants.
    #[test]
    fn pipeline_structural_invariants(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
        gen_len in 2usize..=5,
    ) {
        let system = SystemConfig::paper_platform(memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::new(32, gen_len, 1);
        let report = run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        }).unwrap();
        // One record per (token, layer).
        prop_assert_eq!(report.records.len(), gen_len * model.num_layers());
        // Every step covers its compute, its load, and the sync.
        let sync = SYNC_OVERHEAD.as_secs();
        for r in &report.records {
            prop_assert!(r.step.as_secs() + 1e-12 >= r.compute.as_secs().max(r.load_next.as_secs()) + sync);
        }
        // Wall clock = fill + sum of steps (+ final write-back drain).
        let steps: f64 = report.records.iter().map(|r| r.step.as_secs()).sum();
        prop_assert!(report.total_time.as_secs() + 1e-9 >= steps);
        // TTFT covers the prefill pass.
        let prefill_steps: f64 = report
            .records
            .iter()
            .filter(|r| r.token == 0)
            .map(|r| r.step.as_secs())
            .sum();
        prop_assert!(report.ttft.as_secs() + 1e-9 >= prefill_steps);
        // Throughput accounting.
        let expect = report.tokens_generated as f64 / report.total_time.as_secs();
        prop_assert!((report.throughput_tps() - expect).abs() < 1e-9);
        prop_assert_eq!(
            report.tokens_generated,
            u64::from(policy.effective_batch()) * gen_len as u64
        );
    }

    /// The DES executor never reports a slower run than the analytic
    /// one (its relaxations only overlap more), and agrees exactly
    /// when no relaxation applies.
    #[test]
    fn des_cross_validation(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
    ) {
        let system = SystemConfig::paper_platform(memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::new(32, 3, 1);
        let inputs = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        };
        let analytic = run_pipeline(&inputs).unwrap();
        let des = run_pipeline_des(&inputs).unwrap();
        prop_assert!(
            des.total_time.as_secs() <= analytic.total_time.as_secs() * (1.0 + 1e-9),
            "DES {} > analytic {}",
            des.total_time.as_secs(),
            analytic.total_time.as_secs()
        );
        prop_assert_eq!(des.total_h2d_bytes(), analytic.total_h2d_bytes());
        prop_assert_eq!(des.total_d2h_bytes(), analytic.total_d2h_bytes());
        if !policy.kv_offload() {
            let rel = (des.total_time.as_secs() - analytic.total_time.as_secs()).abs()
                / analytic.total_time.as_secs();
            prop_assert!(rel < 1e-6, "disagreement {rel}");
        }
    }

    /// Compression never increases per-layer transfer time and never
    /// decreases compute time.
    #[test]
    fn compression_tradeoff_direction(
        model in small_model(),
        memory in memory_strategy(),
    ) {
        let workload = WorkloadSpec::new(32, 3, 1);
        let system = SystemConfig::paper_platform(memory);
        let mut results = Vec::new();
        for compressed in [false, true] {
            let policy = Policy::new(
                PercentDist::new(0.0, 100.0, 0.0),
                PlacementKind::AllCpu,
                compressed,
                1,
            );
            let placement = ModelPlacement::compute(&model, &policy);
            let report = run_pipeline(&PipelineInputs {
                system: &system,
                model: &model,
                policy: &policy,
                placement: &placement,
                workload: &workload,
            }).unwrap();
            results.push(report);
        }
        let (raw, comp) = (&results[0], &results[1]);
        prop_assert!(comp.total_h2d_bytes() <= raw.total_h2d_bytes());
        prop_assert!(
            comp.avg_hidden_compute(helm_core::metrics::Stage::Decode)
                >= raw.avg_hidden_compute(helm_core::metrics::Stage::Decode)
        );
    }
}
