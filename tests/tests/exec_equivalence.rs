//! Golden-equivalence suite for the cost-table evaluator: the fast
//! path (`LayerCostTable` + `run_pipeline_with`) must reproduce the
//! seed evaluator (`run_pipeline_reference`) *bit for bit* — same
//! TTFT, same per-token TBT samples, same step records, same audit
//! ledgers — and `RecordMode::Aggregate` must change nothing except
//! dropping the per-step record vec. A serial coarse placement sweep
//! checks the consequence the autoplace engine relies on: identical
//! objective values mean an identical winner.

use helm_core::exec::{
    run_pipeline, run_pipeline_reference, run_pipeline_with, LayerCostTable, PipelineInputs,
    RecordMode,
};
use helm_core::exec_des::{run_pipeline_des, run_pipeline_des_with};
use helm_core::metrics::RunReport;
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::{PercentDist, Policy};
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use workload::WorkloadSpec;

fn small_model() -> impl Strategy<Value = ModelConfig> {
    (1usize..=6, 1usize..=4).prop_map(|(heads, blocks)| {
        ModelConfig::new("prop", heads * 64, heads, blocks, 4, 2000, 512)
    })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (
        0u8..3,
        any::<bool>(),
        1u32..=8,
        1u32..=3,
        any::<bool>(),
        0.0f64..=100.0,
    )
        .prop_map(|(kind, compressed, batch, micro, kv_offload, cpu)| {
            let kind = match kind {
                0 => PlacementKind::Baseline,
                1 => PlacementKind::Helm,
                _ => PlacementKind::AllCpu,
            };
            Policy::new(
                PercentDist::new(0.0, cpu, 100.0 - cpu),
                kind,
                compressed,
                batch,
            )
            .with_gpu_batches(micro)
            .with_kv_offload(kv_offload)
        })
}

fn memory_strategy() -> impl Strategy<Value = HostMemoryConfig> {
    (0u8..4).prop_map(|sel| match sel {
        0 => HostMemoryConfig::dram(),
        1 => HostMemoryConfig::nvdram(),
        2 => HostMemoryConfig::memory_mode(),
        _ => HostMemoryConfig::cxl_asic(),
    })
}

/// The ISSUE's required gen_len coverage: a prefill-only run, the
/// shortest run with a TBT sample, and a long decode tail.
fn gen_len_strategy() -> impl Strategy<Value = usize> {
    (0u8..3).prop_map(|sel| [1usize, 2, 32][usize::from(sel)])
}

/// Asserts every aggregate of two reports is bitwise identical:
/// f64-valued fields compared through `to_bits`, byte counts and
/// ledgers through exact equality.
fn assert_aggregates_bitwise(a: &RunReport, b: &RunReport) {
    assert_eq!(a.ttft.as_secs().to_bits(), b.ttft.as_secs().to_bits());
    assert_eq!(
        a.total_time.as_secs().to_bits(),
        b.total_time.as_secs().to_bits()
    );
    assert_eq!(a.tbt.count(), b.tbt.count());
    for (x, y) in a.tbt.samples().iter().zip(b.tbt.samples()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.tokens_generated, b.tokens_generated);
    assert_eq!(a.totals, b.totals);
    for (x, y) in a.achieved_distribution.iter().zip(&b.achieved_distribution) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // Audit ledgers (present in debug builds) must match channel by
    // channel — proof the fast path schedules the same transfers.
    assert_eq!(a.audit, b.audit);
}

fn inputs_for<'a>(
    system: &'a SystemConfig,
    model: &'a ModelConfig,
    policy: &'a Policy,
    placement: &'a ModelPlacement,
    workload: &'a WorkloadSpec,
) -> PipelineInputs<'a> {
    PipelineInputs {
        system,
        model,
        policy,
        placement,
        workload,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cost-table fast path reproduces the seed evaluator bit for
    /// bit — aggregates *and* every per-step record.
    #[test]
    fn fast_path_matches_reference_bitwise(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
        gen_len in gen_len_strategy(),
    ) {
        let system = SystemConfig::paper_platform(memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::new(32, gen_len, 1);
        let inp = inputs_for(&system, &model, &policy, &placement, &workload);
        let seed = run_pipeline_reference(&inp).unwrap();
        let fast = run_pipeline(&inp).unwrap();
        assert_aggregates_bitwise(&seed, &fast);
        prop_assert_eq!(&seed.records, &fast.records);
    }

    /// `RecordMode::Aggregate` drops the record vec and changes
    /// nothing else, for both the analytic and the DES executor.
    #[test]
    fn aggregate_mode_only_drops_records(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
        gen_len in gen_len_strategy(),
    ) {
        let system = SystemConfig::paper_platform(memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::new(32, gen_len, 1);
        let inp = inputs_for(&system, &model, &policy, &placement, &workload);
        let table = LayerCostTable::build(&inp).unwrap();

        let full = run_pipeline_with(&inp, &table, RecordMode::Full).unwrap();
        let agg = run_pipeline_with(&inp, &table, RecordMode::Aggregate).unwrap();
        assert_aggregates_bitwise(&full, &agg);
        prop_assert!(agg.records.is_empty());
        prop_assert_eq!(full.records.len(), agg.totals.steps);

        let des_full = run_pipeline_des_with(&inp, &table, RecordMode::Full).unwrap();
        let des_agg = run_pipeline_des_with(&inp, &table, RecordMode::Aggregate).unwrap();
        assert_aggregates_bitwise(&des_full, &des_agg);
        prop_assert!(des_agg.records.is_empty());

        // The des entry point is the same computation.
        let des = run_pipeline_des(&inp).unwrap();
        assert_aggregates_bitwise(&des, &des_full);
    }
}

/// The paper platform at full scale: OPT-175B across every placement
/// kind, with and without KV offload, on both single-tier and split
/// disk/DRAM streaming. Exact, not approximate, agreement.
#[test]
fn paper_configs_match_reference_bitwise() {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let cases = [
        (
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            true,
            1,
            false,
        ),
        (
            HostMemoryConfig::nvdram(),
            PlacementKind::Helm,
            true,
            1,
            false,
        ),
        (
            HostMemoryConfig::nvdram(),
            PlacementKind::Helm,
            true,
            8,
            true,
        ),
        (
            HostMemoryConfig::dram(),
            PlacementKind::AllCpu,
            true,
            44,
            false,
        ),
        (
            HostMemoryConfig::ssd(),
            PlacementKind::Baseline,
            false,
            1,
            false,
        ),
        (HostMemoryConfig::ssd(), PlacementKind::Helm, false, 1, true),
    ];
    for (memory, kind, compressed, batch, kv_offload) in cases {
        let system = SystemConfig::paper_platform(memory.clone());
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(kind)
            .with_compression(compressed)
            .with_batch_size(batch)
            .with_kv_offload(kv_offload);
        let placement = ModelPlacement::compute(&model, &policy);
        let inp = inputs_for(&system, &model, &policy, &placement, &workload);
        let seed = run_pipeline_reference(&inp).unwrap();
        let fast = run_pipeline(&inp).unwrap();
        assert_aggregates_bitwise(&seed, &fast);
        assert_eq!(seed.records, fast.records, "{kind:?} kv={kv_offload}");
    }
}

/// A serial coarse placement sweep picks the same winner whether each
/// candidate is costed by the seed evaluator or by the allocation-free
/// aggregate fast path — the property the autoplace engine's
/// `RecordMode::Aggregate` evaluation rests on.
#[test]
fn coarse_sweep_winner_unchanged() {
    let model = ModelConfig::new("sweep", 512, 8, 3, 4, 2000, 512);
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let base = Policy::paper_default(&model, memory.kind()).with_batch_size(4);
    let workload = WorkloadSpec::new(64, 4, 1);

    let mut best_seed: Option<(u32, u64)> = None;
    let mut best_fast: Option<(u32, u64)> = None;
    for pct in (0..=100).step_by(10) {
        let placement = ModelPlacement::compute_custom(
            &model,
            base.compressed(),
            [f64::from(pct), f64::from(100 - pct), 0.0],
            [f64::from(pct), f64::from(100 - pct), 0.0],
            [0.0, 100.0, 0.0],
        );
        let inp = inputs_for(&system, &model, &base, &placement, &workload);
        let seed = run_pipeline_reference(&inp).unwrap();
        let table = LayerCostTable::build(&inp).unwrap();
        let fast = run_pipeline_with(&inp, &table, RecordMode::Aggregate).unwrap();
        assert_eq!(
            seed.tbt_ms().to_bits(),
            fast.tbt_ms().to_bits(),
            "objective diverged at {pct}%"
        );
        // Strict improvement, first-seen wins ties — the engine's rule.
        let key = seed.tbt_ms().to_bits();
        if best_seed.is_none_or(|(_, b)| seed.tbt_ms() < f64::from_bits(b)) {
            best_seed = Some((pct, key));
        }
        if best_fast.is_none_or(|(_, b)| fast.tbt_ms() < f64::from_bits(b)) {
            best_fast = Some((pct, fast.tbt_ms().to_bits()));
        }
    }
    assert_eq!(best_seed, best_fast, "sweep winner changed");
}
