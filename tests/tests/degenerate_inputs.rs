//! Degenerate-input hardening: configurations that admit no
//! meaningful simulation must come back as typed
//! [`HelmError::InvalidConfig`] values or honest all-zero reports —
//! never a panic, never a NaN smuggled into a report field.
//!
//! Each test here is a regression pin for one edge that used to (or
//! plausibly could) assert or divide by zero: an empty cluster mix, a
//! plan space with nothing to search, a zero-request probe, a
//! zero-request serve, and a zero-capacity latency reservoir.

use helm_core::error::HelmError;
use helm_core::online::{
    run_cluster, run_cluster_mix, ClusterSpec, PoissonArrivals, StepGranularity,
};
use helm_core::placement::PlacementKind;
use helm_core::planner::{plan, PlanSpace, PlanTarget, SearchBudget, TrafficSpec};
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use simcore::rng::SimRng;
use simcore::stats::Reservoir;
use workload::WorkloadSpec;

fn small_server() -> Server {
    let model = ModelConfig::opt_1_3b();
    let memory = HostMemoryConfig::dram();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(PlacementKind::Helm)
        .with_batch_size(2);
    Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap()
}

fn assert_invalid_config(result: Result<impl std::fmt::Debug, HelmError>, what: &str) {
    match result {
        Err(HelmError::InvalidConfig(_)) => {}
        other => panic!("{what}: expected InvalidConfig, got {other:?}"),
    }
}

/// An empty cluster mix is a typed error, not an assert.
#[test]
fn empty_cluster_mix_is_a_typed_error() {
    let workload = WorkloadSpec::new(32, 3, 1);
    let mut arrivals = PoissonArrivals::new(1.0, 7);
    let result = run_cluster_mix(&[], &workload, &mut arrivals, 10, ClusterSpec::new(1));
    assert_invalid_config(result, "empty mix");
}

/// Every degenerate plan input comes back as `InvalidConfig`: an
/// empty template/scheduler/admission lattice, a zero replica cap, a
/// zero-request screening probe, a non-finite or non-positive arrival
/// rate, and traffic with no requests.
#[test]
fn degenerate_plan_inputs_are_typed_errors() {
    let server = small_server();
    let workload = WorkloadSpec::new(32, 3, 1);
    let traffic = TrafficSpec::new(1.0, 50, 7);
    let target = PlanTarget::attainment(0.9);
    let budget = SearchBudget::default();
    let space = PlanSpace::for_server(&server, &workload).expect("plan space");

    let mut no_templates = space.clone();
    no_templates.templates.clear();
    assert_invalid_config(
        plan(&server, &workload, &traffic, target, &no_templates, budget),
        "no templates",
    );

    let mut no_schedulers = space.clone();
    no_schedulers.schedulers.clear();
    assert_invalid_config(
        plan(&server, &workload, &traffic, target, &no_schedulers, budget),
        "no schedulers",
    );

    let mut no_admissions = space.clone();
    no_admissions.admissions.clear();
    assert_invalid_config(
        plan(&server, &workload, &traffic, target, &no_admissions, budget),
        "no admissions",
    );

    let mut no_replicas = space.clone();
    no_replicas.max_replicas = 0;
    assert_invalid_config(
        plan(&server, &workload, &traffic, target, &no_replicas, budget),
        "zero replica cap",
    );

    let mut no_probe = space.clone();
    no_probe.probe_requests = 0;
    assert_invalid_config(
        plan(&server, &workload, &traffic, target, &no_probe, budget),
        "zero probe requests",
    );

    for lambda in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let bad = TrafficSpec::new(lambda, 50, 7);
        assert_invalid_config(
            plan(&server, &workload, &bad, target, &space, budget),
            "bad lambda",
        );
    }

    let empty_traffic = TrafficSpec::new(1.0, 0, 7);
    assert_invalid_config(
        plan(&server, &workload, &empty_traffic, target, &space, budget),
        "zero requests",
    );
}

/// Serving zero requests yields an honest all-zero report: it
/// completes, and no field renders as NaN — percentiles, utilization,
/// throughput, and attribution fractions all come back as finite
/// zeros.
#[test]
fn zero_request_serve_reports_honest_zeros() {
    let server = small_server();
    let workload = WorkloadSpec::new(32, 3, 1);
    for granularity in [StepGranularity::PerStep, StepGranularity::Coalesced] {
        let spec = ClusterSpec::new(2).with_granularity(granularity);
        let mut arrivals = PoissonArrivals::new(1.0, 7);
        let report =
            run_cluster(&server, &workload, &mut arrivals, 0, spec).expect("zero-request run");
        let rendered = format!("{report:?}");
        assert!(
            !rendered.contains("NaN"),
            "zero-request report leaked a NaN: {rendered}"
        );
        assert!(report.attribution.is_exact());
        assert_eq!(report.attribution.total_ticks, 0);
        assert_eq!(report.attribution.queue_fraction(), 0.0);
        assert_eq!(report.attribution.compute_fraction(), 0.0);
        assert_eq!(report.attribution.transfer_fraction(), 0.0);
    }
}

/// A zero-capacity reservoir accepts (and discards) samples without
/// panicking, and reports `None` percentiles rather than fabricating
/// a number.
#[test]
fn zero_capacity_reservoir_degrades_honestly() {
    let rng = SimRng::from_seed_and_stream(7, "degenerate-reservoir");
    let mut r = Reservoir::new(0, rng);
    for x in 0..100 {
        r.add(f64::from(x));
    }
    assert_eq!(r.seen(), 100);
    assert!(r.samples().is_empty());
    assert_eq!(r.percentile(50.0), None);
    assert_eq!(r.percentile(99.0), None);
}
