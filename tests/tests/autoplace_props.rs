//! Properties of the placement search engine: thread-count
//! determinism, pruning soundness (re-cost every pruned candidate
//! exhaustively and verify none beats the winner), graceful budget
//! truncation, and the fine-resolution throughput invariants.

use gpusim::{MemoryBudget, ResidentCosts};
use helm_core::autoplace::{search, AutoPlacement, Objective, SearchBudget};
use helm_core::exec::{run_pipeline, PipelineInputs};
use helm_core::placement::{ModelPlacement, PlacementKind, Tier};
use helm_core::policy::{PercentDist, Policy};
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use workload::WorkloadSpec;

fn small_model() -> impl Strategy<Value = ModelConfig> {
    (1usize..=4, 1usize..=3).prop_map(|(heads, blocks)| {
        ModelConfig::new("prop", heads * 64, heads, blocks, 4, 2000, 512)
    })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (any::<bool>(), 1u32..=4, 1u32..=2).prop_map(|(compressed, batch, micro)| {
        Policy::new(
            PercentDist::new(0.0, 100.0, 0.0),
            PlacementKind::Baseline,
            compressed,
            batch,
        )
        .with_gpu_batches(micro)
    })
}

fn memory_strategy() -> impl Strategy<Value = HostMemoryConfig> {
    (0u8..3).prop_map(|sel| match sel {
        0 => HostMemoryConfig::dram(),
        1 => HostMemoryConfig::nvdram(),
        _ => HostMemoryConfig::cxl_asic(),
    })
}

/// Bitwise comparison of two search results. `wall_ms` is the one
/// legitimately nondeterministic field and is excluded.
fn assert_identical(a: &AutoPlacement, b: &AutoPlacement) {
    assert_eq!(a.mha_gpu_percent.to_bits(), b.mha_gpu_percent.to_bits());
    assert_eq!(a.ffn_gpu_percent.to_bits(), b.ffn_gpu_percent.to_bits());
    assert_eq!(a.batch, b.batch);
    assert_eq!(a.report.tbt_ms().to_bits(), b.report.tbt_ms().to_bits());
    assert_eq!(
        a.report.throughput_tps().to_bits(),
        b.report.throughput_tps().to_bits()
    );
    assert_eq!(a.stats.evaluated, b.stats.evaluated);
    assert_eq!(a.stats.pruned, b.stats.pruned);
    assert_eq!(a.frontier.points().len(), b.frontier.points().len());
    for (pa, pb) in a.frontier.points().iter().zip(b.frontier.points()) {
        assert_eq!(pa.tbt_ms.to_bits(), pb.tbt_ms.to_bits());
        assert_eq!(pa.throughput_tps.to_bits(), pb.throughput_tps.to_bits());
    }
    assert_eq!(
        a.frontier.pruned_candidates(),
        b.frontier.pruned_candidates()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The winner (and every deterministic search statistic) is
    /// bit-identical whatever the thread count, for both objectives.
    #[test]
    fn parallel_search_equals_serial(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
        gen_len in 2usize..=4,
        objective_sel in 0u8..2,
    ) {
        let objective = if objective_sel == 0 {
            Objective::Latency
        } else {
            Objective::Throughput
        };
        let system = SystemConfig::paper_platform(memory);
        let workload = WorkloadSpec::new(32, gen_len, 1);
        let serial = search(
            &system, &model, &policy, &workload, objective,
            SearchBudget { threads: 1, max_evals: 0 },
        ).unwrap();
        for threads in [2usize, 4, 7] {
            let parallel = search(
                &system, &model, &policy, &workload, objective,
                SearchBudget { threads, max_evals: 0 },
            ).unwrap();
            assert_identical(&serial, &parallel);
        }
    }

    /// A truncated search never errors and respects its cap.
    #[test]
    fn truncated_search_returns_best_so_far(
        model in small_model(),
        policy in policy_strategy(),
        max_evals in 1usize..=12,
    ) {
        let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let workload = WorkloadSpec::new(32, 3, 1);
        let auto = search(
            &system, &model, &policy, &workload, Objective::Latency,
            SearchBudget { threads: 2, max_evals },
        ).unwrap();
        prop_assert!(auto.stats.evaluated <= max_evals);
        prop_assert!(auto.report.tbt_ms() > 0.0);
    }
}

/// Replicates the engine's per-candidate costing for one `(mha, ffn)`
/// pair: the exact placement, batch choice, and pipeline run a
/// non-pruned evaluation would have performed.
fn cost_candidate(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    objective: Objective,
    mha: f64,
    ffn: f64,
) -> Option<(f64, f64)> {
    let placement = ModelPlacement::compute_custom(
        model,
        policy.compressed(),
        [mha, 100.0 - mha, 0.0],
        [ffn, 100.0 - ffn, 0.0],
        [0.0, 100.0, 0.0],
    );
    if placement.total_on(Tier::Cpu) > system.tier_capacity(Tier::Cpu) {
        return None;
    }
    let budget = MemoryBudget::for_gpu(system.gpu());
    let costs = ResidentCosts {
        weights: placement.total_on(Tier::Gpu),
        staging: placement.staging_bytes(),
        kv_per_sequence: llm::kv::kv_bytes_per_sequence(model, workload.context_len()),
        hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(model, workload.context_len()),
    };
    let batch = match objective {
        Objective::Latency => {
            if !budget.fits(&costs, policy.effective_batch()) {
                return None;
            }
            policy.batch_size()
        }
        Objective::Throughput => {
            let max = budget.max_batch(&costs);
            if max == 0 {
                return None;
            }
            max
        }
    };
    let candidate_policy = policy.clone().with_batch_size(batch);
    let report = run_pipeline(&PipelineInputs {
        system,
        model,
        policy: &candidate_policy,
        placement: &placement,
        workload,
    })
    .expect("candidate runs");
    Some((report.tbt_ms(), report.throughput_tps()))
}

fn paper_setup() -> (SystemConfig, ModelConfig, Policy, WorkloadSpec) {
    let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
        .with_compression(true)
        .with_batch_size(1);
    (system, model, policy, WorkloadSpec::paper_default())
}

/// Pruning soundness: every candidate the engine skipped, re-costed
/// exhaustively, loses to (or at best ties) the winner.
#[test]
fn pruned_candidates_never_beat_the_winner() {
    for objective in [Objective::Latency, Objective::Throughput] {
        let (system, model, policy, workload) = paper_setup();
        let auto = search(
            &system,
            &model,
            &policy,
            &workload,
            objective,
            SearchBudget::default(),
        )
        .unwrap();
        assert!(
            !auto.frontier.pruned_candidates().is_empty(),
            "{objective:?}: nothing was pruned; the soundness check is vacuous"
        );
        for &(mha, ffn) in auto.frontier.pruned_candidates() {
            let Some((tbt_ms, tps)) =
                cost_candidate(&system, &model, &policy, &workload, objective, mha, ffn)
            else {
                continue;
            };
            match objective {
                Objective::Latency => assert!(
                    tbt_ms >= auto.report.tbt_ms(),
                    "pruned ({mha}, {ffn}) has TBT {tbt_ms} < winner {}",
                    auto.report.tbt_ms()
                ),
                Objective::Throughput => assert!(
                    tps <= auto.report.throughput_tps(),
                    "pruned ({mha}, {ffn}) has {tps} tok/s > winner {}",
                    auto.report.throughput_tps()
                ),
            }
        }
    }
}

/// The fine-resolution throughput search preserves the seed's
/// invariants: weights evicted for batch, All-CPU-level throughput.
#[test]
fn fine_throughput_search_keeps_eviction_invariants() {
    let (system, model, policy, workload) = paper_setup();
    let auto = search(
        &system,
        &model,
        &policy,
        &workload,
        Objective::Throughput,
        SearchBudget::default(),
    )
    .unwrap();
    assert!(auto.batch >= 40, "batch {}", auto.batch);
    assert!(
        auto.placement.total_on(Tier::Gpu) < simcore::units::ByteSize::from_gb(5.0),
        "GPU-resident {}",
        auto.placement.total_on(Tier::Gpu)
    );
    // The fine lattice can only improve on the coarse grid's best.
    let coarse_best = (0..=10u32)
        .flat_map(|m| (0..=10u32).map(move |f| (m, f)))
        .filter_map(|(m, f)| {
            cost_candidate(
                &system,
                &model,
                &policy,
                &workload,
                Objective::Throughput,
                f64::from(m) * 10.0,
                f64::from(f) * 10.0,
            )
        })
        .map(|(_, tps)| tps)
        .fold(0.0f64, f64::max);
    assert!(
        auto.report.throughput_tps() >= coarse_best * (1.0 - 1e-12),
        "fine winner {} tok/s below coarse best {coarse_best}",
        auto.report.throughput_tps()
    );
}
