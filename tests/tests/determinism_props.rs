//! Repeated-run determinism of the discrete-event executor.
//!
//! The DES walks `BTreeMap`s of in-flight flows, so its event order —
//! and therefore every f64 accumulation downstream — is a pure
//! function of its inputs. These tests pin that property the blunt
//! way: run the same configuration several times and require the
//! *entire* `RunReport` (TTFT, TBT samples, step records, audit
//! ledgers) to be byte-identical, comparing the `Debug` rendering of
//! the full report. Any hash-order leak (e.g. a `HashMap` iteration
//! feeding a float sum) shows up as a diff here long before it would
//! corrupt a paper figure.
//!
//! CI runs this suite under `RAYON_NUM_THREADS` ∈ {1, 4}: the DES is
//! single-threaded by design, but the matrix proves the ambient
//! worker-pool size cannot reach its results either.

use helm_core::exec::{PipelineInputs, RecordMode};
use helm_core::exec_des::run_pipeline_des;
use helm_core::online::{
    run_cluster_mix, run_cluster_mix_traced, CalibrationCache, ClusterSpec, PoissonArrivals,
    SchedulerKind,
};
use helm_core::placement::{ModelPlacement, PlacementKind};
use helm_core::policy::{PercentDist, Policy};
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use proptest::prelude::*;
use simcore::queue::QueueBackend;
use workload::WorkloadSpec;

const REPEATS: usize = 3;

/// Renders the complete report — every field, including the audit
/// ledgers — into a canonical byte string.
fn report_bytes(inp: &PipelineInputs<'_>) -> String {
    let report = run_pipeline_des(inp).expect("pipeline runs");
    // Debug builds always audit; a silently missing ledger would make
    // this test vacuous for the channel-conservation half.
    assert!(report.audit.is_some(), "audit ledgers absent in debug run");
    format!("{report:?}")
}

fn assert_repeats_identical(inp: &PipelineInputs<'_>) {
    let first = report_bytes(inp);
    for run in 1..REPEATS {
        let again = report_bytes(inp);
        assert_eq!(
            first, again,
            "DES run report diverged between run 0 and run {run}"
        );
    }
}

/// Paper-scale configurations across every memory tier and placement
/// kind: three identical runs each, byte-compared.
#[test]
fn des_reports_are_byte_identical_across_repeated_runs() {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::new(32, 4, 1);
    let memories = [
        HostMemoryConfig::dram(),
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::memory_mode(),
        HostMemoryConfig::cxl_asic(),
    ];
    for memory in memories {
        let system = SystemConfig::paper_platform(memory);
        for kind in [
            PlacementKind::Baseline,
            PlacementKind::Helm,
            PlacementKind::AllCpu,
        ] {
            for kv_offload in [false, true] {
                let policy = Policy::new(PercentDist::new(0.0, 30.0, 70.0), kind, true, 8)
                    .with_gpu_batches(2)
                    .with_kv_offload(kv_offload);
                let placement = ModelPlacement::compute(&model, &policy);
                let inp = PipelineInputs {
                    system: &system,
                    model: &model,
                    policy: &policy,
                    placement: &placement,
                    workload: &workload,
                };
                assert_repeats_identical(&inp);
            }
        }
    }
}

/// Determinism at production scale: a 100 000-request mixed-cluster
/// run must render the *entire* `ClusterReport` byte-identically
/// across repeated runs, and the calendar-queue scheduler must match
/// the binary-heap scheduler byte for byte — in both recording
/// modes. This is the scale the calendar queue and the pooled
/// event/request state exist for; any pop-order or accumulation-order
/// drift they introduced would surface here as a diff.
#[test]
fn cluster_reports_byte_identical_at_1e5_requests() {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let base = Policy::paper_default(&model, memory.kind()).with_compression(true);
    let helm = Server::new(
        system.clone(),
        model.clone(),
        base.clone()
            .with_placement(PlacementKind::Helm)
            .with_batch_size(4),
    )
    .expect("helm server");
    let allcpu = Server::new(
        system,
        model,
        base.with_placement(PlacementKind::AllCpu)
            .with_batch_size(44),
    )
    .expect("all-cpu server");
    let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 2)];
    for record in [RecordMode::Full, RecordMode::Aggregate] {
        let run = |backend: QueueBackend| {
            let spec = ClusterSpec::new(1)
                .with_scheduler(SchedulerKind::JoinShortestQueue)
                .with_record(record)
                .with_backend(backend);
            // A fresh arrival process per run: identical draws, so any
            // report diff comes from the engine, not the workload.
            let mut arrivals = PoissonArrivals::new(2.0, 97);
            let report = run_cluster_mix(groups, &workload, &mut arrivals, 100_000, spec)
                .expect("cluster runs");
            assert!(report.audit.is_some(), "audit ledgers absent in debug run");
            format!("{report:?}")
        };
        let first = run(QueueBackend::Calendar);
        assert_eq!(
            first,
            run(QueueBackend::Calendar),
            "repeated cluster run diverged ({record:?})"
        );
        assert_eq!(
            first,
            run(QueueBackend::Heap),
            "calendar and heap schedulers diverged ({record:?})"
        );
    }
}

/// Tracing is a side channel, never a semantics knob: enabling
/// `TraceMode::Spans` must leave every report — offline `RunReport`
/// and online `ClusterReport`, in both recording modes — bit-identical
/// to the untraced run. Attribution is computed unconditionally, so
/// it appears (identically) in both renderings; only the span trees
/// ride the separate channel.
#[test]
fn enabling_tracing_leaves_reports_bit_identical() {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory.clone());
    let base = Policy::paper_default(&model, memory.kind()).with_compression(true);
    let helm = Server::new(
        system.clone(),
        model.clone(),
        base.clone()
            .with_placement(PlacementKind::Helm)
            .with_batch_size(4),
    )
    .expect("helm server");
    let allcpu = Server::new(
        system,
        model,
        base.with_placement(PlacementKind::AllCpu)
            .with_batch_size(44),
    )
    .expect("all-cpu server");

    // Offline: the traced run's report equals the untraced one.
    let plain = helm.run(&workload).expect("untraced run");
    let (traced, trace) = helm.run_traced(&workload).expect("traced run");
    assert!(trace.span_count() > 0, "traced run collected no spans");
    assert_eq!(
        format!("{plain:?}"),
        format!("{traced:?}"),
        "tracing changed the offline RunReport"
    );

    // Online: same, across both recording modes.
    let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 1)];
    for record in [RecordMode::Full, RecordMode::Aggregate] {
        let spec = ClusterSpec::new(1)
            .with_scheduler(SchedulerKind::JoinShortestQueue)
            .with_record(record);
        let mut arrivals = PoissonArrivals::new(1.0, 97);
        let plain = run_cluster_mix(groups, &workload, &mut arrivals, 2_000, spec)
            .expect("untraced cluster run");
        let mut arrivals = PoissonArrivals::new(1.0, 97);
        let (traced, trace) = run_cluster_mix_traced(
            groups,
            &workload,
            &mut arrivals,
            2_000,
            spec,
            &mut CalibrationCache::new(),
        )
        .expect("traced cluster run");
        assert!(
            trace.span_count() > 0,
            "traced cluster run collected no spans"
        );
        assert_eq!(
            format!("{plain:?}"),
            format!("{traced:?}"),
            "tracing changed the ClusterReport ({record:?})"
        );
    }
}

fn small_model() -> impl Strategy<Value = ModelConfig> {
    (1usize..=6, 1usize..=4).prop_map(|(heads, blocks)| {
        ModelConfig::new("prop", heads * 64, heads, blocks, 4, 2000, 512)
    })
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (
        0u8..3,
        any::<bool>(),
        1u32..=8,
        1u32..=3,
        any::<bool>(),
        0.0f64..=100.0,
    )
        .prop_map(|(kind, compressed, batch, micro, kv_offload, cpu)| {
            let kind = match kind {
                0 => PlacementKind::Baseline,
                1 => PlacementKind::Helm,
                _ => PlacementKind::AllCpu,
            };
            Policy::new(
                PercentDist::new(0.0, cpu, 100.0 - cpu),
                kind,
                compressed,
                batch,
            )
            .with_gpu_batches(micro)
            .with_kv_offload(kv_offload)
        })
}

fn memory_strategy() -> impl Strategy<Value = HostMemoryConfig> {
    (0u8..4).prop_map(|sel| match sel {
        0 => HostMemoryConfig::dram(),
        1 => HostMemoryConfig::nvdram(),
        2 => HostMemoryConfig::memory_mode(),
        _ => HostMemoryConfig::cxl_asic(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized configurations: repeated DES runs must stay
    /// byte-identical whatever the model/policy/memory draw.
    #[test]
    fn des_repeated_runs_identical_on_random_configs(
        model in small_model(),
        policy in policy_strategy(),
        memory in memory_strategy(),
        gen_len in (0u8..3).prop_map(|sel| [1usize, 2, 32][usize::from(sel)]),
    ) {
        let system = SystemConfig::paper_platform(memory);
        let placement = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::new(32, gen_len, 1);
        let inp = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        };
        assert_repeats_identical(&inp);
    }
}
