//! Property tests over the placement algorithms: conservation,
//! distribution bounds, and determinism for arbitrary policies and
//! model shapes.

use helm_core::placement::{
    baseline_init_weight_list, helm_init_weight_list, ModelPlacement, PlacementKind, Tier,
};
use helm_core::policy::{PercentDist, Policy};
use llm::layers::LayerKind;
use llm::weights::{DType, WeightSpec};
use llm::ModelConfig;
use proptest::prelude::*;
use simcore::units::ByteSize;

/// Arbitrary (disk, cpu, gpu) distributions summing to 100.
fn dist_strategy() -> impl Strategy<Value = PercentDist> {
    (0.0f64..=100.0, 0.0f64..=100.0).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        PercentDist::new(lo, hi - lo, 100.0 - hi)
    })
}

/// Arbitrary small model shapes (heads divide hidden).
fn model_strategy() -> impl Strategy<Value = ModelConfig> {
    (1usize..=8, 1usize..=6, 2usize..=4).prop_map(|(heads, blocks, mult)| {
        ModelConfig::new("prop-model", heads * 64, heads, blocks, mult, 1000, 256)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every weight is placed on exactly one tier; bytes are conserved.
    #[test]
    fn placement_conserves_bytes(
        dist in dist_strategy(),
        model in model_strategy(),
        compressed in any::<bool>(),
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => PlacementKind::Baseline,
            1 => PlacementKind::Helm,
            _ => PlacementKind::AllCpu,
        };
        let policy = Policy::new(dist, kind, compressed, 1);
        let placement = ModelPlacement::compute(&model, &policy);
        let dtype = placement.dtype();
        let by_tier: ByteSize = [Tier::Disk, Tier::Cpu, Tier::Gpu]
            .iter()
            .map(|&t| placement.total_on(t))
            .sum();
        let expected: ByteSize = placement
            .layers()
            .iter()
            .map(|l| l.total_bytes(dtype))
            .sum();
        prop_assert_eq!(by_tier, expected);
        // The achieved split is a valid distribution.
        let achieved = placement.achieved_distribution();
        let sum: f64 = achieved.iter().sum();
        prop_assert!((sum - 100.0).abs() < 1e-6);
        prop_assert!(achieved.iter().all(|&p| (0.0..=100.0 + 1e-9).contains(&p)));
    }

    /// The baseline allocator respects percentage *monotonicity*: a
    /// higher GPU share never decreases GPU-resident bytes.
    #[test]
    fn baseline_gpu_share_is_monotone(
        gpu_lo in 0.0f64..=50.0,
        delta in 0.0f64..=50.0,
        model in model_strategy(),
    ) {
        let place = |gpu: f64| {
            let policy = Policy::new(
                PercentDist::new(0.0, 100.0 - gpu, gpu),
                PlacementKind::Baseline,
                false,
                1,
            );
            ModelPlacement::compute(&model, &policy).total_on(Tier::Gpu)
        };
        prop_assert!(place(gpu_lo + delta) >= place(gpu_lo));
    }

    /// Listing 2's midpoint allocator never assigns a tier whose
    /// percentage is zero unless every later choice is also zero.
    #[test]
    fn zero_disk_share_places_nothing_on_disk(
        cpu in 0.0f64..=100.0,
        model in model_strategy(),
    ) {
        let policy = Policy::new(
            PercentDist::new(0.0, cpu, 100.0 - cpu),
            PlacementKind::Baseline,
            false,
            1,
        );
        let placement = ModelPlacement::compute(&model, &policy);
        prop_assert_eq!(placement.total_on(Tier::Disk), ByteSize::ZERO);
    }

    /// Placement is deterministic.
    #[test]
    fn placement_is_deterministic(dist in dist_strategy(), model in model_strategy()) {
        let policy = Policy::new(dist, PlacementKind::Baseline, true, 1);
        let a = ModelPlacement::compute(&model, &policy);
        let b = ModelPlacement::compute(&model, &policy);
        prop_assert_eq!(a, b);
    }

    /// HeLM keeps MHA and FFN entirely off the storage tier (its
    /// per-kind distributions give storage 0%).
    #[test]
    fn helm_hidden_layers_avoid_disk(
        dist in dist_strategy(),
        model in model_strategy(),
    ) {
        let policy = Policy::new(dist, PlacementKind::Helm, true, 1);
        let placement = ModelPlacement::compute(&model, &policy);
        for lp in placement.layers() {
            if lp.layer().kind().is_hidden() {
                prop_assert_eq!(
                    lp.bytes_on(Tier::Disk, placement.dtype()),
                    ByteSize::ZERO
                );
            }
        }
    }

    /// The raw allocators return one tier per spec, independent of
    /// dtype and order.
    #[test]
    fn raw_allocators_cover_all_specs(
        disk in 0.0f64..=100.0,
        rest in 0.0f64..=100.0,
    ) {
        let cfg = ModelConfig::opt_125m();
        let specs = WeightSpec::mha_specs(&cfg);
        let cpu = (100.0 - disk) * rest / 100.0;
        let gpu = 100.0 - disk - cpu;
        let tiers = baseline_init_weight_list(&specs, [disk, cpu, gpu], DType::F16);
        prop_assert_eq!(tiers.len(), specs.len());
        let tiers2 = helm_init_weight_list(&specs, LayerKind::Mha, [disk, cpu, gpu], DType::F16);
        prop_assert_eq!(tiers2.len(), specs.len());
    }
}

/// Staging bytes are bounded by twice the largest offloaded layer.
#[test]
fn staging_bounds() {
    let model = ModelConfig::opt_175b();
    for kind in [
        PlacementKind::Baseline,
        PlacementKind::Helm,
        PlacementKind::AllCpu,
    ] {
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(kind)
            .with_compression(true);
        let placement = ModelPlacement::compute(&model, &policy);
        let staging = placement.staging_bytes();
        let largest = placement.largest_offloaded_layer();
        assert!(staging >= largest);
        assert!(staging <= largest * 2u64);
    }
}
