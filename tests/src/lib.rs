//! Integration-test-only crate; see the `tests/` directory for the tests.
