//! Visualize the compute/communication pipeline: ASCII Gantt bars of
//! one decode pass under the baseline and HeLM placements — the
//! textual version of the paper's Fig 8/11a overlap story.
//!
//! ```text
//! cargo run --example pipeline_timeline
//! ```

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    for placement in [PlacementKind::Baseline, PlacementKind::Helm] {
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_placement(placement)
            .with_batch_size(1);
        let server = Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model.clone(),
            policy,
        )?;
        let report = server.run(&workload)?;
        println!("=== {placement} (decode token 2, layers 1-12) ===");
        println!("c = this layer's compute, l = next layer's weight transfer\n");
        let timeline = report.timeline(2, 36);
        for line in timeline.lines().skip(1).take(12) {
            println!("{line}");
        }
        println!("\nTBT: {:.1} ms\n", report.tbt_ms());
    }
    println!(
        "Under the baseline, every FFN transfer bar dwarfs the MHA compute\n\
         bar it overlaps (memory-bound); HeLM moves bytes from the FFN\n\
         transfers into the MHA ones until the bars nearly match."
    );
    Ok(())
}
