//! What-if analysis across the CXL design space: sweep expander
//! bandwidth continuously and find where each placement policy stops
//! being memory-bound — a generalization of the paper's §V-D
//! projections beyond the two measured devices.
//!
//! ```text
//! cargo run --example cxl_whatif
//! ```

use helm_core::metrics::Stage;
use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use simcore::units::Bandwidth;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();

    println!(
        "{:>10} | {:>10} {:>10} {:>12} | {:>12}",
        "CXL GB/s", "base TBT", "HeLM TBT", "HeLM gain", "MHAc/FFNl"
    );
    let mut crossover: Option<f64> = None;
    for gbps in [
        2.0, 4.0, 5.12, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 36.0, 48.0,
    ] {
        let memory = HostMemoryConfig::cxl_custom(Bandwidth::from_gb_per_s(gbps));
        let mut tbt = [0.0f64; 2];
        let mut ratio = 0.0;
        for (i, placement) in [PlacementKind::Baseline, PlacementKind::Helm]
            .into_iter()
            .enumerate()
        {
            let policy = Policy::paper_default(&model, memory.kind())
                .with_compression(true)
                .with_placement(placement)
                .with_batch_size(1);
            let server = Server::new(
                SystemConfig::paper_platform(memory.clone()),
                model.clone(),
                policy,
            )?;
            let report = server.run(&workload)?;
            tbt[i] = report.tbt_ms();
            if placement == PlacementKind::Helm {
                ratio = report.overlap_ratio(Stage::Decode, LayerKind::Mha, LayerKind::Ffn);
            }
        }
        let gain = (1.0 - tbt[1] / tbt[0]) * 100.0;
        println!(
            "{gbps:>10.2} | {:>10.1} {:>10.1} {:>+11.1}% | {ratio:>12.2}",
            tbt[0], tbt[1], gain
        );
        if crossover.is_none() && ratio >= 1.0 {
            crossover = Some(gbps);
        }
    }
    match crossover {
        Some(bw) => println!(
            "\nWith HeLM, the decode pipeline flips from memory- to compute-bound\n\
             at ~{bw} GB/s of expander bandwidth (the paper's CXL-ASIC at 28 GB/s\n\
             is past this point; CXL-FPGA at 5.12 GB/s is far below it)."
        ),
        None => println!("\nMemory-bound across the whole swept range."),
    }
    Ok(())
}
