//! Throughput-oriented serving: use the All-CPU placement, solve for
//! the largest batch GPU memory allows, and sweep batch sizes to show
//! the near-linear scaling the paper exploits (§V-C: 8 → 44, 5x).
//!
//! ```text
//! cargo run --example throughput_serving
//! ```

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let memory = HostMemoryConfig::nvdram();

    // Solve for the largest serving batch under All-CPU placement.
    let policy = Policy::paper_default(&model, memory.kind())
        .with_compression(true)
        .with_placement(PlacementKind::AllCpu);
    let server = Server::new(
        SystemConfig::paper_platform(memory.clone()),
        model.clone(),
        policy.clone(),
    )?;
    let max_batch = server.max_batch(&workload);
    let costs = server.resident_costs(&workload);
    println!("All-CPU on {}:", memory.kind());
    println!("  GPU-resident weights : {}", costs.weights);
    println!("  prefetch staging     : {}", costs.staging);
    println!("  KV per sequence      : {}", costs.kv_per_sequence);
    println!("  max batch            : {max_batch}");
    println!();

    // Sweep batch sizes up to the maximum.
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "batch", "TTFT(ms)", "TBT(ms)", "tok/s"
    );
    // Powers of two up to the limit, plus the limit itself.
    let mut batches: Vec<u32> = std::iter::successors(Some(1u32), |b| Some(b * 2))
        .take_while(|&b| b < max_batch)
        .collect();
    batches.push(max_batch);
    let mut baseline_tps = None;
    for &batch in &batches {
        let server = Server::new(
            SystemConfig::paper_platform(memory.clone()),
            model.clone(),
            policy.clone().with_batch_size(batch),
        )?;
        let report = server.run(&workload)?;
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.3}",
            batch,
            report.ttft_ms(),
            report.tbt_ms(),
            report.throughput_tps()
        );
        if batch == 1 {
            baseline_tps = Some(report.throughput_tps());
        }
    }

    // Run the maximum explicitly for the summary.
    let report = Server::new(
        SystemConfig::paper_platform(memory.clone()),
        model,
        policy.with_batch_size(max_batch),
    )?
    .run(&workload)?;
    if let Some(b1) = baseline_tps {
        println!(
            "\nbatch {max_batch} achieves {:.1}x the single-request throughput",
            report.throughput_tps() / b1
        );
    }
    Ok(())
}
