//! Quickstart: serve OPT-175B out-of-core on Optane main memory and
//! print the paper's three key metrics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    // 1. Pick a platform: the paper's dual-socket Ice Lake + A100,
    //    with Optane DCPMM as flat main memory ("NVDRAM").
    let memory = HostMemoryConfig::nvdram();
    let system = SystemConfig::paper_platform(memory);

    // 2. Pick a model that outgrows both GPU and DRAM.
    let model = ModelConfig::opt_175b();

    // 3. Pick a policy: FlexGen's default distribution, 4-bit
    //    compression, HeLM placement for latency.
    let policy = Policy::paper_default(&model, system.memory().kind())
        .with_compression(true)
        .with_placement(PlacementKind::Helm)
        .with_batch_size(1);

    // 4. Serve the paper's workload: 128-token prompts, 21 generated.
    let server = Server::new(system, model, policy)?;
    let report = server.run(&WorkloadSpec::paper_default())?;

    println!("{}", report.summary());
    println!();
    println!("time to first token : {:>10.1} ms", report.ttft_ms());
    println!("time between tokens : {:>10.1} ms", report.tbt_ms());
    println!(
        "throughput          : {:>10.3} tokens/s",
        report.throughput_tps()
    );
    let [disk, cpu, gpu] = report.achieved_distribution;
    println!("weight distribution : disk {disk:.1}% / cpu {cpu:.1}% / gpu {gpu:.1}%");
    Ok(())
}
