//! Latency-sensitive serving: compare the three placement policies on
//! every memory configuration at batch 1 and pick the best TBT — the
//! scenario HeLM targets (paper §V-B).
//!
//! ```text
//! cargo run --example latency_serving
//! ```

use helm_core::placement::PlacementKind;
use helm_core::policy::Policy;
use helm_core::server::Server;
use helm_core::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

fn main() -> Result<(), helm_core::HelmError> {
    let model = ModelConfig::opt_175b();
    let workload = WorkloadSpec::paper_default();
    let policies = [
        PlacementKind::Baseline,
        PlacementKind::Helm,
        PlacementKind::AllCpu,
    ];

    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>10}",
        "memory", "placement", "TTFT(ms)", "TBT(ms)", "vs base"
    );
    for memory in [
        HostMemoryConfig::dram(),
        HostMemoryConfig::memory_mode(),
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::fsdax(),
    ] {
        let mut base_tbt = None;
        let mut best: Option<(PlacementKind, f64)> = None;
        for placement in policies {
            let policy = Policy::paper_default(&model, memory.kind())
                .with_compression(true)
                .with_placement(placement)
                .with_batch_size(1);
            let server = Server::new(
                SystemConfig::paper_platform(memory.clone()),
                model.clone(),
                policy,
            )?;
            let report = server.run(&workload)?;
            let tbt = report.tbt_ms();
            if placement == PlacementKind::Baseline {
                base_tbt = Some(tbt);
            }
            let gain = base_tbt.map(|b| (1.0 - tbt / b) * 100.0).unwrap_or(0.0);
            println!(
                "{:<12} {:<10} {:>12.1} {:>12.1} {:>+9.1}%",
                memory.kind().to_string(),
                placement.to_string(),
                report.ttft_ms(),
                tbt,
                gain,
            );
            if best.map(|(_, t)| tbt < t).unwrap_or(true) {
                best = Some((placement, tbt));
            }
        }
        let (winner, tbt) = best.expect("ran policies");
        println!(
            "  -> best for latency on {}: {winner} ({tbt:.1} ms)\n",
            memory.kind()
        );
    }
    Ok(())
}
