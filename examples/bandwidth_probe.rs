//! Bandwidth probe: the `nvbandwidth`-style host/GPU copy sweep plus
//! the Intel MLC-style CPU-side characterization — the paper's §IV-A
//! toolbox over the simulated platform.
//!
//! ```text
//! cargo run --example bandwidth_probe
//! ```

use hetmem::mlc;
use hetmem::numa::NumaTopology;
use simcore::units::ByteSize;
use xfer::nvbandwidth::{sweep, to_table};
use xfer::path::{Direction, PathModel};

fn main() {
    let path = PathModel::paper_system();
    let points = sweep(&path);

    println!("nvbandwidth-style sweep, host -> GPU (GB/s):");
    print!("{}", to_table(&points, Direction::HostToGpu));
    println!();
    println!("nvbandwidth-style sweep, GPU -> host (GB/s):");
    print!("{}", to_table(&points, Direction::GpuToHost));
    println!();

    println!("Intel MLC-style idle latency / bandwidth matrix:");
    let report = mlc::run(&NumaTopology::paper_system(), ByteSize::from_gb(1.0));
    print!("{}", report.to_table());
}
