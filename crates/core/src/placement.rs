//! Weight-placement algorithms.
//!
//! Three policies place each layer's weight tensors across the
//! storage/host/GPU hierarchy:
//!
//! * [`PlacementKind::Baseline`] — a faithful port of FlexGen's
//!   `init_weight_list` (paper Listing 2): walk the layer's tensors
//!   in declaration order and assign each by the cumulative-size
//!   midpoint against the requested percentage split. The paper shows
//!   this is *imperfect*: for OPT-175B it turns (0, 80, 20) into an
//!   achieved (0, 91.7, 8.3) and gives the large FFN layers no GPU
//!   share at all, producing the sawtooth of Fig 7a.
//! * [`PlacementKind::Helm`] — Heterogeneous Layerwise Mapping
//!   (Listing 3): per-layer-kind distributions — MHA (10, 90, 0) and
//!   FFN (30, 70, 0) in (GPU, host, storage) order — over the tensors
//!   *sorted ascending by size*, which lands all biases/norms plus
//!   the first FFN matrix on the GPU and balances the
//!   compute/communication pipeline.
//! * [`PlacementKind::AllCpu`] — every tensor on host memory,
//!   maximizing GPU space for KV cache (§V-C).

use crate::policy::Policy;
use llm::layers::{Layer, LayerKind};
use llm::weights::{DType, WeightSpec};
use llm::ModelConfig;
use simcore::units::ByteSize;
use std::fmt;

/// A placement tier (FlexGen's `env.disk / env.cpu / env.gpu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Storage (SSD / FSDAX).
    Disk,
    /// Host memory (DRAM / Optane / Memory Mode / CXL).
    Cpu,
    /// GPU HBM.
    Gpu,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Disk => "disk",
            Tier::Cpu => "cpu",
            Tier::Gpu => "gpu",
        })
    }
}

/// Which placement algorithm interprets the policy distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// FlexGen's percentage allocator (paper Listing 2).
    Baseline,
    /// Heterogeneous Layerwise Mapping (paper Listing 3).
    Helm,
    /// All weights on host memory (paper §V-C).
    AllCpu,
}

impl PlacementKind {
    /// Canonical CLI/JSON spelling — the name `helmsim` flags and
    /// machine-readable reports use, round-tripping through
    /// [`FromStr`](std::str::FromStr). Distinct from [`fmt::Display`],
    /// which keeps the paper's human-facing capitalization.
    pub fn as_str(self) -> &'static str {
        match self {
            PlacementKind::Baseline => "baseline",
            PlacementKind::Helm => "helm",
            PlacementKind::AllCpu => "all-cpu",
        }
    }
}

impl std::str::FromStr for PlacementKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "baseline" => Ok(PlacementKind::Baseline),
            "helm" => Ok(PlacementKind::Helm),
            "all-cpu" | "allcpu" => Ok(PlacementKind::AllCpu),
            other => Err(format!(
                "unknown placement '{other}' (expected baseline, helm, or all-cpu)"
            )),
        }
    }
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementKind::Baseline => "Baseline",
            PlacementKind::Helm => "HeLM",
            PlacementKind::AllCpu => "All-CPU",
        })
    }
}

/// One weight tensor with its assigned tier.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedWeight {
    /// The tensor.
    pub spec: WeightSpec,
    /// Where it lives.
    pub tier: Tier,
}

/// The placement of one layer's tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPlacement {
    layer: Layer,
    weights: Vec<PlacedWeight>,
}

impl LayerPlacement {
    /// The layer this placement covers.
    pub fn layer(&self) -> &Layer {
        &self.layer
    }

    /// Per-tensor assignments.
    pub fn weights(&self) -> &[PlacedWeight] {
        &self.weights
    }

    /// Bytes stored on `tier` at `dtype`.
    pub fn bytes_on(&self, tier: Tier, dtype: DType) -> ByteSize {
        self.weights
            .iter()
            .filter(|w| w.tier == tier)
            .map(|w| w.spec.bytes(dtype))
            .sum()
    }

    /// Bytes that must stream to the GPU each use (disk + cpu).
    pub fn offloaded_bytes(&self, dtype: DType) -> ByteSize {
        self.bytes_on(Tier::Disk, dtype) + self.bytes_on(Tier::Cpu, dtype)
    }

    /// Total layer bytes at `dtype`.
    pub fn total_bytes(&self, dtype: DType) -> ByteSize {
        WeightSpec::total_bytes(&self.layer.weight_specs(), dtype)
    }
}

/// A whole model's weight placement.
///
/// # Examples
///
/// The paper's achieved-distribution result: (0, 80, 20) becomes
/// (0, 91.7, 8.3) under the baseline allocator (§V-A):
///
/// ```
/// use helm_core::placement::{ModelPlacement, PlacementKind};
/// use helm_core::policy::Policy;
/// use hetmem::MemoryConfigKind;
/// use llm::ModelConfig;
///
/// let model = ModelConfig::opt_175b();
/// let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram);
/// let placement = ModelPlacement::compute(&model, &policy);
/// let [disk, cpu, gpu] = placement.achieved_distribution();
/// assert!(disk < 0.1);
/// assert!((cpu - 91.7).abs() < 0.5);
/// assert!((gpu - 8.3).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPlacement {
    layers: Vec<LayerPlacement>,
    dtype: DType,
}

impl ModelPlacement {
    /// Places every layer of `model` according to `policy`.
    pub fn compute(model: &ModelConfig, policy: &Policy) -> ModelPlacement {
        Self::compute_inner(model, policy, false)
    }

    /// Like [`ModelPlacement::compute`], but validates the policy's
    /// percentage distribution first instead of silently normalizing:
    /// every component must be finite and non-negative, and the three
    /// must sum to 100 (within floating-point slack).
    ///
    /// # Errors
    ///
    /// [`crate::HelmError::InvalidDistribution`] when the distribution
    /// is malformed.
    pub fn try_compute(
        model: &ModelConfig,
        policy: &Policy,
    ) -> Result<ModelPlacement, crate::HelmError> {
        let percents = policy.dist().as_array();
        let valid = percents.iter().all(|p| p.is_finite() && *p >= 0.0)
            && (percents.iter().sum::<f64>() - 100.0).abs() < 1e-6;
        if !valid {
            return Err(crate::HelmError::InvalidDistribution { percents });
        }
        Ok(Self::compute_inner(model, policy, false))
    }

    /// HeLM's capacity fallback: when FC1-on-GPU cannot coexist with
    /// the serving batch's KV cache, the FFN share demotes to host
    /// and only biases/norms stay GPU-resident. This reproduces the
    /// paper's Table IV batch-8 HeLM rows, whose FFN-load times match
    /// a fully host-resident FFN.
    ///
    /// For non-HeLM policies this is identical to
    /// [`ModelPlacement::compute`].
    pub fn compute_helm_demoted(model: &ModelConfig, policy: &Policy) -> ModelPlacement {
        Self::compute_inner(model, policy, true)
    }

    /// A generalized HeLM-style placement with explicit per-layer-kind
    /// (GPU, host, storage) percentages — the search space of the
    /// [`crate::autoplace`] optimizer. `mha`/`ffn` cover the hidden
    /// layers; `other` covers the embedding layers. Tensors are
    /// allocated sorted-ascending like Listing 3.
    pub fn compute_custom(
        model: &ModelConfig,
        compressed: bool,
        mha: [f64; 3],
        ffn: [f64; 3],
        other: [f64; 3],
    ) -> ModelPlacement {
        CustomPlacementTemplate::new(model, compressed).build(mha, ffn, other)
    }

    /// A pinned-prefix placement: the first `pinned_blocks` decoder
    /// blocks live entirely on the GPU, everything else on host —
    /// layer-granular pinning in the style of treating GPU memory as
    /// an inclusive weight cache (paper §VI, the vLLM/GHS comparison).
    /// The ablation benches contrast it with HeLM at equal GPU bytes:
    /// pinning concentrates its savings in a prefix instead of
    /// balancing every block's pipeline.
    pub fn compute_pinned_prefix(
        model: &ModelConfig,
        compressed: bool,
        pinned_blocks: usize,
    ) -> ModelPlacement {
        let dtype = if compressed {
            DType::Int4Grouped
        } else {
            DType::F16
        };
        let layers = Layer::sequence(model)
            .into_iter()
            .map(|layer| {
                let specs = layer.weight_specs();
                let pinned = layer.block().map(|b| b < pinned_blocks).unwrap_or(false);
                let tier = if pinned { Tier::Gpu } else { Tier::Cpu };
                let weights = specs
                    .into_iter()
                    .map(|spec| PlacedWeight { spec, tier })
                    .collect();
                LayerPlacement { layer, weights }
            })
            .collect();
        ModelPlacement { layers, dtype }
    }

    fn compute_inner(model: &ModelConfig, policy: &Policy, demote_ffn: bool) -> ModelPlacement {
        let dtype = policy.weight_dtype();
        let layers = Layer::sequence(model)
            .into_iter()
            .map(|layer| {
                let specs = layer.weight_specs();
                let tiers = match policy.placement() {
                    PlacementKind::Baseline => {
                        baseline_init_weight_list(&specs, policy.dist().as_array(), dtype)
                    }
                    PlacementKind::Helm => {
                        let kind = layer.kind();
                        if demote_ffn && kind == LayerKind::Ffn {
                            helm_allocate(&specs, [0.0, 100.0, 0.0], dtype)
                        } else {
                            helm_init_weight_list(&specs, kind, policy.dist().as_array(), dtype)
                        }
                    }
                    PlacementKind::AllCpu => vec![Tier::Cpu; specs.len()],
                };
                let weights = specs
                    .into_iter()
                    .zip(tiers)
                    .map(|(spec, tier)| PlacedWeight { spec, tier })
                    .collect();
                LayerPlacement { layer, weights }
            })
            .collect();
        ModelPlacement { layers, dtype }
    }

    /// Per-layer placements in layer order.
    pub fn layers(&self) -> &[LayerPlacement] {
        &self.layers
    }

    /// The weight storage dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Total bytes on `tier`.
    pub fn total_on(&self, tier: Tier) -> ByteSize {
        self.layers
            .iter()
            .map(|l| l.bytes_on(tier, self.dtype))
            .sum()
    }

    /// The achieved (disk, cpu, gpu) percentage split by bytes.
    pub fn achieved_distribution(&self) -> [f64; 3] {
        let disk = self.total_on(Tier::Disk).as_f64();
        let cpu = self.total_on(Tier::Cpu).as_f64();
        let gpu = self.total_on(Tier::Gpu).as_f64();
        let total = disk + cpu + gpu;
        [
            100.0 * disk / total,
            100.0 * cpu / total,
            100.0 * gpu / total,
        ]
    }

    /// Bytes streamed from host+disk per full pass over the model —
    /// the cyclic working set driving Optane/Memory-Mode degradation.
    pub fn offloaded_working_set(&self) -> ByteSize {
        self.layers
            .iter()
            .map(|l| l.offloaded_bytes(self.dtype))
            .sum()
    }

    /// The largest per-layer offloaded group (sizes the prefetch
    /// double-buffer).
    pub fn largest_offloaded_layer(&self) -> ByteSize {
        self.layers
            .iter()
            .map(|l| l.offloaded_bytes(self.dtype))
            .max()
            .unwrap_or(ByteSize::ZERO)
    }

    /// Prefetch staging bytes: the pipeline double-buffers the
    /// offloaded portions of two consecutive layers (layer *j* in use
    /// while *j+1* streams), so the reservation is the largest
    /// adjacent-pair sum (cyclic).
    pub fn staging_bytes(&self) -> ByteSize {
        let n = self.layers.len();
        (0..n)
            .map(|i| {
                self.layers[i].offloaded_bytes(self.dtype)
                    + self.layers[(i + 1) % n].offloaded_bytes(self.dtype)
            })
            .max()
            .unwrap_or(ByteSize::ZERO)
    }

    /// The achieved split for layers of one kind only (Fig 7b/7c and
    /// Fig 10 plot these for MHA and FFN).
    pub fn distribution_for_kind(&self, kind: LayerKind) -> [f64; 3] {
        let mut by_tier = [0.0f64; 3];
        for l in self.layers.iter().filter(|l| l.layer.kind() == kind) {
            by_tier[0] += l.bytes_on(Tier::Disk, self.dtype).as_f64();
            by_tier[1] += l.bytes_on(Tier::Cpu, self.dtype).as_f64();
            by_tier[2] += l.bytes_on(Tier::Gpu, self.dtype).as_f64();
        }
        let total: f64 = by_tier.iter().sum();
        by_tier.map(|b| 100.0 * b / total)
    }
}

/// Byte totals a [`ModelPlacement::compute_custom`] placement would
/// produce, computed without building it. Feeds the autoplace
/// screen's feasibility checks, where most candidates are rejected
/// on these totals alone and never pay for a placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomTotals {
    /// GPU-resident weight bytes ([`ModelPlacement::total_on`] `Gpu`).
    pub gpu: ByteSize,
    /// Host-resident weight bytes ([`ModelPlacement::total_on`] `Cpu`).
    pub cpu: ByteSize,
    /// Storage-resident weight bytes ([`ModelPlacement::total_on`] `Disk`).
    pub disk: ByteSize,
    /// Double-buffer staging bytes ([`ModelPlacement::staging_bytes`]).
    pub staging: ByteSize,
}

/// A reusable generator of custom placements over one model.
///
/// [`ModelPlacement::compute_custom`] walks the whole flattened layer
/// sequence and allocates every layer's tensors; a grid search calls
/// it once per candidate, re-deriving the identical layer sequence
/// and spec lists every time. The template hoists that invariant work
/// once: layers are grouped into classes with identical
/// `(kind, weight specs)` — one MHA class and one FFN class for the
/// uniform decoder stacks of the OPT family, plus the embeddings —
/// and per-candidate work shrinks to one [`helm_allocate`] call per
/// class. [`Self::build`] is bit-identical to `compute_custom` by
/// construction (`compute_custom` delegates to it), and
/// [`Self::totals`] returns the byte totals the built placement
/// would report without materializing per-layer assignments.
#[derive(Debug, Clone)]
pub struct CustomPlacementTemplate {
    dtype: DType,
    layers: Vec<Layer>,
    /// Class index of each layer in sequence order.
    class_of: Vec<usize>,
    /// The distinct `(kind, specs)` allocation classes.
    classes: Vec<(LayerKind, Vec<WeightSpec>)>,
}

impl CustomPlacementTemplate {
    /// Derives the template for `model` at the placement dtype
    /// `compressed` selects.
    pub fn new(model: &ModelConfig, compressed: bool) -> Self {
        let dtype = if compressed {
            DType::Int4Grouped
        } else {
            DType::F16
        };
        let layers = Layer::sequence(model);
        let mut classes: Vec<(LayerKind, Vec<WeightSpec>)> = Vec::new();
        let class_of = layers
            .iter()
            .map(|layer| {
                let specs = layer.weight_specs();
                match classes
                    .iter()
                    .position(|(kind, cached)| *kind == layer.kind() && *cached == specs)
                {
                    Some(class) => class,
                    None => {
                        classes.push((layer.kind(), specs));
                        classes.len() - 1
                    }
                }
            })
            .collect();
        CustomPlacementTemplate {
            dtype,
            layers,
            class_of,
            classes,
        }
    }

    /// One tier assignment per class — exactly what
    /// [`ModelPlacement::compute_custom`] would compute per layer.
    fn class_tiers(&self, mha: [f64; 3], ffn: [f64; 3], other: [f64; 3]) -> Vec<Vec<Tier>> {
        self.classes
            .iter()
            .map(|(kind, specs)| {
                let percents = match kind {
                    LayerKind::Mha => mha,
                    LayerKind::Ffn => ffn,
                    _ => other,
                };
                helm_allocate(specs, percents, self.dtype)
            })
            .collect()
    }

    /// The byte totals of the placement [`Self::build`] would return
    /// for these percentages, at one allocation per class instead of
    /// one per layer.
    pub fn totals(&self, mha: [f64; 3], ffn: [f64; 3], other: [f64; 3]) -> CustomTotals {
        let tiers = self.class_tiers(mha, ffn, other);
        // Per-class (gpu, cpu, disk) byte sums.
        let per_class: Vec<[ByteSize; 3]> = self
            .classes
            .iter()
            .zip(&tiers)
            .map(|((_, specs), assigned)| {
                let mut sums = [ByteSize::ZERO; 3];
                for (spec, tier) in specs.iter().zip(assigned) {
                    let slot = match tier {
                        Tier::Gpu => 0,
                        Tier::Cpu => 1,
                        Tier::Disk => 2,
                    };
                    sums[slot] += spec.bytes(self.dtype);
                }
                sums
            })
            .collect();
        let mut totals = [ByteSize::ZERO; 3];
        for &class in &self.class_of {
            for (total, sum) in totals.iter_mut().zip(per_class[class]) {
                *total += sum;
            }
        }
        // staging_bytes: max offloaded bytes over adjacent layer
        // pairs (wrapping), with offloaded = cpu + disk.
        let offloaded = |i: usize| -> ByteSize {
            per_class[self.class_of[i]][1] + per_class[self.class_of[i]][2]
        };
        let n = self.class_of.len();
        let staging = (0..n)
            .map(|i| offloaded(i) + offloaded((i + 1) % n))
            .max()
            .unwrap_or(ByteSize::ZERO);
        CustomTotals {
            gpu: totals[0],
            cpu: totals[1],
            disk: totals[2],
            staging,
        }
    }

    /// Materializes the full placement — the same output
    /// [`ModelPlacement::compute_custom`] returns for these
    /// percentages.
    pub fn build(&self, mha: [f64; 3], ffn: [f64; 3], other: [f64; 3]) -> ModelPlacement {
        let tiers = self.class_tiers(mha, ffn, other);
        let layers = self
            .layers
            .iter()
            .zip(&self.class_of)
            .map(|(layer, &class)| {
                let (_, specs) = &self.classes[class];
                let weights = specs
                    .iter()
                    .zip(&tiers[class])
                    .map(|(spec, &tier)| PlacedWeight {
                        spec: spec.clone(),
                        tier,
                    })
                    .collect();
                LayerPlacement {
                    layer: layer.clone(),
                    weights,
                }
            })
            .collect();
        ModelPlacement {
            layers,
            dtype: self.dtype,
        }
    }
}

/// Listing 2, `get_device`: first choice whose cumulative percentage
/// exceeds the current midpoint.
fn get_device(cur_percent: f64, percents: [f64; 3], choices: [Tier; 3]) -> Tier {
    let mut cumsum = 0.0;
    for i in 0..3 {
        cumsum += percents[i];
        if cur_percent < cumsum {
            return choices[i];
        }
    }
    choices[2]
}

/// Listing 2, `init_weight_list`: FlexGen's cumulative-midpoint
/// allocator over the declaration-ordered spec list with
/// (disk, cpu, gpu) percentages.
pub fn baseline_init_weight_list(
    specs: &[WeightSpec],
    dev_percents: [f64; 3],
    dtype: DType,
) -> Vec<Tier> {
    midpoint_allocate(
        specs.iter().map(|s| s.bytes(dtype).as_f64()),
        dev_percents,
        [Tier::Disk, Tier::Cpu, Tier::Gpu],
    )
}

/// Listing 3: HeLM's allocator. Per-kind (GPU, host, storage)
/// distributions for MHA/FFN, the policy's own distribution
/// (reordered to GPU-first) otherwise, over the specs *sorted
/// ascending by size*.
pub fn helm_init_weight_list(
    specs: &[WeightSpec],
    kind: LayerKind,
    policy_disk_cpu_gpu: [f64; 3],
    dtype: DType,
) -> Vec<Tier> {
    let dev_percents = match kind {
        LayerKind::Mha => [10.0, 90.0, 0.0],
        LayerKind::Ffn => [30.0, 70.0, 0.0],
        _ => [
            policy_disk_cpu_gpu[2],
            policy_disk_cpu_gpu[1],
            policy_disk_cpu_gpu[0],
        ],
    };
    helm_allocate(specs, dev_percents, dtype)
}

/// HeLM's inner allocator: (GPU, host, storage) percentages over the
/// specs sorted ascending by size (Listing 3 lines 11-17).
fn helm_allocate(specs: &[WeightSpec], dev_percents: [f64; 3], dtype: DType) -> Vec<Tier> {
    let choices = [Tier::Gpu, Tier::Cpu, Tier::Disk];
    // Sort indices ascending by size (stable, like Python's sorted).
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&a, &b| {
        specs[a]
            .bytes(dtype)
            .cmp(&specs[b].bytes(dtype))
            .then(a.cmp(&b))
    });
    let sorted_tiers = midpoint_allocate(
        order.iter().map(|&i| specs[i].bytes(dtype).as_f64()),
        dev_percents,
        choices,
    );
    // Scatter assignments back to declaration order.
    let mut tiers = vec![Tier::Cpu; specs.len()];
    for (pos, &orig) in order.iter().enumerate() {
        tiers[orig] = sorted_tiers[pos];
    }
    tiers
}

/// The shared cumulative-midpoint loop (Listing 2, lines 14-24).
fn midpoint_allocate(
    sizes: impl Iterator<Item = f64>,
    dev_percents: [f64; 3],
    choices: [Tier; 3],
) -> Vec<Tier> {
    let sizes: Vec<f64> = sizes.collect();
    let total: f64 = sizes.iter().sum();
    if total <= 0.0 {
        return vec![choices[0]; sizes.len()];
    }
    let mut cumsum = 0.0;
    sizes
        .iter()
        .map(|&size| {
            cumsum += size;
            let mid_percent = (cumsum - size / 2.0) / total * 100.0;
            get_device(mid_percent, dev_percents, choices)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PercentDist, Policy};
    use hetmem::MemoryConfigKind;

    fn opt175b_policy(kind: PlacementKind, compressed: bool) -> (ModelConfig, Policy) {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, MemoryConfigKind::NvDram)
            .with_placement(kind)
            .with_compression(compressed);
        (model, policy)
    }

    #[test]
    fn try_compute_matches_compute_on_valid_policies() {
        let (model, policy) = opt175b_policy(PlacementKind::Helm, true);
        let fallible = ModelPlacement::try_compute(&model, &policy).expect("valid distribution");
        assert_eq!(fallible, ModelPlacement::compute(&model, &policy));
    }

    #[test]
    fn try_new_distribution_rejects_garbage() {
        use crate::HelmError;
        assert!(matches!(
            PercentDist::try_new(-10.0, 90.0, 20.0),
            Err(HelmError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            PercentDist::try_new(f64::NAN, 50.0, 50.0),
            Err(HelmError::InvalidDistribution { .. })
        ));
        assert!(matches!(
            PercentDist::try_new(10.0, 20.0, 30.0),
            Err(HelmError::InvalidDistribution { .. })
        ));
        let ok = PercentDist::try_new(0.0, 80.0, 20.0).expect("sums to 100");
        assert_eq!(ok.as_array(), [0.0, 80.0, 20.0]);
    }

    #[test]
    fn baseline_achieves_paper_distribution_nvdram() {
        // Paper §V-A: input (0, 80, 20) -> achieved (0, 91.7, 8.3).
        let (model, policy) = opt175b_policy(PlacementKind::Baseline, false);
        let placement = ModelPlacement::compute(&model, &policy);
        let [disk, cpu, gpu] = placement.achieved_distribution();
        assert!(disk < 1e-9);
        assert!((cpu - 91.7).abs() < 0.5, "cpu {cpu}");
        assert!((gpu - 8.3).abs() < 0.5, "gpu {gpu}");
    }

    #[test]
    fn baseline_achieves_paper_distribution_ssd() {
        // Paper §V-A: input (65, 15, 20) -> achieved (58.6, 33.1, 8.3).
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, MemoryConfigKind::Ssd);
        let placement = ModelPlacement::compute(&model, &policy);
        let [disk, cpu, gpu] = placement.achieved_distribution();
        assert!((disk - 58.6).abs() < 1.0, "disk {disk}");
        assert!((cpu - 33.1).abs() < 1.0, "cpu {cpu}");
        assert!((gpu - 8.3).abs() < 0.5, "gpu {gpu}");
    }

    #[test]
    fn baseline_gives_ffn_no_gpu_share() {
        // Fig 7c: the larger FFN layer gets no GPU allocation while
        // the smaller MHA layer does.
        let (model, policy) = opt175b_policy(PlacementKind::Baseline, true);
        let placement = ModelPlacement::compute(&model, &policy);
        let ffn = placement.distribution_for_kind(LayerKind::Ffn);
        let mha = placement.distribution_for_kind(LayerKind::Mha);
        assert!(ffn[2] < 0.1, "FFN gpu share {}", ffn[2]);
        assert!(mha[2] > 20.0, "MHA gpu share {}", mha[2]);
    }

    #[test]
    fn baseline_w_out_is_the_gpu_resident_mha_matrix() {
        let (model, policy) = opt175b_policy(PlacementKind::Baseline, false);
        let placement = ModelPlacement::compute(&model, &policy);
        let mha = placement
            .layers()
            .iter()
            .find(|l| l.layer().kind() == LayerKind::Mha)
            .unwrap();
        for w in mha.weights() {
            let expect_gpu = matches!(w.spec.name(), "w_out" | "b_out" | "w_ln" | "b_ln");
            assert_eq!(
                w.tier == Tier::Gpu,
                expect_gpu,
                "{} on {:?}",
                w.spec.name(),
                w.tier
            );
        }
    }

    #[test]
    fn helm_places_fc1_and_small_tensors_on_gpu() {
        // Paper Fig 9/10: HeLM puts FFN's first FC matrix plus all
        // biases/norms on the GPU; everything else on host.
        let (model, policy) = opt175b_policy(PlacementKind::Helm, true);
        let placement = ModelPlacement::compute(&model, &policy);
        let ffn = placement
            .layers()
            .iter()
            .find(|l| l.layer().kind() == LayerKind::Ffn)
            .unwrap();
        for w in ffn.weights() {
            let expect_gpu = w.spec.name() != "wo";
            assert_eq!(
                w.tier == Tier::Gpu,
                expect_gpu,
                "{} on {:?}",
                w.spec.name(),
                w.tier
            );
        }
        let mha = placement
            .layers()
            .iter()
            .find(|l| l.layer().kind() == LayerKind::Mha)
            .unwrap();
        for w in mha.weights() {
            let expect_gpu = !w.spec.name().starts_with("w_q")
                && !w.spec.name().starts_with("w_k")
                && !w.spec.name().starts_with("w_v")
                && w.spec.name() != "w_out";
            assert_eq!(
                w.tier == Tier::Gpu,
                expect_gpu,
                "{} on {:?}",
                w.spec.name(),
                w.tier
            );
        }
    }

    #[test]
    fn helm_holds_a_third_of_weights_on_gpu() {
        // Paper §V-C: "even with HeLM, only 33% of the total weights
        // are held in the GPU memory".
        let (model, policy) = opt175b_policy(PlacementKind::Helm, true);
        let placement = ModelPlacement::compute(&model, &policy);
        let [_, _, gpu] = placement.achieved_distribution();
        assert!((gpu - 33.0).abs() < 1.5, "gpu {gpu}");
    }

    #[test]
    fn helm_halves_ffn_transfer_and_raises_mha() {
        // Paper Fig 11a: FFN transfer bytes drop ~49%, MHA rise ~33%.
        let (model, base_policy) = opt175b_policy(PlacementKind::Baseline, true);
        let helm_policy = base_policy.clone().with_placement(PlacementKind::Helm);
        let base = ModelPlacement::compute(&model, &base_policy);
        let helm = ModelPlacement::compute(&model, &helm_policy);
        let dtype = base.dtype();
        let offloaded = |p: &ModelPlacement, kind| {
            p.layers()
                .iter()
                .filter(|l| l.layer().kind() == kind)
                .map(|l| l.offloaded_bytes(dtype).as_f64())
                .sum::<f64>()
        };
        let ffn_change = offloaded(&helm, LayerKind::Ffn) / offloaded(&base, LayerKind::Ffn);
        let mha_change = offloaded(&helm, LayerKind::Mha) / offloaded(&base, LayerKind::Mha);
        assert!((ffn_change - 0.5).abs() < 0.02, "FFN x{ffn_change}");
        assert!((mha_change - 1.33).abs() < 0.03, "MHA x{mha_change}");
    }

    #[test]
    fn all_cpu_offloads_everything() {
        let (model, policy) = opt175b_policy(PlacementKind::AllCpu, true);
        let placement = ModelPlacement::compute(&model, &policy);
        assert_eq!(placement.total_on(Tier::Gpu), ByteSize::ZERO);
        assert_eq!(placement.total_on(Tier::Disk), ByteSize::ZERO);
        let [_, cpu, _] = placement.achieved_distribution();
        assert!((cpu - 100.0).abs() < 1e-9);
    }

    #[test]
    fn every_weight_placed_exactly_once() {
        for kind in [
            PlacementKind::Baseline,
            PlacementKind::Helm,
            PlacementKind::AllCpu,
        ] {
            let (model, policy) = opt175b_policy(kind, true);
            let placement = ModelPlacement::compute(&model, &policy);
            let total: ByteSize = [Tier::Disk, Tier::Cpu, Tier::Gpu]
                .iter()
                .map(|&t| placement.total_on(t))
                .sum();
            let expect: ByteSize = placement
                .layers()
                .iter()
                .map(|l| l.total_bytes(placement.dtype()))
                .sum();
            assert_eq!(total, expect, "{kind:?}");
        }
    }

    #[test]
    fn sawtooth_exists_under_baseline_not_helm() {
        // Fig 7a: alternating MHA/FFN offloaded sizes under baseline;
        // HeLM flattens the pattern (MHA ~0.30 vs FFN ~0.34 GB).
        let (model, base_policy) = opt175b_policy(PlacementKind::Baseline, true);
        let helm_policy = base_policy.clone().with_placement(PlacementKind::Helm);
        let base = ModelPlacement::compute(&model, &base_policy);
        let helm = ModelPlacement::compute(&model, &helm_policy);
        let ratio = |p: &ModelPlacement| {
            let mha = p.layers()[1].offloaded_bytes(p.dtype()).as_f64();
            let ffn = p.layers()[2].offloaded_bytes(p.dtype()).as_f64();
            ffn / mha
        };
        assert!(ratio(&base) > 2.0, "baseline ridge/dip {}", ratio(&base));
        assert!(ratio(&helm) < 1.5, "HeLM ridge/dip {}", ratio(&helm));
    }

    #[test]
    fn custom_distribution_is_respected_roughly() {
        let model = ModelConfig::opt_30b();
        let policy = Policy::paper_default(&model, MemoryConfigKind::Dram)
            .with_dist(PercentDist::new(0.0, 100.0, 0.0));
        let placement = ModelPlacement::compute(&model, &policy);
        let [_, cpu, gpu] = placement.achieved_distribution();
        assert!(cpu > 99.9);
        assert!(gpu < 0.1);
    }

    #[test]
    fn largest_offloaded_layer_is_ffn_under_baseline() {
        let (model, policy) = opt175b_policy(PlacementKind::Baseline, false);
        let placement = ModelPlacement::compute(&model, &policy);
        let largest = placement.largest_offloaded_layer();
        let ffn = placement.layers()[2].offloaded_bytes(DType::F16);
        // Embedding tables can exceed FFN; check FFN is the largest
        // *hidden* group.
        assert!(largest >= ffn);
        assert!((ffn.as_gb() - 2.416).abs() < 0.01, "ffn {ffn}");
    }

    #[test]
    fn template_totals_match_built_placement() {
        // The autoplace screen rejects candidates on the template's
        // analytic byte totals alone. Soundness requires those totals
        // to equal the built placement's — for every tier and for the
        // staging ring — across the percent space the search sweeps.
        for compressed in [false, true] {
            let model = ModelConfig::opt_175b();
            let template = CustomPlacementTemplate::new(&model, compressed);
            for (mha, ffn) in [(0u32, 0u32), (10, 30), (37, 61), (50, 100), (100, 0)] {
                let mha_pct = [f64::from(mha), f64::from(100 - mha), 0.0];
                let ffn_pct = [f64::from(ffn), f64::from(100 - ffn), 0.0];
                let other_pct = [0.0, 100.0, 0.0];
                let totals = template.totals(mha_pct, ffn_pct, other_pct);
                let built = template.build(mha_pct, ffn_pct, other_pct);
                assert_eq!(totals.gpu, built.total_on(Tier::Gpu), "gpu at {mha}/{ffn}");
                assert_eq!(totals.cpu, built.total_on(Tier::Cpu), "cpu at {mha}/{ffn}");
                assert_eq!(
                    totals.disk,
                    built.total_on(Tier::Disk),
                    "disk at {mha}/{ffn}"
                );
                assert_eq!(
                    totals.staging,
                    built.staging_bytes(),
                    "staging at {mha}/{ffn}"
                );
            }
        }
    }

    #[test]
    fn template_build_matches_compute_custom() {
        // `compute_custom` delegates to the template, so the two
        // construction paths cannot drift; pin it anyway so a future
        // split reintroducing a second path fails loudly.
        let model = ModelConfig::opt_30b();
        let template = CustomPlacementTemplate::new(&model, true);
        let mha = [30.0, 70.0, 0.0];
        let ffn = [10.0, 90.0, 0.0];
        let other = [0.0, 100.0, 0.0];
        assert_eq!(
            template.build(mha, ffn, other),
            ModelPlacement::compute_custom(&model, true, mha, ffn, other)
        );
    }

    #[test]
    fn placement_kind_cli_names_round_trip() {
        for kind in [
            PlacementKind::Baseline,
            PlacementKind::Helm,
            PlacementKind::AllCpu,
        ] {
            assert_eq!(kind.as_str().parse::<PlacementKind>().unwrap(), kind);
        }
        assert_eq!(
            "allcpu".parse::<PlacementKind>().unwrap(),
            PlacementKind::AllCpu
        );
        assert!("helm-2".parse::<PlacementKind>().is_err());
    }
}
