//! The full platform assembly (Table I + Table II).

use crate::placement::Tier;
use gpusim::GpuSpec;
use hetmem::config::DeviceHandle;
use hetmem::numa::{NodeId, NumaTopology};
use hetmem::HostMemoryConfig;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};
use xfer::path::{HostEndpoint, PathModel, TransferRequest};

/// Which NUMA node(s) hold host-resident data.
///
/// The paper's Fig 3b makes node choice matter: GPU→Optane writes to
/// the GPU-local node contend with inbound PCIe traffic on the mesh
/// and run *slower* than writes to the remote node, while reads pay a
/// small penalty remotely. Interleaving splits traffic across both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NodePolicy {
    /// Everything on the GPU-local node (node 0).
    #[default]
    GpuLocal,
    /// Everything on the remote node (node 1).
    Remote,
    /// Pages interleaved across both nodes (Linux default for
    /// `numactl --interleave`).
    Interleaved,
}

/// The serving platform: host memory configuration, GPU, NUMA
/// topology, and the data-path model between them.
///
/// # Examples
///
/// ```
/// use helm_core::system::SystemConfig;
/// use helm_core::placement::Tier;
/// use hetmem::HostMemoryConfig;
/// use simcore::units::ByteSize;
///
/// let sys = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
/// let bw = sys.tier_bandwidth(Tier::Cpu, ByteSize::from_mb(300.0), None).unwrap();
/// assert!(bw.as_gb_per_s() < 21.0); // Optane-fed, not PCIe-fed
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    memory: HostMemoryConfig,
    gpu: GpuSpec,
    topology: NumaTopology,
    path: PathModel,
    node_policy: NodePolicy,
    kv_node_policy: NodePolicy,
}

impl SystemConfig {
    /// The paper's platform (Table I): dual-socket Ice Lake, A100 on
    /// node 0 over PCIe Gen 4 x16, host weights on the GPU-local node.
    ///
    /// CXL configurations get a Gen 5 x16 link instead: the paper's
    /// §V-D projection divides weights by the Table III device
    /// bandwidths directly, i.e. it assumes the expander — not the
    /// accelerator link — is the bottleneck (CXL itself rides PCIe 5,
    /// §II-D).
    pub fn paper_platform(memory: HostMemoryConfig) -> Self {
        use hetmem::MemoryConfigKind as K;
        let path = match memory.kind() {
            K::CxlFpga | K::CxlAsic | K::CxlCustom => PathModel::new(
                xfer::pcie::PcieLink::new(xfer::pcie::PcieGen::Gen5, 16),
                NodeId(0),
            ),
            _ => PathModel::paper_system(),
        };
        SystemConfig {
            memory,
            gpu: GpuSpec::a100_40gb(),
            topology: NumaTopology::paper_system(),
            path,
            node_policy: NodePolicy::GpuLocal,
            kv_node_policy: NodePolicy::GpuLocal,
        }
    }

    /// A custom platform.
    pub fn new(
        memory: HostMemoryConfig,
        gpu: GpuSpec,
        topology: NumaTopology,
        path: PathModel,
        weight_node: NodeId,
    ) -> Self {
        SystemConfig {
            memory,
            gpu,
            topology,
            path,
            node_policy: if weight_node == NodeId(0) {
                NodePolicy::GpuLocal
            } else {
                NodePolicy::Remote
            },
            kv_node_policy: NodePolicy::GpuLocal,
        }
    }

    /// Selects where host-resident weights live across the NUMA
    /// nodes (also the default for the KV cache unless
    /// [`SystemConfig::with_kv_node_policy`] overrides it).
    pub fn with_node_policy(mut self, policy: NodePolicy) -> Self {
        self.node_policy = policy;
        self.kv_node_policy = policy;
        self
    }

    /// Overrides the node placement of the host-resident KV cache
    /// independently of the weights — the Fig 3b asymmetry makes
    /// "weights local, write-heavy cache remote" the interesting
    /// split.
    pub fn with_kv_node_policy(mut self, policy: NodePolicy) -> Self {
        self.kv_node_policy = policy;
        self
    }

    /// The active NUMA placement policy for host weights.
    pub fn node_policy(&self) -> NodePolicy {
        self.node_policy
    }

    /// The active NUMA placement policy for the host KV cache.
    pub fn kv_node_policy(&self) -> NodePolicy {
        self.kv_node_policy
    }

    /// Effective bandwidth for `req` under the node policy. The
    /// interleaved rate is the harmonic blend of the two nodes' path
    /// rates: halves share one PCIe link, so per-byte costs add.
    fn policy_bandwidth_for(
        &self,
        policy: NodePolicy,
        device: &DeviceHandle,
        req: &TransferRequest,
    ) -> Bandwidth {
        match policy {
            NodePolicy::GpuLocal => self
                .path
                .effective_bandwidth(&HostEndpoint::direct(device.as_ref(), NodeId(0)), req),
            NodePolicy::Remote => self
                .path
                .effective_bandwidth(&HostEndpoint::direct(device.as_ref(), NodeId(1)), req),
            NodePolicy::Interleaved => {
                let a = self
                    .path
                    .effective_bandwidth(&HostEndpoint::direct(device.as_ref(), NodeId(0)), req)
                    .as_bytes_per_s();
                let b = self
                    .path
                    .effective_bandwidth(&HostEndpoint::direct(device.as_ref(), NodeId(1)), req)
                    .as_bytes_per_s();
                // Half the bytes at each node's rate, serialized over
                // the shared link: blended per-byte cost.
                Bandwidth::from_bytes_per_s(1.0 / (0.5 / a + 0.5 / b))
            }
        }
    }

    fn policy_bandwidth(&self, device: &DeviceHandle, req: &TransferRequest) -> Bandwidth {
        self.policy_bandwidth_for(self.node_policy, device, req)
    }

    /// Effective host→GPU bandwidth for KV-cache streams under the
    /// KV node policy.
    pub fn kv_stream_bandwidth(
        &self,
        bytes: ByteSize,
        working_set: Option<ByteSize>,
    ) -> Option<Bandwidth> {
        let device = self.tier_device(Tier::Cpu)?;
        let mut req = TransferRequest::host_to_gpu(bytes);
        req.working_set = working_set;
        Some(self.policy_bandwidth_for(self.kv_node_policy, device, &req))
    }

    /// The host memory configuration.
    pub fn memory(&self) -> &HostMemoryConfig {
        &self.memory
    }

    /// Swaps the host memory configuration (used by the CXL
    /// projections, which re-cost the same placement on different
    /// memory).
    pub fn with_memory(mut self, memory: HostMemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// The GPU.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The NUMA topology.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// The host/GPU path model.
    pub fn path(&self) -> &PathModel {
        &self.path
    }

    /// The device backing a placement tier, if the configuration has
    /// one (`Tier::Gpu` has none — it needs no host transfer).
    pub fn tier_device(&self, tier: Tier) -> Option<&DeviceHandle> {
        match tier {
            Tier::Cpu => Some(self.memory.cpu_device()),
            Tier::Disk => self.memory.disk_device(),
            Tier::Gpu => None,
        }
    }

    /// The capacity of a placement tier.
    pub fn tier_capacity(&self, tier: Tier) -> ByteSize {
        match tier {
            Tier::Gpu => self.gpu.hbm_capacity(),
            _ => self
                .tier_device(tier)
                .map(|d| d.capacity())
                .unwrap_or(ByteSize::ZERO),
        }
    }

    /// Effective host→GPU bandwidth streaming `bytes` from `tier`,
    /// with an optional cyclic `working_set` (total tier-resident
    /// weight bytes). `None` when the configuration lacks the tier.
    pub fn tier_bandwidth(
        &self,
        tier: Tier,
        bytes: ByteSize,
        working_set: Option<ByteSize>,
    ) -> Option<Bandwidth> {
        let device = self.tier_device(tier)?;
        let mut req = TransferRequest::host_to_gpu(bytes);
        req.working_set = working_set;
        Some(self.policy_bandwidth(device, &req))
    }

    /// Wall-clock time for one host→GPU transfer of `bytes` from
    /// `tier` (setup + latency + streaming).
    pub fn tier_transfer_time(
        &self,
        tier: Tier,
        bytes: ByteSize,
        working_set: Option<ByteSize>,
    ) -> Option<SimDuration> {
        let device = self.tier_device(tier)?;
        let mut req = TransferRequest::host_to_gpu(bytes);
        req.working_set = working_set;
        // Fixed (setup/latency) costs from the local-node endpoint;
        // streaming at the policy-blended rate.
        let ep = HostEndpoint::direct(device.as_ref(), NodeId(0));
        let local = self.path.transfer_time(&ep, &req);
        let local_bw = self.path.effective_bandwidth(&ep, &req);
        let fixed = local - local_bw.time_for(bytes);
        Some(fixed + self.policy_bandwidth(device, &req).time_for(bytes))
    }

    /// Effective GPU→host bandwidth writing `bytes` back to `tier`
    /// (KV-cache write-back under offloading). Hits the paper's
    /// Fig 3b regime: Optane writes collapse to ~3 GB/s.
    pub fn tier_writeback_bandwidth(
        &self,
        tier: Tier,
        bytes: ByteSize,
        working_set: Option<ByteSize>,
    ) -> Option<Bandwidth> {
        let device = self.tier_device(tier)?;
        let mut req = TransferRequest::gpu_to_host(bytes);
        req.working_set = working_set;
        Some(self.policy_bandwidth_for(self.kv_node_policy, device, &req))
    }

    /// Wall-clock time for one GPU→host write-back of `bytes`.
    pub fn tier_writeback_time(
        &self,
        tier: Tier,
        bytes: ByteSize,
        working_set: Option<ByteSize>,
    ) -> Option<SimDuration> {
        let device = self.tier_device(tier)?;
        let mut req = TransferRequest::gpu_to_host(bytes);
        req.working_set = working_set;
        let ep = HostEndpoint::direct(device.as_ref(), NodeId(0));
        let local = self.path.transfer_time(&ep, &req);
        let local_bw = self.path.effective_bandwidth(&ep, &req);
        let fixed = local - local_bw.time_for(bytes);
        Some(
            fixed
                + self
                    .policy_bandwidth_for(self.kv_node_policy, device, &req)
                    .time_for(bytes),
        )
    }

    /// The PCIe link capacity available to concurrent weight flows.
    pub fn link_capacity(&self, bytes: ByteSize) -> Bandwidth {
        self.path
            .pcie()
            .effective(xfer::pcie::LinkDirection::HostToDevice, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_devices_follow_config() {
        let nv = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        assert!(nv.tier_device(Tier::Cpu).is_some());
        assert!(nv.tier_device(Tier::Disk).is_none());
        assert!(nv.tier_device(Tier::Gpu).is_none());
        let ssd = SystemConfig::paper_platform(HostMemoryConfig::ssd());
        assert!(ssd.tier_device(Tier::Disk).is_some());
    }

    #[test]
    fn capacities_match_table_i() {
        let sys = SystemConfig::paper_platform(HostMemoryConfig::dram());
        assert_eq!(sys.tier_capacity(Tier::Gpu), ByteSize::from_gb(40.0));
        assert_eq!(sys.tier_capacity(Tier::Cpu), ByteSize::from_gib(256.0));
        assert_eq!(sys.tier_capacity(Tier::Disk), ByteSize::ZERO);
    }

    #[test]
    fn dram_tier_runs_at_pcie_rate() {
        let sys = SystemConfig::paper_platform(HostMemoryConfig::dram());
        let bw = sys
            .tier_bandwidth(Tier::Cpu, ByteSize::from_gb(1.0), None)
            .unwrap();
        assert!((bw.as_gb_per_s() - 24.7).abs() < 0.5, "{bw}");
    }

    #[test]
    fn nvdram_with_working_set_degrades() {
        let sys = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let fresh = sys
            .tier_bandwidth(Tier::Cpu, ByteSize::from_mb(300.0), None)
            .unwrap();
        let cycled = sys
            .tier_bandwidth(
                Tier::Cpu,
                ByteSize::from_mb(300.0),
                Some(ByteSize::from_gb(300.0)),
            )
            .unwrap();
        assert!(cycled < fresh);
        assert!((cycled.as_gb_per_s() - 16.7).abs() < 0.4, "{cycled}");
    }

    #[test]
    fn disk_transfer_time_includes_bounce() {
        let sys = SystemConfig::paper_platform(HostMemoryConfig::fsdax());
        let t = sys
            .tier_transfer_time(Tier::Disk, ByteSize::from_gb(1.0), None)
            .unwrap();
        // ~1 GB at ~3 GB/s plus fill latency.
        assert!(t.as_secs() > 0.3);
    }
}

#[cfg(test)]
mod node_policy_tests {
    use super::*;
    use crate::placement::Tier;
    use hetmem::HostMemoryConfig;

    fn sys(policy: NodePolicy) -> SystemConfig {
        SystemConfig::paper_platform(HostMemoryConfig::nvdram()).with_node_policy(policy)
    }

    #[test]
    fn remote_reads_are_slightly_slower() {
        let bytes = ByteSize::from_mb(300.0);
        let local = sys(NodePolicy::GpuLocal)
            .tier_bandwidth(Tier::Cpu, bytes, None)
            .unwrap();
        let remote = sys(NodePolicy::Remote)
            .tier_bandwidth(Tier::Cpu, bytes, None)
            .unwrap();
        let inter = sys(NodePolicy::Interleaved)
            .tier_bandwidth(Tier::Cpu, bytes, None)
            .unwrap();
        assert!(remote < local);
        assert!(inter > remote && inter < local);
    }

    #[test]
    fn remote_writes_are_faster_on_optane() {
        // The Fig 3b asymmetry surfaces through the policy: GPU->
        // Optane write-back is FASTER on the remote node.
        let bytes = ByteSize::from_mb(300.0);
        let local = sys(NodePolicy::GpuLocal)
            .tier_writeback_bandwidth(Tier::Cpu, bytes, None)
            .unwrap();
        let remote = sys(NodePolicy::Remote)
            .tier_writeback_bandwidth(Tier::Cpu, bytes, None)
            .unwrap();
        assert!(
            remote > local.scale(1.1),
            "remote {remote} should beat local {local}"
        );
    }

    #[test]
    fn policy_accessor_round_trips() {
        assert_eq!(
            sys(NodePolicy::Interleaved).node_policy(),
            NodePolicy::Interleaved
        );
        assert_eq!(
            SystemConfig::paper_platform(HostMemoryConfig::dram()).node_policy(),
            NodePolicy::GpuLocal
        );
    }
}
