//! The zig-zag pipeline executor (paper Listing 1).
//!
//! FlexGen's schedule, per generated token `i` and layer `j`:
//!
//! ```text
//! load_weight(i, j+1)   // prefetch the next layer's offloaded weights
//! compute_layer(i, j)   // while computing the current layer
//! sync()
//! ```
//!
//! Each step therefore costs `max(compute_j, load_{j+1})` plus a sync
//! overhead, and the longer-running side of the pipeline sets the
//! inference latency — the imbalance the paper's §V diagnoses. When a
//! layer's offloaded weights straddle the host and storage tiers, the
//! two transfers share the PCIe link ([`xfer::CappedLink`]) with
//! per-tier rate caps.

use crate::error::HelmError;
use crate::exec_des::Flow;
use crate::metrics::{LayerStepRecord, RunReport, Stage, StepTotals};
use crate::placement::{LayerPlacement, ModelPlacement, Tier};
use crate::policy::Policy;
use crate::system::SystemConfig;
use crate::trace::{Attribution, RequestTrace, Trace};
use gpusim::{GpuSpec, KernelProfile};
use llm::layers::{Layer, LayerKind};
use llm::weights::{DType, WeightKind};
use llm::ModelConfig;
use simaudit::Auditor;
use simcore::stats::SeriesStats;
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{duration_ticks, time_ticks, TraceSpan};
use simcore::units::{Bandwidth, ByteSize};
use workload::WorkloadSpec;
use xfer::link::CappedLink;

/// Per-layer synchronization and dispatch overhead (stream sync +
/// Python-side bookkeeping in FlexGen).
pub const SYNC_OVERHEAD: SimDuration = SimDuration::from_millis_const(0.25);

/// Everything a pipeline run needs.
#[derive(Debug, Clone, Copy)]
pub struct PipelineInputs<'a> {
    /// The platform.
    pub system: &'a SystemConfig,
    /// The model being served.
    pub model: &'a ModelConfig,
    /// The serving policy.
    pub policy: &'a Policy,
    /// The weight placement to execute.
    pub placement: &'a ModelPlacement,
    /// The workload shape.
    pub workload: &'a WorkloadSpec,
}

/// Name of a tier for error reporting.
pub(crate) fn tier_name(tier: Tier) -> &'static str {
    match tier {
        Tier::Gpu => "gpu",
        Tier::Cpu => "cpu",
        Tier::Disk => "disk",
    }
}

/// How much per-step detail a pipeline run materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// Keep every [`LayerStepRecord`] — timelines, CSV export, and
    /// the per-stage/per-kind averages behind the paper's figures.
    #[default]
    Full,
    /// Skip the per-step record vector entirely and keep only the
    /// run-wide aggregates ([`RunReport::totals`], TTFT, TBT,
    /// throughput, audit ledgers). This is the allocation-free mode
    /// the autoplace engine and online calibration run in; all
    /// aggregates are bit-identical to a [`RecordMode::Full`] run.
    Aggregate,
}

/// The context-dependent decode compute of one layer.
///
/// Decode compute is token-invariant for every layer except MHA,
/// whose attention GEMM grows with the context length. For MHA the
/// cache keeps the GEMM's operands split exactly at the
/// context-dependent terms of the seed evaluator's expressions —
/// f64 addition and multiplication are not associative, so the
/// evaluator replays the same left-associated operation order
/// ([`Layer::attention_flops`], [`kernel_plan`]) and stays
/// bit-identical to recomputing from scratch.
#[derive(Debug, Clone, Copy)]
enum DecodeCompute {
    /// Kernels never touch the KV cache: one duration serves every
    /// token.
    Invariant(SimDuration),
    /// MHA decode: `pre + gemm(flops(ctx), bytes(ctx)) + post`.
    Attention {
        /// Kernel-time fold up to the GEMM (`ZERO` + dequant, when
        /// compressed).
        pre: SimDuration,
        /// Kernel time after the GEMM (norm+residual elementwise).
        post: SimDuration,
        /// Projection FLOPs for decode's one new token per sequence.
        matmul_flops: f64,
        /// `2.0 * 2.0 * batch * new_tokens(=1)` — the prefix of the
        /// attention-FLOP product before the context-length factor.
        att_prefix: f64,
        /// Hidden size (the product's final factor).
        hidden: f64,
        /// F16 weight bytes the GEMM streams.
        weight_bytes: f64,
        /// Activation bytes the GEMM reads/writes.
        act_bytes: f64,
        /// Compute batch ([`Policy::batch_size`]) for the KV read.
        batch: u32,
    },
}

/// Per-stage KV write-back costs under `kv_offload` (`new_tokens` is
/// `prompt_len` at prefill, 1 at decode — both token-invariant).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WritebackCost {
    /// D2H payload of one MHA step.
    pub(crate) bytes: ByteSize,
    /// Full standalone write-back time (analytic executor).
    pub(crate) time: SimDuration,
    /// Streaming rate cap (DES executor).
    pub(crate) cap: Bandwidth,
    /// Fixed (non-streaming) share of `time` (DES executor).
    pub(crate) fixed: SimDuration,
}

/// Everything about a pipeline run that does not depend on the token
/// index, precomputed once per [`PipelineInputs`].
///
/// The zig-zag executor's hot loop runs `gen_len × num_layers` steps,
/// and almost everything it used to recompute per step is
/// token-invariant: per-layer weight [`load_time`] (the CPU/disk
/// split and its capped-link water-filling), per-layer offloaded H2D
/// byte counts, per-layer DES weight flows, the KV write-back cost of
/// each stage, and all decode compute except the attention GEMM —
/// which is cached as coefficients of the context length
/// ([`DecodeCompute`]). Both executors ([`run_pipeline_with`],
/// [`crate::exec_des::run_pipeline_des_with`]) and the autoplace
/// bound ([`crate::autoplace`]) consume the same table.
#[derive(Debug, Clone)]
pub struct LayerCostTable {
    layers: Vec<LayerCosts>,
    /// `[prefill, decode]` write-back costs; `None` without
    /// `kv_offload`.
    writeback: Option<[WritebackCost; 2]>,
    prompt_len: usize,
    effective_batch: u32,
    kv_per_token: u64,
    cpu_ws: ByteSize,
}

/// The cached token-invariant costs of one layer.
#[derive(Debug, Clone)]
struct LayerCosts {
    kind: LayerKind,
    /// Transfer time of this layer's offloaded weights.
    load: SimDuration,
    /// Host-resident weight bytes (audit ledger `h2d:cpu`).
    cpu_bytes: ByteSize,
    /// Storage-resident weight bytes (audit ledger `h2d:disk`).
    disk_bytes: ByteSize,
    /// Total offloaded (streamed) weight bytes.
    offloaded: ByteSize,
    prefill_compute: SimDuration,
    decode_compute: DecodeCompute,
    /// The layer's weight streams for the DES executor.
    flows: Vec<Flow>,
}

impl LayerCostTable {
    /// Precomputes the table for one run configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HelmError::TierUnavailable`] if the placement routes
    /// traffic through a memory tier the platform does not provide —
    /// the same failures the executors would surface mid-run.
    pub fn build(inp: &PipelineInputs<'_>) -> Result<Self, HelmError> {
        let placed = inp.placement.layers();
        let cpu_ws = inp.placement.total_on(Tier::Cpu);
        let disk_ws = inp.placement.total_on(Tier::Disk);
        let dtype = inp.placement.dtype();
        let batch = inp.policy.batch_size();
        let effective_batch = inp.policy.effective_batch();
        let kv_per_token = llm::kv::kv_bytes_per_token_per_block(inp.model);
        let gpu = inp.system.gpu();

        let mut layers = Vec::with_capacity(placed.len());
        for (j, lp) in placed.iter().enumerate() {
            let layer = lp.layer();
            let decode_compute = match layer.kind() {
                LayerKind::Mha => {
                    // Split kernel_plan(Decode) at the attention GEMM,
                    // whose flop/byte operands depend on the context.
                    let tokens = u64::from(batch); // one new token each
                    let act = layer.activation_bytes(tokens).as_f64();
                    let mut pre = SimDuration::ZERO;
                    if inp.policy.compressed() {
                        let compressed: ByteSize = layer
                            .weight_specs()
                            .iter()
                            .filter(|s| {
                                matches!(s.kind(), WeightKind::Linear | WeightKind::Embedding)
                            })
                            .map(|s| s.bytes(DType::Int4Grouped))
                            .sum();
                        if compressed > ByteSize::ZERO {
                            pre += gpu.kernel_time(&KernelProfile::dequant(compressed.as_f64()));
                        }
                    }
                    DecodeCompute::Attention {
                        pre,
                        post: gpu.kernel_time(&KernelProfile::elementwise(act)),
                        matmul_flops: layer.matmul_flops(tokens),
                        att_prefix: 2.0 * 2.0 * f64::from(batch) * 1.0,
                        hidden: inp.model.hidden_size() as f64,
                        weight_bytes: layer.weight_bytes(DType::F16).as_f64(),
                        act_bytes: act,
                        batch,
                    }
                }
                _ => DecodeCompute::Invariant(compute_time(inp, layer, Stage::Decode, 1)),
            };
            layers.push(LayerCosts {
                kind: layer.kind(),
                load: load_time(inp, lp, cpu_ws, disk_ws)?,
                cpu_bytes: lp.bytes_on(Tier::Cpu, dtype),
                disk_bytes: lp.bytes_on(Tier::Disk, dtype),
                offloaded: lp.offloaded_bytes(dtype),
                prefill_compute: compute_time(inp, layer, Stage::Prefill, 0),
                decode_compute,
                flows: crate::exec_des::host_flows(inp, j, cpu_ws, disk_ws, None)?,
            });
        }

        let writeback = if inp.policy.kv_offload() {
            let cost = |new_tokens: usize| -> Result<WritebackCost, HelmError> {
                let bytes = ByteSize::from_bytes(
                    u64::from(effective_batch) * new_tokens as u64 * kv_per_token,
                );
                let unavailable = HelmError::TierUnavailable { tier: "cpu" };
                let time = inp
                    .system
                    .tier_writeback_time(Tier::Cpu, bytes, Some(cpu_ws))
                    .ok_or(unavailable.clone())?;
                let cap = inp
                    .system
                    .tier_writeback_bandwidth(Tier::Cpu, bytes, Some(cpu_ws))
                    .ok_or(unavailable)?;
                Ok(WritebackCost {
                    bytes,
                    time,
                    cap,
                    fixed: time - cap.time_for(bytes),
                })
            };
            Some([cost(inp.workload.prompt_len)?, cost(1)?])
        } else {
            None
        };

        Ok(LayerCostTable {
            layers,
            writeback,
            prompt_len: inp.workload.prompt_len,
            effective_batch,
            kv_per_token,
            cpu_ws,
        })
    }

    /// Layers in the flattened pipeline sequence.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    pub(crate) fn kind(&self, j: usize) -> LayerKind {
        self.layers[j].kind
    }

    /// Cached [`load_time`] of layer `j`'s offloaded weights.
    pub fn load(&self, j: usize) -> SimDuration {
        self.layers[j].load
    }

    pub(crate) fn offloaded_bytes(&self, j: usize) -> ByteSize {
        self.layers[j].offloaded
    }

    pub(crate) fn weight_flows(&self, j: usize) -> &[Flow] {
        &self.layers[j].flows
    }

    pub(crate) fn writeback(&self, stage: Stage) -> Option<&WritebackCost> {
        self.writeback.as_ref().map(|wb| match stage {
            Stage::Prefill => &wb[0],
            Stage::Decode => &wb[1],
        })
    }

    pub(crate) fn cpu_ws(&self) -> ByteSize {
        self.cpu_ws
    }

    /// KV bytes layer `j` streams for `context` positions — exactly
    /// [`Layer::kv_read_bytes`] at the policy's effective batch.
    pub(crate) fn kv_read_bytes(&self, j: usize, context: usize) -> ByteSize {
        if self.layers[j].kind != LayerKind::Mha {
            return ByteSize::ZERO;
        }
        ByteSize::from_bytes(u64::from(self.effective_batch) * context as u64 * self.kv_per_token)
    }

    /// GPU compute time of layer `j` at pipeline step (`stage`,
    /// `token`) — bit-identical to [`compute_time`] on the same
    /// inputs.
    pub fn compute_time(&self, gpu: &GpuSpec, j: usize, stage: Stage, token: usize) -> SimDuration {
        match stage {
            Stage::Prefill => self.layers[j].prefill_compute,
            Stage::Decode => match self.layers[j].decode_compute {
                DecodeCompute::Invariant(d) => d,
                DecodeCompute::Attention {
                    pre,
                    post,
                    matmul_flops,
                    att_prefix,
                    hidden,
                    weight_bytes,
                    act_bytes,
                    batch,
                } => {
                    let context = self.prompt_len + token;
                    // Replays attention_flops' association order:
                    // ((((2*2)*b)*nt)*ctx)*h with the prefix cached.
                    let att = att_prefix * context as f64 * hidden;
                    let flops = matmul_flops + att;
                    let kv = u64::from(batch) * context as u64 * self.kv_per_token;
                    let bytes = weight_bytes + kv as f64 + act_bytes;
                    pre + gpu.kernel_time(&KernelProfile::gemm(flops, bytes)) + post
                }
            },
        }
    }

    fn audit_weight_traffic(&self, audit: &mut Auditor, j: usize) {
        if !audit.is_active() {
            return;
        }
        let lc = &self.layers[j];
        for (bytes, channel) in [(lc.cpu_bytes, "h2d:cpu"), (lc.disk_bytes, "h2d:disk")] {
            if bytes > ByteSize::ZERO {
                audit.scheduled(channel, bytes);
                audit.delivered(channel, bytes);
            }
        }
    }
}

/// Streaming critical-path attribution for the offline executors.
///
/// Each closed pipeline segment — the fill, then one entry per
/// `max(compute, load, writeback) + sync` step — ends at a boundary
/// quantized onto the tick lattice; the segment is the difference of
/// consecutive boundaries, so the buckets telescope to the total
/// exactly. The tracker reads only durations the executor already
/// computed, so running it unconditionally perturbs nothing.
#[derive(Default)]
pub(crate) struct StepAttribution {
    att: Attribution,
    pub(crate) prev: u64,
}

impl StepAttribution {
    /// Closes the segment ending at `elapsed`; returns its tick
    /// bounds for span emission.
    pub(crate) fn close(&mut self, elapsed: SimDuration, transfer_bound: bool) -> (u64, u64) {
        self.close_ticks(duration_ticks(elapsed), transfer_bound)
    }

    /// [`StepAttribution::close`] against an absolute instant (the
    /// DES executor tracks `SimTime`, not elapsed durations).
    pub(crate) fn close_at(&mut self, at: SimTime, transfer_bound: bool) -> (u64, u64) {
        self.close_ticks(time_ticks(at), transfer_bound)
    }

    fn close_ticks(&mut self, now: u64, transfer_bound: bool) -> (u64, u64) {
        let seg = u128::from(now - self.prev);
        if transfer_bound {
            self.att.transfer_ticks += seg;
        } else {
            self.att.compute_ticks += seg;
        }
        let start = self.prev;
        self.prev = now;
        (start, now)
    }

    pub(crate) fn finish(mut self) -> Attribution {
        self.att.total_ticks = u128::from(self.prev);
        self.att
    }
}

/// Runs the full prefill + decode pipeline and reports metrics,
/// keeping full step records. Builds a [`LayerCostTable`] internally;
/// callers evaluating one configuration many times (or wanting
/// [`RecordMode::Aggregate`]) should build the table once and call
/// [`run_pipeline_with`].
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] if the placement routes
/// traffic through a memory tier the platform does not provide.
pub fn run_pipeline(inp: &PipelineInputs<'_>) -> Result<RunReport, HelmError> {
    let table = LayerCostTable::build(inp)?;
    run_pipeline_with(inp, &table, RecordMode::Full)
}

/// [`run_pipeline`] over a prebuilt [`LayerCostTable`] with an
/// explicit [`RecordMode`] — the memoized hot path. Every reported
/// aggregate (TTFT, TBT samples, total time, traffic totals, audit
/// ledgers, attribution) is bit-identical to the seed evaluator
/// ([`run_pipeline_reference`]); under [`RecordMode::Full`] the step
/// records are too.
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] as [`run_pipeline`] does.
pub fn run_pipeline_with(
    inp: &PipelineInputs<'_>,
    table: &LayerCostTable,
    mode: RecordMode,
) -> Result<RunReport, HelmError> {
    run_pipeline_inner(inp, table, mode, None)
}

/// [`run_pipeline_with`] that additionally collects the batch's span
/// tree (the whole offline batch is one request track: fill →
/// prefill → per-token decode, each step classified compute- or
/// transfer-bound). The returned report is byte-identical to the
/// untraced run — spans travel on the side channel only.
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] as [`run_pipeline`] does.
pub fn run_pipeline_traced(
    inp: &PipelineInputs<'_>,
    table: &LayerCostTable,
    mode: RecordMode,
) -> Result<(RunReport, Trace), HelmError> {
    let mut trace = Trace::default();
    let report = run_pipeline_inner(inp, table, mode, Some(&mut trace))?;
    Ok((report, trace))
}

fn run_pipeline_inner(
    inp: &PipelineInputs<'_>,
    table: &LayerCostTable,
    mode: RecordMode,
    trace: Option<&mut Trace>,
) -> Result<RunReport, HelmError> {
    let num_layers = table.num_layers();
    let gen_len = inp.workload.gen_len;
    let gpu = inp.system.gpu();
    let cpu_ws = table.cpu_ws();

    // Sized from the actual step count — `records` holds one entry
    // per (token, layer) step; micro-batching scales compute, it does
    // not replay steps.
    let mut records = match mode {
        RecordMode::Full => Vec::with_capacity(num_layers * gen_len),
        RecordMode::Aggregate => Vec::new(),
    };
    let mut totals = StepTotals::default();
    let mut elapsed = SimDuration::ZERO;
    let mut tbt = SeriesStats::new();
    let mut ttft = SimDuration::ZERO;

    let mut audit = Auditor::capture();
    audit_placement_feasibility(&mut audit, inp);
    let micro = inp.policy.num_gpu_batches();
    let effective_batch = inp.policy.effective_batch();

    let mut att = StepAttribution::default();
    let mut spans: Option<Vec<TraceSpan>> = trace.is_some().then(|| {
        let mut s = Vec::with_capacity(2 + gen_len * (num_layers + 1));
        // Root placeholder; its end is patched once the run closes.
        s.push(TraceSpan {
            name: "request",
            depth: 0,
            start: 0,
            end: 0,
        });
        s
    });

    // Pipeline fill: the first layer's weights stream before any
    // compute can overlap them.
    elapsed += table.load(0);
    table.audit_weight_traffic(&mut audit, 0);
    let (fill_start, fill_end) = att.close(elapsed, true);
    if let Some(s) = spans.as_mut() {
        s.push(TraceSpan {
            name: "fill",
            depth: 1,
            start: fill_start,
            end: fill_end,
        });
    }

    for token in 0..gen_len {
        let stage = if token == 0 {
            Stage::Prefill
        } else {
            Stage::Decode
        };
        let token_start = elapsed;
        let token_span = spans.as_mut().map(|s| {
            s.push(TraceSpan {
                name: if token == 0 { "prefill" } else { "decode" },
                depth: 1,
                start: att.prev,
                end: att.prev,
            });
            s.len() - 1
        });
        for j in 0..num_layers {
            let last_step = token + 1 == gen_len && j + 1 == num_layers;
            let next_index = (j + 1) % num_layers;
            let (mut load, next_kind, mut h2d) = if last_step {
                (SimDuration::ZERO, None, ByteSize::ZERO)
            } else {
                (
                    table.load(next_index),
                    Some(table.kind(next_index)),
                    table.offloaded_bytes(next_index),
                )
            };
            if !last_step {
                table.audit_weight_traffic(&mut audit, next_index);
            }
            // Under KV offloading, the next layer's cache streams in
            // alongside its weights and shares the same H2D budget.
            if inp.policy.kv_offload() {
                if let Some(LayerKind::Mha) = next_kind {
                    let context = match stage {
                        Stage::Prefill => 0, // no cache yet at prefill
                        Stage::Decode => inp.workload.prompt_len + token,
                    };
                    let kv_in = table.kv_read_bytes(next_index, context);
                    if kv_in > ByteSize::ZERO {
                        load += inp
                            .system
                            .kv_stream_bandwidth(kv_in, Some(cpu_ws))
                            .ok_or(HelmError::TierUnavailable { tier: "cpu" })?
                            .time_for(kv_in);
                        h2d += kv_in;
                        audit.scheduled("h2d:kv", kv_in);
                        audit.delivered("h2d:kv", kv_in);
                    }
                }
            }
            // Micro-batching amortizes one weight load across several
            // GPU batches (FlexGen's block schedule).
            let compute = table.compute_time(gpu, j, stage, token) * f64::from(micro);
            // KV write-back for the tokens this step produced.
            let (writeback, d2h) = match table.writeback(stage) {
                Some(wb) if table.kind(j) == LayerKind::Mha => (wb.time, wb.bytes),
                _ => (SimDuration::ZERO, ByteSize::ZERO),
            };
            if d2h > ByteSize::ZERO {
                audit.scheduled("d2h:kv", d2h);
                audit.delivered("d2h:kv", d2h);
            }
            let step = compute.max(load).max(writeback) + SYNC_OVERHEAD;
            audit.check_duration("compute", compute);
            audit.check_duration("load", load);
            audit.check_duration("step", step);
            totals.record(compute, h2d, d2h);
            if mode == RecordMode::Full {
                records.push(LayerStepRecord {
                    token,
                    layer_index: j,
                    kind: table.kind(j),
                    stage,
                    compute,
                    load_next: load,
                    next_kind,
                    h2d_bytes: h2d,
                    d2h_bytes: d2h,
                    step,
                });
            }
            elapsed += step;
            audit.observe_time("analytic", SimTime::ZERO + elapsed);
            let transfer_bound = load.max(writeback) > compute;
            let (seg_start, seg_end) = att.close(elapsed, transfer_bound);
            if let Some(s) = spans.as_mut() {
                s.push(TraceSpan {
                    name: if transfer_bound {
                        "transfer"
                    } else {
                        "compute"
                    },
                    depth: 2,
                    start: seg_start,
                    end: seg_end,
                });
            }
        }
        if let (Some(s), Some(ti)) = (spans.as_mut(), token_span) {
            s[ti].end = att.prev;
        }
        if token == 0 {
            ttft = elapsed;
        } else {
            tbt.add((elapsed - token_start).as_secs());
        }
    }

    let root_end = att.prev;
    let attribution = att.finish();
    if let (Some(out), Some(mut s)) = (trace, spans) {
        s[0].end = root_end;
        out.requests.push(RequestTrace {
            id: out.requests.len() as u64,
            pipe: 0,
            spans: s,
            attribution,
        });
    }

    Ok(RunReport {
        model: inp.model.name().to_owned(),
        config: inp.system.memory().kind().to_string(),
        placement: inp.policy.placement(),
        batch: effective_batch,
        compressed: inp.policy.compressed(),
        ttft,
        tbt,
        total_time: elapsed,
        tokens_generated: inp.workload.tokens_generated(effective_batch),
        records,
        totals,
        achieved_distribution: inp.placement.achieved_distribution(),
        attribution,
        audit: audit.finish_if_active(),
    })
}

/// The seed evaluator: costs every step from scratch with no
/// memoization. Kept as the golden reference the cost-table fast path
/// is proven bit-identical against (equivalence proptests, and the
/// `bench_pipeline` baseline).
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] as [`run_pipeline`] does.
pub fn run_pipeline_reference(inp: &PipelineInputs<'_>) -> Result<RunReport, HelmError> {
    let layers = inp.placement.layers();
    let num_layers = layers.len();
    let gen_len = inp.workload.gen_len;
    let cpu_ws = inp.placement.total_on(Tier::Cpu);
    let disk_ws = inp.placement.total_on(Tier::Disk);

    let mut records = Vec::with_capacity(num_layers * gen_len);
    let mut elapsed = SimDuration::ZERO;
    let mut tbt = SeriesStats::new();
    let mut ttft = SimDuration::ZERO;

    let mut audit = Auditor::capture();
    audit_placement_feasibility(&mut audit, inp);
    let micro = inp.policy.num_gpu_batches();
    let effective_batch = inp.policy.effective_batch();
    let dtype = inp.placement.dtype();

    // Pipeline fill: the first layer's weights stream before any
    // compute can overlap them.
    elapsed += load_time(inp, &layers[0], cpu_ws, disk_ws)?;
    audit_weight_traffic(&mut audit, &layers[0], dtype);
    let mut att = StepAttribution::default();
    att.close(elapsed, true);

    for token in 0..gen_len {
        let stage = if token == 0 {
            Stage::Prefill
        } else {
            Stage::Decode
        };
        let token_start = elapsed;
        for (j, lp) in layers.iter().enumerate() {
            let last_step = token + 1 == gen_len && j + 1 == num_layers;
            let next_index = (j + 1) % num_layers;
            let (mut load, next_kind, mut h2d) = if last_step {
                (SimDuration::ZERO, None, ByteSize::ZERO)
            } else {
                let next = &layers[next_index];
                (
                    load_time(inp, next, cpu_ws, disk_ws)?,
                    Some(next.layer().kind()),
                    next.offloaded_bytes(dtype),
                )
            };
            if !last_step {
                audit_weight_traffic(&mut audit, &layers[next_index], dtype);
            }
            // Under KV offloading, the next layer's cache streams in
            // alongside its weights and shares the same H2D budget.
            if inp.policy.kv_offload() {
                if let Some(LayerKind::Mha) = next_kind {
                    let next = &layers[next_index];
                    let context = match stage {
                        Stage::Prefill => 0, // no cache yet at prefill
                        Stage::Decode => inp.workload.prompt_len + token,
                    };
                    let kv_in = next.layer().kv_read_bytes(effective_batch, context);
                    if kv_in > ByteSize::ZERO {
                        load += inp
                            .system
                            .kv_stream_bandwidth(kv_in, Some(cpu_ws))
                            .ok_or(HelmError::TierUnavailable { tier: "cpu" })?
                            .time_for(kv_in);
                        h2d += kv_in;
                        audit.scheduled("h2d:kv", kv_in);
                        audit.delivered("h2d:kv", kv_in);
                    }
                }
            }
            // Micro-batching amortizes one weight load across several
            // GPU batches (FlexGen's block schedule).
            let compute = compute_time(inp, lp.layer(), stage, token) * f64::from(micro);
            // KV write-back for the tokens this step produced.
            let (writeback, d2h) = if inp.policy.kv_offload() && lp.layer().kind() == LayerKind::Mha
            {
                let new_tokens = match stage {
                    Stage::Prefill => inp.workload.prompt_len,
                    Stage::Decode => 1,
                };
                let bytes = ByteSize::from_bytes(
                    u64::from(effective_batch)
                        * new_tokens as u64
                        * llm::kv::kv_bytes_per_token_per_block(inp.model),
                );
                let t = inp
                    .system
                    .tier_writeback_time(Tier::Cpu, bytes, Some(cpu_ws))
                    .ok_or(HelmError::TierUnavailable { tier: "cpu" })?;
                (t, bytes)
            } else {
                (SimDuration::ZERO, ByteSize::ZERO)
            };
            if d2h > ByteSize::ZERO {
                audit.scheduled("d2h:kv", d2h);
                audit.delivered("d2h:kv", d2h);
            }
            let step = compute.max(load).max(writeback) + SYNC_OVERHEAD;
            audit.check_duration("compute", compute);
            audit.check_duration("load", load);
            audit.check_duration("step", step);
            records.push(LayerStepRecord {
                token,
                layer_index: j,
                kind: lp.layer().kind(),
                stage,
                compute,
                load_next: load,
                next_kind,
                h2d_bytes: h2d,
                d2h_bytes: d2h,
                step,
            });
            elapsed += step;
            audit.observe_time("analytic", SimTime::ZERO + elapsed);
            att.close(elapsed, load.max(writeback) > compute);
        }
        if token == 0 {
            ttft = elapsed;
        } else {
            tbt.add((elapsed - token_start).as_secs());
        }
    }

    Ok(RunReport {
        model: inp.model.name().to_owned(),
        config: inp.system.memory().kind().to_string(),
        placement: inp.policy.placement(),
        batch: effective_batch,
        compressed: inp.policy.compressed(),
        ttft,
        tbt,
        total_time: elapsed,
        tokens_generated: inp.workload.tokens_generated(effective_batch),
        totals: StepTotals::from_records(&records),
        records,
        achieved_distribution: inp.placement.achieved_distribution(),
        attribution: att.finish(),
        audit: audit.finish_if_active(),
    })
}

/// Feasibility checks shared by both executors: the achieved percent
/// split sums to 100 and no tier holds more weight bytes than it has
/// capacity (the `run_unchecked` path skips server-side validation,
/// so the auditor re-derives it at execution time).
pub(crate) fn audit_placement_feasibility(audit: &mut Auditor, inp: &PipelineInputs<'_>) {
    if !audit.is_active() {
        return;
    }
    audit.check_percent_split("achieved placement", inp.placement.achieved_distribution());
    for tier in [Tier::Disk, Tier::Cpu, Tier::Gpu] {
        audit.check_tier_capacity(
            &tier.to_string(),
            inp.placement.total_on(tier),
            inp.system.tier_capacity(tier),
        );
    }
}

/// Ledger entries for one layer's weight transfer. Closed-form
/// transfers complete within the step that issues them, so scheduling
/// and delivery are recorded together; the ledger still cross-checks
/// the per-tier split against the report's traffic totals.
fn audit_weight_traffic(audit: &mut Auditor, lp: &LayerPlacement, dtype: DType) {
    if !audit.is_active() {
        return;
    }
    for (tier, channel) in [(Tier::Cpu, "h2d:cpu"), (Tier::Disk, "h2d:disk")] {
        let bytes = lp.bytes_on(tier, dtype);
        if bytes > ByteSize::ZERO {
            audit.scheduled(channel, bytes);
            audit.delivered(channel, bytes);
        }
    }
}

/// Transfer time of one layer's offloaded weights: host and storage
/// portions stream concurrently over PCIe, each capped by its tier's
/// effective path rate; fixed costs (DMA setup, device latency,
/// bounce fill) are paid once per tier, overlapped across tiers.
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] when the layer places bytes
/// on a tier the platform has no device for.
pub fn load_time(
    inp: &PipelineInputs<'_>,
    lp: &LayerPlacement,
    cpu_ws: ByteSize,
    disk_ws: ByteSize,
) -> Result<SimDuration, HelmError> {
    let dtype = inp.placement.dtype();
    let portions: Vec<(Tier, ByteSize, ByteSize)> = [(Tier::Cpu, cpu_ws), (Tier::Disk, disk_ws)]
        .into_iter()
        .filter_map(|(tier, ws)| {
            let bytes = lp.bytes_on(tier, dtype);
            (bytes > ByteSize::ZERO).then_some((tier, bytes, ws))
        })
        .collect();
    match portions.len() {
        0 => Ok(SimDuration::ZERO),
        1 => {
            let (tier, bytes, ws) = portions[0];
            inp.system
                .tier_transfer_time(tier, bytes, Some(ws))
                .ok_or(HelmError::TierUnavailable {
                    tier: tier_name(tier),
                })
        }
        _ => {
            let total: ByteSize = portions.iter().map(|&(_, b, _)| b).sum();
            let mut link = CappedLink::new(inp.system.link_capacity(total));
            let mut fixed = SimDuration::ZERO;
            for &(tier, bytes, ws) in &portions {
                let unavailable = HelmError::TierUnavailable {
                    tier: tier_name(tier),
                };
                let cap: Bandwidth = inp
                    .system
                    .tier_bandwidth(tier, bytes, Some(ws))
                    .ok_or(unavailable.clone())?;
                let full = inp
                    .system
                    .tier_transfer_time(tier, bytes, Some(ws))
                    .ok_or(unavailable)?;
                // The non-streaming share of the standalone transfer.
                fixed = fixed.max(full - cap.time_for(bytes));
                link.start(SimTime::ZERO, bytes.as_f64(), cap);
            }
            let mut now = SimTime::ZERO;
            while let Some((at, id)) = link.next_completion(now) {
                now = at;
                link.complete(now, id);
            }
            Ok(fixed + (now - SimTime::ZERO))
        }
    }
}

/// The named kernel plan one layer issues at one pipeline step —
/// the decomposition behind [`compute_time`], exposed for
/// introspection (`helmsim explain`, timeline tooling).
pub fn kernel_plan(
    inp: &PipelineInputs<'_>,
    layer: &Layer,
    stage: Stage,
    token: usize,
) -> Vec<(&'static str, KernelProfile)> {
    let batch = inp.policy.batch_size();
    let prompt = inp.workload.prompt_len;
    let (new_tokens, context) = match stage {
        Stage::Prefill => (prompt, prompt),
        Stage::Decode => (1, prompt + token),
    };
    let tokens = u64::from(batch) * new_tokens as u64;
    let mut kernels: Vec<(&'static str, KernelProfile)> = Vec::with_capacity(3);

    if inp.policy.compressed() {
        let compressed: ByteSize = layer
            .weight_specs()
            .iter()
            .filter(|s| matches!(s.kind(), WeightKind::Linear | WeightKind::Embedding))
            .map(|s| s.bytes(DType::Int4Grouped))
            .sum();
        if compressed > ByteSize::ZERO {
            kernels.push(("dequant", KernelProfile::dequant(compressed.as_f64())));
        }
    }

    let act = layer.activation_bytes(tokens).as_f64();
    match layer.kind() {
        LayerKind::InputEmbed => {
            // Table lookups: bandwidth over the gathered rows only.
            kernels.push(("embed-lookup", KernelProfile::elementwise(act)));
        }
        LayerKind::Mha => {
            let flops =
                layer.matmul_flops(tokens) + layer.attention_flops(batch, new_tokens, context);
            let bytes = layer.weight_bytes(DType::F16).as_f64()
                + layer.kv_read_bytes(batch, context).as_f64()
                + act;
            kernels.push(("qkv+attention+out", KernelProfile::gemm(flops, bytes)));
            kernels.push(("norm+residual", KernelProfile::elementwise(act)));
        }
        LayerKind::Ffn => {
            let bytes = layer.weight_bytes(DType::F16).as_f64() + act;
            kernels.push((
                "mlp",
                KernelProfile::gemm(layer.matmul_flops(tokens), bytes),
            ));
            kernels.push(("norm+residual", KernelProfile::elementwise(act)));
        }
        LayerKind::OutputEmbed => {
            let bytes = layer.weight_bytes(DType::F16).as_f64() + act;
            kernels.push((
                "lm-head",
                KernelProfile::gemm(layer.matmul_flops(tokens), bytes),
            ));
        }
    }
    kernels
}

/// GPU compute time of one layer at one pipeline step.
pub fn compute_time(
    inp: &PipelineInputs<'_>,
    layer: &Layer,
    stage: Stage,
    token: usize,
) -> SimDuration {
    inp.system
        .gpu()
        .kernels_time(kernel_plan(inp, layer, stage, token).iter().map(|(_, k)| k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;

    fn inputs(
        memory: HostMemoryConfig,
        placement_kind: PlacementKind,
        compressed: bool,
        batch: u32,
    ) -> (SystemConfig, ModelConfig, Policy, WorkloadSpec) {
        let system = SystemConfig::paper_platform(memory.clone());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(placement_kind)
            .with_compression(compressed)
            .with_batch_size(batch);
        (system, model, policy, WorkloadSpec::paper_default())
    }

    fn run(
        memory: HostMemoryConfig,
        kind: PlacementKind,
        compressed: bool,
        batch: u32,
    ) -> RunReport {
        let (system, model, policy, workload) = inputs(memory, kind, compressed, batch);
        let placement = ModelPlacement::compute(&model, &policy);
        run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        })
        .expect("pipeline runs")
    }

    #[test]
    fn decode_steps_cover_all_layers() {
        let report = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        // 21 tokens x 194 layers.
        assert_eq!(report.records.len(), 21 * 194);
        assert_eq!(report.tbt.count(), 20);
        assert!(report.ttft > SimDuration::ZERO);
    }

    #[test]
    fn nvdram_decode_is_memory_bound_at_batch_1() {
        // Table IV baseline: MHA compute / FFN load ~ 0.36 on NVDRAM.
        let report = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        let ratio = report.overlap_ratio(Stage::Decode, LayerKind::Mha, LayerKind::Ffn);
        assert!(
            (0.25..=0.5).contains(&ratio),
            "MHA-compute/FFN-load {ratio}"
        );
        let ratio2 = report.overlap_ratio(Stage::Decode, LayerKind::Ffn, LayerKind::Mha);
        assert!(
            (1.4..=2.4).contains(&ratio2),
            "FFN-compute/MHA-load {ratio2}"
        );
    }

    #[test]
    fn helm_improves_tbt_by_about_a_quarter() {
        // Paper §V-B: HeLM improves TBT on NVDRAM by ~27%.
        let base = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        let helm = run(HostMemoryConfig::nvdram(), PlacementKind::Helm, true, 1);
        let gain = 1.0 - helm.tbt_ms() / base.tbt_ms();
        assert!((0.20..=0.35).contains(&gain), "TBT gain {gain}");
        // And TTFT similarly.
        let ttft_gain = 1.0 - helm.ttft_ms() / base.ttft_ms();
        assert!((0.20..=0.35).contains(&ttft_gain), "TTFT gain {ttft_gain}");
    }

    #[test]
    fn all_cpu_at_44_is_about_5x_baseline_at_8() {
        // Paper §V-C: 5x throughput going from baseline b=8 to
        // All-CPU b=44 on NVDRAM.
        let base = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 8);
        let allcpu = run(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 44);
        let speedup = allcpu.throughput_tps() / base.throughput_tps();
        assert!((4.0..=6.5).contains(&speedup), "throughput x{speedup}");
    }

    #[test]
    fn sawtooth_visible_in_decode_load_profile() {
        let report = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        let profile = report.decode_load_profile();
        // Alternating MHA/FFN loads: ridge/dip ratio > 2 (Fig 7a).
        let loads: Vec<f64> = profile
            .iter()
            .skip(1)
            .take(20)
            .map(|(_, d)| d.as_millis())
            .collect();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let min = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 2.0, "sawtooth ratio {}", max / min);
    }

    #[test]
    fn dram_beats_nvdram() {
        let dram = run(HostMemoryConfig::dram(), PlacementKind::Helm, true, 1);
        let nv = run(HostMemoryConfig::nvdram(), PlacementKind::Helm, true, 1);
        assert!(dram.tbt_ms() < nv.tbt_ms());
        // HeLM brings NVDRAM within ~15% of DRAM (paper: ~9%).
        let gap = nv.tbt_ms() / dram.tbt_ms() - 1.0;
        assert!(gap < 0.15, "NVDRAM-vs-DRAM gap {gap}");
    }

    #[test]
    fn prefill_compute_grows_with_batch() {
        let b1 = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        let b8 = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 8);
        let c1 = b1.avg_compute(Stage::Prefill, LayerKind::Ffn);
        let c8 = b8.avg_compute(Stage::Prefill, LayerKind::Ffn);
        assert!(c8 > c1);
        // ...but decode compute does not (Table IV).
        let d1 = b1.avg_compute(Stage::Decode, LayerKind::Ffn);
        let d8 = b8.avg_compute(Stage::Decode, LayerKind::Ffn);
        assert!((d8.as_secs() / d1.as_secs() - 1.0).abs() < 0.1);
    }

    #[test]
    fn micro_batching_amortizes_weight_loads() {
        // 4 micro-batches of 8 vs a single batch of 8: same per-layer
        // weight traffic serves 4x the sequences, so throughput rises
        // while staying below 4x (compute eventually binds).
        let (system, model, policy, workload) =
            inputs(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 8);
        let placement = ModelPlacement::compute(&model, &policy);
        let single = run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        })
        .expect("single runs");
        let micro_policy = policy.clone().with_gpu_batches(4);
        let micro = run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &micro_policy,
            placement: &placement,
            workload: &workload,
        })
        .expect("micro runs");
        assert_eq!(micro.batch, 32);
        assert_eq!(micro.tokens_generated, 32 * 21);
        let gain = micro.throughput_tps() / single.throughput_tps();
        assert!((1.5..4.0).contains(&gain), "micro-batching gain {gain}");
        // Weight H2D traffic identical: loads amortized.
        assert_eq!(micro.total_h2d_bytes(), single.total_h2d_bytes());
    }

    #[test]
    fn kv_offload_writes_back_over_pcie() {
        let (system, model, policy, workload) =
            inputs(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 8);
        let resident_policy = policy.clone();
        let offload_policy = policy.with_kv_offload(true);
        let placement = ModelPlacement::compute(&model, &resident_policy);
        let resident = run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &resident_policy,
            placement: &placement,
            workload: &workload,
        })
        .expect("resident runs");
        let offload = run_pipeline(&PipelineInputs {
            system: &system,
            model: &model,
            policy: &offload_policy,
            placement: &placement,
            workload: &workload,
        })
        .expect("offload runs");
        // Resident KV produces no D2H traffic; offloading does.
        assert_eq!(resident.total_d2h_bytes(), ByteSize::ZERO);
        assert!(offload.total_d2h_bytes() > ByteSize::ZERO);
        // And more H2D (cache streams back in each decode step).
        assert!(offload.total_h2d_bytes() > resident.total_h2d_bytes());
        // On Optane, write-back is expensive: TBT strictly worse.
        assert!(offload.tbt_ms() > resident.tbt_ms());
    }

    #[test]
    fn split_disk_cpu_load_shares_the_link() {
        // SSD config: weights straddle disk and DRAM; both portions
        // stream concurrently and the result is finite and larger
        // than either portion alone would take at full link rate.
        let report = run(HostMemoryConfig::ssd(), PlacementKind::Baseline, false, 1);
        let ffn_load = report.avg_weight_transfer(Stage::Decode, LayerKind::Ffn);
        assert!(ffn_load.as_millis() > 100.0, "disk-bound load {ffn_load}");
    }
}
