//! Automatic weight-placement search.
//!
//! The paper closes hoping its insights "inform the design of improved
//! weight placement algorithms that can automatically make
//! latency/throughput tradeoffs based on desired quality of service
//! requirements" (§VII). This module is that algorithm over the
//! simulator: a grid search across per-layer-kind GPU shares
//! (generalizing HeLM's hand-picked 10%/30%) that
//!
//! * for [`Objective::Latency`] minimizes TBT at the policy's batch,
//! * for [`Objective::Throughput`] maximizes tokens/second, letting
//!   each candidate use the largest batch its GPU residency allows.
//!
//! Each candidate is costed with the same pipeline executor the
//! serving path uses, so the optimizer sees exactly the
//! compute/communication overlap the paper analyzes.

use crate::error::HelmError;
use crate::exec::{run_pipeline, PipelineInputs};
use crate::metrics::RunReport;
use crate::placement::{ModelPlacement, Tier};
use crate::policy::Policy;
use crate::system::SystemConfig;
use gpusim::{MemoryBudget, ResidentCosts};
use llm::ModelConfig;
use workload::WorkloadSpec;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize time between tokens at the policy's batch size.
    Latency,
    /// Maximize tokens/second, choosing the batch per candidate.
    Throughput,
}

/// The outcome of a placement search.
#[derive(Debug, Clone)]
pub struct AutoPlacement {
    /// GPU share chosen for MHA layers (percent).
    pub mha_gpu_percent: f64,
    /// GPU share chosen for FFN layers (percent).
    pub ffn_gpu_percent: f64,
    /// Batch size the winning evaluation used.
    pub batch: u32,
    /// The winning placement.
    pub placement: ModelPlacement,
    /// The winning evaluation run.
    pub report: RunReport,
    /// Candidates evaluated (after feasibility filtering).
    pub evaluated: usize,
}

/// Grid-searches per-kind GPU shares for `objective`.
///
/// The search keeps embeddings host-resident (they are a rounding
/// error of the footprint) and storage unused (matching the paper's
/// §V setting where compressed weights fit host memory).
///
/// # Errors
///
/// Returns [`HelmError::CapacityExceeded`] when even the all-host
/// candidate cannot fit (host tier too small for the model).
pub fn optimize(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    objective: Objective,
) -> Result<AutoPlacement, HelmError> {
    let budget = MemoryBudget::for_gpu(system.gpu());
    let grid: Vec<f64> = (0..=10).map(|i| f64::from(i) * 10.0).collect();
    let mut best: Option<AutoPlacement> = None;
    let mut evaluated = 0usize;

    for &mha_gpu in &grid {
        for &ffn_gpu in &grid {
            let placement = ModelPlacement::compute_custom(
                model,
                policy.compressed(),
                [mha_gpu, 100.0 - mha_gpu, 0.0],
                [ffn_gpu, 100.0 - ffn_gpu, 0.0],
                [0.0, 100.0, 0.0],
            );
            // Host capacity check.
            if placement.total_on(Tier::Cpu) > system.tier_capacity(Tier::Cpu) {
                continue;
            }
            let costs = ResidentCosts {
                weights: placement.total_on(Tier::Gpu),
                staging: placement.staging_bytes(),
                kv_per_sequence: llm::kv::kv_bytes_per_sequence(model, workload.context_len()),
                hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(
                    model,
                    workload.context_len(),
                ),
            };
            let batch = match objective {
                Objective::Latency => {
                    if !budget.fits(&costs, policy.effective_batch()) {
                        continue;
                    }
                    policy.batch_size()
                }
                Objective::Throughput => {
                    let max = budget.max_batch(&costs);
                    if max == 0 {
                        continue;
                    }
                    max
                }
            };
            let candidate_policy = policy.clone().with_batch_size(batch);
            let report = run_pipeline(&PipelineInputs {
                system,
                model,
                policy: &candidate_policy,
                placement: &placement,
                workload,
            })?;
            evaluated += 1;
            let better = match (&best, objective) {
                (None, _) => true,
                (Some(b), Objective::Latency) => report.tbt_ms() < b.report.tbt_ms(),
                (Some(b), Objective::Throughput) => {
                    report.throughput_tps() > b.report.throughput_tps()
                }
            };
            if better {
                best = Some(AutoPlacement {
                    mha_gpu_percent: mha_gpu,
                    ffn_gpu_percent: ffn_gpu,
                    batch,
                    placement: placement.clone(),
                    report,
                    evaluated,
                });
            }
        }
    }

    let mut result = best.ok_or(HelmError::CapacityExceeded {
        tier: "cpu",
        requested: ModelPlacement::compute_custom(
            model,
            policy.compressed(),
            [0.0, 100.0, 0.0],
            [0.0, 100.0, 0.0],
            [0.0, 100.0, 0.0],
        )
        .total_on(Tier::Cpu),
        capacity: system.tier_capacity(Tier::Cpu),
    })?;
    result.evaluated = evaluated;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::server::Server;
    use hetmem::HostMemoryConfig;

    fn setup() -> (SystemConfig, ModelConfig, Policy, WorkloadSpec) {
        let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_batch_size(1);
        (system, model, policy, WorkloadSpec::paper_default())
    }

    #[test]
    fn latency_search_matches_or_beats_helm() {
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        let helm = Server::new(
            system.clone(),
            model,
            policy.with_placement(PlacementKind::Helm),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        assert!(
            auto.report.tbt_ms() <= helm.tbt_ms() * 1.01,
            "auto {} vs HeLM {}",
            auto.report.tbt_ms(),
            helm.tbt_ms()
        );
        assert!(auto.evaluated > 20);
    }

    #[test]
    fn latency_search_favors_ffn_offload_relief() {
        // The winning latency placement should put substantially more
        // of FFN on the GPU than the baseline's 0% (HeLM's insight).
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        assert!(
            auto.ffn_gpu_percent >= 30.0,
            "FFN gpu share {}",
            auto.ffn_gpu_percent
        );
    }

    #[test]
    fn throughput_search_evicts_weights() {
        // The throughput optimum trades GPU weight residency for
        // batch (All-CPU's insight): low GPU shares, big batch.
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Throughput).unwrap();
        assert!(auto.batch >= 40, "batch {}", auto.batch);
        let gpu_bytes = auto.placement.total_on(Tier::Gpu);
        assert!(
            gpu_bytes < simcore::units::ByteSize::from_gb(5.0),
            "GPU-resident {gpu_bytes}"
        );
        // And it should at least match the hand-built All-CPU at 44.
        let all_cpu = Server::new(
            system.clone(),
            model,
            policy
                .with_placement(PlacementKind::AllCpu)
                .with_batch_size(44),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        assert!(auto.report.throughput_tps() >= all_cpu.throughput_tps() * 0.99);
    }

    #[test]
    fn infeasible_model_is_rejected() {
        // OPT-175B uncompressed cannot fit a 256 GB DRAM host.
        let system = SystemConfig::paper_platform(HostMemoryConfig::dram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Dram);
        let err = optimize(
            &system,
            &model,
            &policy,
            &WorkloadSpec::paper_default(),
            Objective::Latency,
        )
        .unwrap_err();
        assert!(matches!(err, HelmError::CapacityExceeded { .. }));
    }
}
