//! CXL performance projections (paper §V-D).
//!
//! The paper projects HeLM and All-CPU onto CXL memory by swapping the
//! host-memory bandwidth for the Table III device rates and re-costing
//! weight transfers. This module does the same mechanically: the same
//! model, placement, and workload re-run against
//! [`hetmem::HostMemoryConfig::cxl_fpga`], [`cxl_asic`], or any custom
//! bandwidth — producing Table IV's overlap matrix and Fig 13's
//! latency/throughput projections.
//!
//! [`cxl_asic`]: hetmem::HostMemoryConfig::cxl_asic

use crate::error::HelmError;
use crate::metrics::{RunReport, Stage};
use crate::placement::PlacementKind;
use crate::policy::Policy;
use crate::server::Server;
use crate::system::SystemConfig;
use hetmem::HostMemoryConfig;
use llm::layers::LayerKind;
use llm::ModelConfig;
use workload::WorkloadSpec;

/// One row of the Table IV overlap matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapRow {
    /// Placement policy.
    pub policy: PlacementKind,
    /// Batch size.
    pub batch: u32,
    /// Inference stage.
    pub stage: Stage,
    /// Memory configuration label.
    pub config: String,
    /// MHA-compute / FFN-load ratio (<1: memory-bound).
    pub mha_compute_over_ffn_load: f64,
    /// FFN-compute / MHA-load ratio (>1: compute-bound).
    pub ffn_compute_over_mha_load: f64,
}

/// The memory configurations Table IV compares.
pub fn table_iv_configs() -> Vec<HostMemoryConfig> {
    vec![
        HostMemoryConfig::nvdram(),
        HostMemoryConfig::cxl_fpga(),
        HostMemoryConfig::cxl_asic(),
    ]
}

/// The (policy, batch) cells of Table IV.
pub fn table_iv_policies() -> Vec<(PlacementKind, u32)> {
    vec![
        (PlacementKind::Baseline, 1),
        (PlacementKind::Baseline, 8),
        (PlacementKind::Helm, 1),
        (PlacementKind::Helm, 8),
        (PlacementKind::AllCpu, 44),
    ]
}

/// Runs one compressed OPT-175B configuration as a *projection*:
/// tier capacities are validated, but the GPU batch check is skipped
/// (Table IV's HeLM batch-8 cell sits at the capacity edge — see
/// [`Server::run_unchecked`]).
///
/// # Errors
///
/// Propagates placement capacity failures from [`Server::new`].
pub fn run_config(
    memory: HostMemoryConfig,
    placement: PlacementKind,
    batch: u32,
    workload: &WorkloadSpec,
) -> Result<RunReport, HelmError> {
    let model = ModelConfig::opt_175b();
    let policy = Policy::paper_default(&model, memory.kind())
        .with_placement(placement)
        .with_compression(true)
        .with_batch_size(batch);
    Server::new(SystemConfig::paper_platform(memory), model, policy)?.run_unchecked(workload)
}

/// Produces the full Table IV overlap matrix.
///
/// # Errors
///
/// Propagates the first failing cell.
pub fn table_iv(workload: &WorkloadSpec) -> Result<Vec<OverlapRow>, HelmError> {
    let mut rows = Vec::new();
    for (placement, batch) in table_iv_policies() {
        for config in table_iv_configs() {
            let label = config.kind().to_string();
            let report = run_config(config, placement, batch, workload)?;
            for stage in [Stage::Prefill, Stage::Decode] {
                rows.push(OverlapRow {
                    policy: placement,
                    batch,
                    stage,
                    config: label.clone(),
                    mha_compute_over_ffn_load: report.overlap_ratio(
                        stage,
                        LayerKind::Mha,
                        LayerKind::Ffn,
                    ),
                    ffn_compute_over_mha_load: report.overlap_ratio(
                        stage,
                        LayerKind::Ffn,
                        LayerKind::Mha,
                    ),
                });
            }
        }
    }
    Ok(rows)
}

/// Fig 13a: HeLM's projected TTFT/TBT improvement over baseline at
/// batch 1, per memory configuration. Returns
/// `(label, ttft_gain, tbt_gain)` with gains as fractions.
///
/// # Errors
///
/// Propagates serving failures.
pub fn fig13_helm_gains(workload: &WorkloadSpec) -> Result<Vec<(String, f64, f64)>, HelmError> {
    let mut out = Vec::new();
    for config in table_iv_configs() {
        let label = config.kind().to_string();
        let base = run_config(config.clone(), PlacementKind::Baseline, 1, workload)?;
        let helm = run_config(config, PlacementKind::Helm, 1, workload)?;
        out.push((
            label,
            1.0 - helm.ttft_ms() / base.ttft_ms(),
            1.0 - helm.tbt_ms() / base.tbt_ms(),
        ));
    }
    Ok(out)
}

/// Fig 13b: All-CPU's projected throughput per configuration at
/// batches 8 (baseline and All-CPU) and 44 (All-CPU). Returns
/// `(label, baseline_b8_tps, allcpu_b8_tps, allcpu_b44_tps)`.
///
/// # Errors
///
/// Propagates serving failures.
pub fn fig13_allcpu_throughput(
    workload: &WorkloadSpec,
) -> Result<Vec<(String, f64, f64, f64)>, HelmError> {
    let mut out = Vec::new();
    for config in table_iv_configs() {
        let label = config.kind().to_string();
        let base8 = run_config(config.clone(), PlacementKind::Baseline, 8, workload)?;
        let all8 = run_config(config.clone(), PlacementKind::AllCpu, 8, workload)?;
        let all44 = run_config(config, PlacementKind::AllCpu, 44, workload)?;
        out.push((
            label,
            base8.throughput_tps(),
            all8.throughput_tps(),
            all44.throughput_tps(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> WorkloadSpec {
        WorkloadSpec::paper_default()
    }

    #[test]
    fn cxl_asic_outperforms_fpga() {
        let fpga = run_config(
            HostMemoryConfig::cxl_fpga(),
            PlacementKind::Baseline,
            1,
            &ws(),
        )
        .unwrap();
        let asic = run_config(
            HostMemoryConfig::cxl_asic(),
            PlacementKind::Baseline,
            1,
            &ws(),
        )
        .unwrap();
        assert!(asic.tbt_ms() < fpga.tbt_ms() / 2.0);
    }

    #[test]
    fn fpga_stays_memory_bound_everywhere() {
        // Paper §V-D: "CXL-FPGA stays largely memory bound across all
        // weight allocation policies and inference stages, except
        // All-CPU prefetch with a batch size of 44".
        let rows = table_iv(&ws()).unwrap();
        for row in rows.iter().filter(|r| r.config == "CXL-FPGA") {
            let exempt = row.policy == PlacementKind::AllCpu && row.stage == Stage::Prefill;
            if !exempt {
                assert!(
                    row.mha_compute_over_ffn_load < 1.0,
                    "{row:?} should be memory-bound"
                );
            }
        }
    }

    #[test]
    fn asic_helm_crosses_unity_like_paper() {
        // Table IV: CXL-ASIC with HeLM at batch 1 is the only
        // configuration with MHA-compute/FFN-load > 1.
        let rows = table_iv(&ws()).unwrap();
        let cell = rows
            .iter()
            .find(|r| {
                r.config == "CXL-ASIC"
                    && r.policy == PlacementKind::Helm
                    && r.batch == 1
                    && r.stage == Stage::Prefill
            })
            .unwrap();
        assert!(
            cell.mha_compute_over_ffn_load > 0.9,
            "ASIC+HeLM ratio {}",
            cell.mha_compute_over_ffn_load
        );
    }

    #[test]
    fn helm_gains_are_broad() {
        // Fig 13a: HeLM improves TTFT/TBT by ~27%/21% on FPGA/ASIC.
        for (label, ttft_gain, tbt_gain) in fig13_helm_gains(&ws()).unwrap() {
            assert!(
                ttft_gain > 0.10 && tbt_gain > 0.10,
                "{label}: {ttft_gain}/{tbt_gain}"
            );
        }
    }

    #[test]
    fn all_cpu_scales_throughput_on_every_cxl_device() {
        // Fig 13b / §V-D: 4.7-5x going from baseline b=8 to All-CPU
        // b=44 on both CXL devices.
        for (label, base8, _all8, all44) in fig13_allcpu_throughput(&ws()).unwrap() {
            let speedup = all44 / base8;
            assert!(
                (3.5..=7.0).contains(&speedup),
                "{label}: throughput x{speedup}"
            );
        }
    }
}
