//! Discrete-event pipeline executor.
//!
//! [`crate::exec::run_pipeline`] costs each zig-zag step in closed
//! form: transfers serialize within the step and KV write-back blocks
//! its own step. This executor relaxes both approximations by playing
//! the same schedule against persistent link models:
//!
//! * all host→GPU streams of a step (weight portions from host and
//!   storage, plus offloaded KV) **water-fill the PCIe link
//!   concurrently** ([`CappedLink`]), instead of adding serially;
//! * KV write-back rides the **full-duplex return path** and may spill
//!   past its step — the next MHA layer only stalls if the previous
//!   write-back hasn't drained (a one-deep store queue, like an async
//!   D2H stream with one pinned buffer).
//!
//! The two executors agree exactly when neither relaxation applies
//! (no KV offloading, single-tier placement) — a cross-validation
//! property the test suite pins down — and the DES is never slower.

use crate::error::HelmError;
use crate::exec::{
    audit_placement_feasibility, tier_name, LayerCostTable, PipelineInputs, RecordMode,
    StepAttribution, SYNC_OVERHEAD,
};
use crate::metrics::{LayerStepRecord, RunReport, Stage, StepTotals};
use crate::placement::Tier;
use llm::layers::LayerKind;
use simaudit::Auditor;
use simcore::stats::SeriesStats;
use simcore::time::{SimDuration, SimTime};
use simcore::units::{Bandwidth, ByteSize};
use std::collections::BTreeMap;
use xfer::link::CappedLink;

/// Runs the pipeline on the discrete-event link models.
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] if the placement routes
/// traffic through a memory tier the platform does not provide.
pub fn run_pipeline_des(inp: &PipelineInputs<'_>) -> Result<RunReport, HelmError> {
    let table = LayerCostTable::build(inp)?;
    run_pipeline_des_with(inp, &table, RecordMode::Full)
}

/// [`run_pipeline_des`] over a prebuilt [`LayerCostTable`] with an
/// explicit [`RecordMode`]: per-layer weight flows, compute, and
/// write-back costs come from the table; only the context-dependent
/// KV inbound stream is priced live.
///
/// # Errors
///
/// Returns [`HelmError::TierUnavailable`] as [`run_pipeline_des`]
/// does.
pub fn run_pipeline_des_with(
    inp: &PipelineInputs<'_>,
    table: &LayerCostTable,
    mode: RecordMode,
) -> Result<RunReport, HelmError> {
    let num_layers = table.num_layers();
    let gen_len = inp.workload.gen_len;
    let gpu = inp.system.gpu();
    let micro = inp.policy.num_gpu_batches();
    let effective_batch = inp.policy.effective_batch();

    // Links are persistent across the whole run.
    let link_cap = inp.system.link_capacity(ByteSize::from_gb(1.0));
    let mut h2d = CappedLink::new(link_cap);
    let mut d2h = CappedLink::new(link_cap);
    let mut now = SimTime::ZERO;
    // The outstanding write-back, if any: its drain time.
    let mut writeback_done: Option<SimTime> = None;

    let mut records = match mode {
        RecordMode::Full => Vec::with_capacity(num_layers * gen_len),
        RecordMode::Aggregate => Vec::new(),
    };
    let mut totals = StepTotals::default();
    let mut tbt = SeriesStats::new();
    let mut ttft = SimDuration::ZERO;

    let mut audit = Auditor::capture();
    audit_placement_feasibility(&mut audit, inp);

    // Reusable scratch for the one step shape that needs a combined
    // flow list (cached weight flows + the live KV stream). Cleared
    // per step, so the token loop allocates nothing after the first
    // KV step regardless of run length.
    let mut kv_scratch: Vec<Flow> = Vec::new();

    // A helper that streams a set of flows on a link starting at
    // `start` (each after its fixed setup/latency cost, overlapped
    // across flows as in the analytic model) and returns the drain
    // instant. Each flow's bytes enter the audit ledger when the
    // transfer starts and leave it when the link reports completion —
    // a flow the link loses track of shows up as an imbalance.
    let drain = |link: &mut CappedLink, audit: &mut Auditor, start: SimTime, flows: &[Flow]| {
        if flows.is_empty() {
            return start;
        }
        let fixed = flows
            .iter()
            .map(|f| f.fixed)
            .fold(SimDuration::ZERO, SimDuration::max);
        let begin = start + fixed;
        // BTreeMap, not HashMap: completion handling below iterates
        // and accumulates f64s; hash order would be run-dependent.
        let mut inflight: BTreeMap<_, &Flow> = BTreeMap::new();
        for f in flows {
            audit.scheduled(f.channel, f.bytes);
            audit.check_bandwidth(f.channel, f.cap);
            audit.check_duration(f.channel, f.fixed);
            let id = link.start(begin, f.bytes.as_f64(), f.cap);
            inflight.insert(id, f);
        }
        link.drain(begin, |_, id| {
            if let Some(f) = inflight.remove(&id) {
                audit.delivered(f.channel, f.bytes);
            }
        })
    };

    // Pipeline fill: layer 0's weights stream alone.
    now = drain(&mut h2d, &mut audit, now, table.weight_flows(0));
    let mut att = StepAttribution::default();
    att.close_at(now, true);

    for token in 0..gen_len {
        let stage = if token == 0 {
            Stage::Prefill
        } else {
            Stage::Decode
        };
        let token_start = now;
        for j in 0..num_layers {
            let last_step = token + 1 == gen_len && j + 1 == num_layers;
            let next_index = (j + 1) % num_layers;
            let step_start = now;

            // Launch the next layer's inbound streams (weights + KV).
            let (load_done, next_kind, h2d_bytes) = if last_step {
                (step_start, None, ByteSize::ZERO)
            } else {
                let kv = if inp.policy.kv_offload() && table.kind(next_index) == LayerKind::Mha {
                    let context = match stage {
                        Stage::Prefill => 0,
                        Stage::Decode => inp.workload.prompt_len + token,
                    };
                    kv_flow(inp, table, next_index, context)?
                } else {
                    None
                };
                let weights = table.weight_flows(next_index);
                let (done, bytes) = match kv {
                    // No KV stream: the cached flow slice is used
                    // as-is — no per-step allocation.
                    None => (
                        drain(&mut h2d, &mut audit, step_start, weights),
                        weights.iter().map(|f| f.bytes).sum(),
                    ),
                    Some(f) => {
                        kv_scratch.clear();
                        kv_scratch.extend_from_slice(weights);
                        kv_scratch.push(f);
                        let bytes = kv_scratch.iter().map(|f| f.bytes).sum();
                        (drain(&mut h2d, &mut audit, step_start, &kv_scratch), bytes)
                    }
                };
                (done, Some(table.kind(next_index)), bytes)
            };

            // Compute runs in parallel with the loads.
            let compute = table.compute_time(gpu, j, stage, token) * f64::from(micro);
            let compute_done = step_start + compute;

            // KV write-back: enqueue after compute; stall only if the
            // previous write-back is still draining.
            let mut d2h_bytes = ByteSize::ZERO;
            let mut stall_until = step_start;
            if let Some(wb) = table.writeback(stage) {
                if table.kind(j) == LayerKind::Mha {
                    if let Some(prev) = writeback_done.take() {
                        stall_until = stall_until.max(prev);
                    }
                    let start = compute_done.max(stall_until);
                    writeback_done = Some(drain(
                        &mut d2h,
                        &mut audit,
                        start,
                        &[Flow {
                            bytes: wb.bytes,
                            cap: wb.cap,
                            fixed: wb.fixed,
                            channel: "d2h:kv",
                        }],
                    ));
                    d2h_bytes = wb.bytes;
                }
            }

            now = compute_done.max(load_done).max(stall_until) + SYNC_OVERHEAD;
            att.close_at(now, load_done.max(stall_until) > compute_done);
            audit.check_duration("compute", compute);
            audit.observe_time("des", now);
            totals.record(compute, h2d_bytes, d2h_bytes);
            if mode == RecordMode::Full {
                records.push(LayerStepRecord {
                    token,
                    layer_index: j,
                    kind: table.kind(j),
                    stage,
                    compute,
                    load_next: load_done - step_start,
                    next_kind,
                    h2d_bytes,
                    d2h_bytes,
                    step: now - step_start,
                });
            }
        }
        if token == 0 {
            ttft = now - SimTime::ZERO;
        } else {
            tbt.add((now - token_start).as_secs());
        }
    }

    // The final write-back must drain before the run is complete.
    if let Some(done) = writeback_done {
        now = now.max(done);
        att.close_at(now, true);
    }

    Ok(RunReport {
        model: inp.model.name().to_owned(),
        config: inp.system.memory().kind().to_string(),
        placement: inp.policy.placement(),
        batch: effective_batch,
        compressed: inp.policy.compressed(),
        ttft,
        tbt,
        total_time: now - SimTime::ZERO,
        tokens_generated: inp.workload.tokens_generated(effective_batch),
        totals,
        records,
        achieved_distribution: inp.placement.achieved_distribution(),
        attribution: att.finish(),
        audit: audit.finish_if_active(),
    })
}

/// One host↔GPU stream: payload, rate cap, the fixed setup/latency
/// share of its standalone transfer time, and the audit ledger
/// channel its bytes are accounted on.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Flow {
    pub(crate) bytes: ByteSize,
    pub(crate) cap: Bandwidth,
    pub(crate) fixed: SimDuration,
    pub(crate) channel: &'static str,
}

/// The inbound KV stream of MHA layer `j` at `context`, `None` when
/// nothing streams — the one per-step flow the cost table cannot
/// cache (its size and bandwidth curve depend on the context).
fn kv_flow(
    inp: &PipelineInputs<'_>,
    table: &LayerCostTable,
    j: usize,
    context: usize,
) -> Result<Option<Flow>, HelmError> {
    let kv = table.kv_read_bytes(j, context);
    if kv == ByteSize::ZERO {
        return Ok(None);
    }
    let cap = inp
        .system
        .kv_stream_bandwidth(kv, Some(table.cpu_ws()))
        .ok_or(HelmError::TierUnavailable { tier: "cpu" })?;
    Ok(Some(Flow {
        bytes: kv,
        cap,
        fixed: SimDuration::ZERO,
        channel: "h2d:kv",
    }))
}

/// The host→GPU flows for one layer: per-tier weight portions, plus
/// the layer's KV cache when offloaded (`kv_context`).
pub(crate) fn host_flows(
    inp: &PipelineInputs<'_>,
    layer_index: usize,
    cpu_ws: ByteSize,
    disk_ws: ByteSize,
    kv_context: Option<usize>,
) -> Result<Vec<Flow>, HelmError> {
    let lp = &inp.placement.layers()[layer_index];
    let dtype = inp.placement.dtype();
    let mut flows = Vec::with_capacity(3);
    for (tier, bytes, ws) in [
        (Tier::Cpu, lp.bytes_on(Tier::Cpu, dtype), cpu_ws),
        (Tier::Disk, lp.bytes_on(Tier::Disk, dtype), disk_ws),
    ] {
        if bytes == ByteSize::ZERO {
            continue;
        }
        let unavailable = HelmError::TierUnavailable {
            tier: tier_name(tier),
        };
        let cap = inp
            .system
            .tier_bandwidth(tier, bytes, Some(ws))
            .ok_or(unavailable.clone())?;
        let full = inp
            .system
            .tier_transfer_time(tier, bytes, Some(ws))
            .ok_or(unavailable)?;
        flows.push(Flow {
            bytes,
            cap,
            fixed: full - cap.time_for(bytes),
            channel: match tier {
                Tier::Cpu => "h2d:cpu",
                Tier::Disk => "h2d:disk",
                Tier::Gpu => "h2d:gpu",
            },
        });
    }
    if let Some(context) = kv_context {
        let kv = lp
            .layer()
            .kv_read_bytes(inp.policy.effective_batch(), context);
        if kv > ByteSize::ZERO {
            let cap = inp
                .system
                .kv_stream_bandwidth(kv, Some(cpu_ws))
                .ok_or(HelmError::TierUnavailable { tier: "cpu" })?;
            flows.push(Flow {
                bytes: kv,
                cap,
                fixed: SimDuration::ZERO,
                channel: "h2d:kv",
            });
        }
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_pipeline;
    use crate::placement::{ModelPlacement, PlacementKind};
    use crate::policy::Policy;
    use crate::system::SystemConfig;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;
    use workload::WorkloadSpec;

    fn both(
        memory: HostMemoryConfig,
        placement: PlacementKind,
        kv_offload: bool,
        batch: u32,
    ) -> (RunReport, RunReport) {
        let system = SystemConfig::paper_platform(memory.clone());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(placement)
            .with_compression(true)
            .with_kv_offload(kv_offload)
            .with_batch_size(batch);
        let p = ModelPlacement::compute(&model, &policy);
        let workload = WorkloadSpec::paper_default();
        let inputs = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &p,
            workload: &workload,
        };
        (
            run_pipeline(&inputs).expect("analytic runs"),
            run_pipeline_des(&inputs).expect("des runs"),
        )
    }

    #[test]
    fn agrees_exactly_with_analytic_on_single_tier_runs() {
        // Without KV offloading and with one host tier, the two
        // executors model identical physics.
        for placement in [PlacementKind::Baseline, PlacementKind::Helm] {
            let (analytic, des) = both(HostMemoryConfig::nvdram(), placement, false, 1);
            let rel = (des.tbt_ms() - analytic.tbt_ms()).abs() / analytic.tbt_ms();
            assert!(
                rel < 1e-6,
                "{placement}: {} vs {}",
                des.tbt_ms(),
                analytic.tbt_ms()
            );
            assert!((des.ttft_ms() - analytic.ttft_ms()).abs() / analytic.ttft_ms() < 1e-6);
        }
    }

    #[test]
    fn split_tier_runs_stay_close() {
        // SSD config splits weights across disk and DRAM; both
        // executors water-fill the same link, differing only in when
        // fixed costs apply.
        let (analytic, des) = both(HostMemoryConfig::ssd(), PlacementKind::Baseline, false, 1);
        let rel = (des.tbt_ms() - analytic.tbt_ms()).abs() / analytic.tbt_ms();
        assert!(rel < 0.05, "{} vs {}", des.tbt_ms(), analytic.tbt_ms());
    }

    #[test]
    fn des_is_never_slower_under_kv_offload() {
        // Concurrent KV-in streams and spill-over write-backs only
        // relax the analytic serialization.
        let (analytic, des) = both(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 44);
        assert!(des.tbt_ms() <= analytic.tbt_ms() * (1.0 + 1e-9));
        // ...but the write-back cost does not vanish: still slower
        // than resident KV.
        let (resident, _) = both(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, false, 44);
        assert!(des.tbt_ms() > resident.tbt_ms());
    }

    #[test]
    fn traffic_accounting_matches_between_executors() {
        let (analytic, des) = both(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 8);
        assert_eq!(analytic.total_h2d_bytes(), des.total_h2d_bytes());
        assert_eq!(analytic.total_d2h_bytes(), des.total_d2h_bytes());
    }

    #[test]
    fn final_writeback_extends_total_time() {
        let (_, des) = both(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 8);
        let last_step_end: f64 = des.records.iter().map(|r| r.step.as_secs()).sum();
        assert!(des.total_time.as_secs() >= last_step_end - 1e-9);
    }
}
