//! The high-level serving entry point.

use crate::error::HelmError;
use crate::exec::{
    run_pipeline, run_pipeline_traced, run_pipeline_with, LayerCostTable, PipelineInputs,
    RecordMode,
};
use crate::metrics::RunReport;
use crate::placement::{ModelPlacement, Tier};
use crate::policy::Policy;
use crate::system::SystemConfig;
use crate::trace::Trace;
use gpusim::{MemoryBudget, ResidentCosts};
use llm::ModelConfig;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

/// An out-of-core LLM inference server over heterogeneous memory.
///
/// Construction computes and validates the weight placement against
/// tier capacities; [`Server::run`] additionally validates the batch
/// against GPU memory for the given workload, then executes the
/// zig-zag pipeline.
///
/// # Examples
///
/// OPT-175B does not fit an all-DRAM host uncompressed — the very
/// premise of the paper:
///
/// ```
/// use helm_core::server::Server;
/// use helm_core::system::SystemConfig;
/// use helm_core::policy::Policy;
/// use hetmem::HostMemoryConfig;
/// use llm::ModelConfig;
///
/// let model = ModelConfig::opt_175b();
/// let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Dram);
/// let result = Server::new(
///     SystemConfig::paper_platform(HostMemoryConfig::dram()),
///     model,
///     policy,
/// );
/// assert!(result.is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    system: SystemConfig,
    model: ModelConfig,
    policy: Policy,
    placement: ModelPlacement,
}

impl Server {
    /// Builds a server, computing the placement and checking host and
    /// storage tier capacities.
    ///
    /// # Errors
    ///
    /// [`HelmError::NoDiskTier`] when the policy targets storage the
    /// configuration lacks; [`HelmError::CapacityExceeded`] when a
    /// tier overflows.
    pub fn new(
        system: SystemConfig,
        model: ModelConfig,
        policy: Policy,
    ) -> Result<Self, HelmError> {
        let mut placement = ModelPlacement::compute(&model, &policy);
        // HeLM's GPU-resident share (FC1 of every block) may not fit
        // at all for large uncompressed models; its capacity fallback
        // applies at construction, not just per-batch (§V-B is
        // evaluated with compression, where FC1 fits).
        if policy.placement() == crate::placement::PlacementKind::Helm {
            let resident = placement.total_on(Tier::Gpu) + placement.staging_bytes();
            if resident > system.gpu().hbm_capacity() {
                placement = ModelPlacement::compute_helm_demoted(&model, &policy);
            }
        }
        let disk_bytes = placement.total_on(Tier::Disk);
        if disk_bytes > ByteSize::ZERO && system.memory().disk_device().is_none() {
            return Err(HelmError::NoDiskTier);
        }
        // Drive the host-side placement through the memkind-like
        // tiered allocator: every layer's per-tier bytes are real
        // allocations against the configured capacities.
        let mut allocator = hetmem::TieredAllocator::new();
        let cpu_tier = allocator.add_tier("cpu", system.tier_capacity(Tier::Cpu));
        let disk_tier = allocator.add_tier("disk", system.tier_capacity(Tier::Disk));
        for lp in placement.layers() {
            for (tier, id, name) in [
                (Tier::Cpu, cpu_tier, "cpu"),
                (Tier::Disk, disk_tier, "disk"),
            ] {
                let bytes = lp.bytes_on(tier, placement.dtype());
                if bytes > ByteSize::ZERO {
                    allocator
                        .allocate(id, bytes)
                        .map_err(|e| HelmError::CapacityExceeded {
                            tier: name,
                            requested: placement.total_on(tier),
                            capacity: e.available + allocator.used(id),
                        })?;
                }
            }
        }
        // The batch-independent GPU residents must fit outright.
        let gpu_resident = placement.total_on(Tier::Gpu) + placement.staging_bytes();
        if gpu_resident > system.gpu().hbm_capacity() {
            return Err(HelmError::CapacityExceeded {
                tier: "gpu",
                requested: gpu_resident,
                capacity: system.gpu().hbm_capacity(),
            });
        }
        Ok(Server {
            system,
            model,
            policy,
            placement,
        })
    }

    /// The policy's nominal placement (before any capacity fallback).
    pub fn placement(&self) -> &ModelPlacement {
        &self.placement
    }

    /// The placement actually executed for `workload`: HeLM demotes
    /// its GPU-resident FFN share to host when the batch's KV cache
    /// would not fit alongside it (the paper's Table IV batch-8 HeLM
    /// regime); every other policy serves its nominal placement.
    pub fn effective_placement(&self, workload: &WorkloadSpec) -> ModelPlacement {
        if self.policy.placement() == crate::placement::PlacementKind::Helm {
            let costs = self.costs_of(&self.placement, workload);
            let budget = MemoryBudget::for_gpu(self.system.gpu());
            if !budget.fits(&costs, self.policy.effective_batch()) {
                return ModelPlacement::compute_helm_demoted(&self.model, &self.policy);
            }
        }
        self.placement.clone()
    }

    fn costs_of(&self, placement: &ModelPlacement, workload: &WorkloadSpec) -> ResidentCosts {
        let context = workload.context_len();
        let kv_per_sequence = if self.policy.kv_offload() {
            // Only the live layer's cache (double-buffered) stays in
            // HBM; the rest lives on the host tier.
            ByteSize::from_bytes(
                2 * context as u64 * llm::kv::kv_bytes_per_token_per_block(&self.model),
            )
        } else {
            llm::kv::kv_bytes_per_sequence(&self.model, context)
        };
        ResidentCosts {
            weights: placement.total_on(Tier::Gpu),
            staging: placement.staging_bytes(),
            kv_per_sequence,
            hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(&self.model, context),
        }
    }

    /// The platform.
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// A new server on the same platform and model with a different
    /// placement policy and batch size — the building block for
    /// heterogeneous cluster mixes, where e.g. a latency-tuned HeLM
    /// batch-4 replica serves beside a throughput-tuned All-CPU
    /// batch-44 replica ([`crate::online::run_cluster_mix`]).
    ///
    /// # Errors
    ///
    /// Same validation as [`Server::new`]: the re-derived placement
    /// must fit the platform's tiers.
    pub fn reconfigured(
        &self,
        placement: crate::placement::PlacementKind,
        batch: u32,
    ) -> Result<Server, HelmError> {
        Server::new(
            self.system.clone(),
            self.model.clone(),
            self.policy
                .clone()
                .with_placement(placement)
                .with_batch_size(batch),
        )
    }

    /// GPU-resident cost breakdown for `workload`, using the
    /// effective (fallback-aware) placement.
    pub fn resident_costs(&self, workload: &WorkloadSpec) -> ResidentCosts {
        self.costs_of(&self.effective_placement(workload), workload)
    }

    /// The largest batch that fits GPU memory for `workload` — the
    /// quantity All-CPU placement maximizes (paper §V-C: 8 → 44).
    pub fn max_batch(&self, workload: &WorkloadSpec) -> u32 {
        MemoryBudget::for_gpu(self.system.gpu()).max_batch(&self.resident_costs(workload))
    }

    /// Runs the serving pipeline.
    ///
    /// # Errors
    ///
    /// [`HelmError::BatchTooLarge`] when the policy's batch exceeds
    /// what GPU memory allows for this workload.
    pub fn run(&self, workload: &WorkloadSpec) -> Result<RunReport, HelmError> {
        self.run_mode(workload, RecordMode::Full)
    }

    /// [`Server::run`] in [`RecordMode::Aggregate`]: the same
    /// validated pipeline run with bit-identical aggregates (TTFT,
    /// TBT, throughput, traffic totals) but no per-step records — the
    /// allocation-free path online calibration and repeated
    /// evaluations use.
    ///
    /// # Errors
    ///
    /// [`HelmError::BatchTooLarge`] as for [`Server::run`].
    pub fn run_aggregate(&self, workload: &WorkloadSpec) -> Result<RunReport, HelmError> {
        self.run_mode(workload, RecordMode::Aggregate)
    }

    /// [`Server::run`] with span collection on: returns the report
    /// together with every request's span tree (queue wait, weight
    /// fill, per-token prefill/decode, per-step transfer/compute
    /// segments). The report is byte-identical to [`Server::run`].
    ///
    /// # Errors
    ///
    /// [`HelmError::BatchTooLarge`] as for [`Server::run`].
    pub fn run_traced(&self, workload: &WorkloadSpec) -> Result<(RunReport, Trace), HelmError> {
        let max = self.max_batch(workload);
        if self.policy.effective_batch() > max {
            return Err(HelmError::BatchTooLarge {
                requested: self.policy.effective_batch(),
                max_batch: max,
            });
        }
        let placement = self.effective_placement(workload);
        let inputs = PipelineInputs {
            system: &self.system,
            model: &self.model,
            policy: &self.policy,
            placement: &placement,
            workload,
        };
        let table = LayerCostTable::build(&inputs)?;
        run_pipeline_traced(&inputs, &table, RecordMode::Full)
    }

    fn run_mode(&self, workload: &WorkloadSpec, mode: RecordMode) -> Result<RunReport, HelmError> {
        let max = self.max_batch(workload);
        if self.policy.effective_batch() > max {
            return Err(HelmError::BatchTooLarge {
                requested: self.policy.effective_batch(),
                max_batch: max,
            });
        }
        let placement = self.effective_placement(workload);
        let inputs = PipelineInputs {
            system: &self.system,
            model: &self.model,
            policy: &self.policy,
            placement: &placement,
            workload,
        };
        let table = LayerCostTable::build(&inputs)?;
        run_pipeline_with(&inputs, &table, mode)
    }

    /// Runs the serving pipeline on the discrete-event executor
    /// ([`crate::exec_des`]): inbound streams water-fill the PCIe
    /// link and KV write-backs ride the full-duplex return path
    /// asynchronously. Agrees exactly with [`Server::run`] when
    /// neither relaxation applies.
    ///
    /// # Errors
    ///
    /// [`HelmError::BatchTooLarge`] as for [`Server::run`].
    pub fn run_des(&self, workload: &WorkloadSpec) -> Result<RunReport, HelmError> {
        let max = self.max_batch(workload);
        if self.policy.effective_batch() > max {
            return Err(HelmError::BatchTooLarge {
                requested: self.policy.effective_batch(),
                max_batch: max,
            });
        }
        let placement = self.effective_placement(workload);
        crate::exec_des::run_pipeline_des(&PipelineInputs {
            system: &self.system,
            model: &self.model,
            policy: &self.policy,
            placement: &placement,
            workload,
        })
    }

    /// Runs the pipeline without the GPU-memory batch check (the
    /// capacity-aware HeLM fallback still applies). Useful for
    /// projections probing configurations right at the capacity edge;
    /// prefer [`Server::run`] for anything presented as a serving
    /// result.
    ///
    /// # Errors
    ///
    /// [`HelmError::TierUnavailable`] when the placement routes
    /// traffic through a tier the platform does not provide.
    pub fn run_unchecked(&self, workload: &WorkloadSpec) -> Result<RunReport, HelmError> {
        let placement = self.effective_placement(workload);
        run_pipeline(&PipelineInputs {
            system: &self.system,
            model: &self.model,
            policy: &self.policy,
            placement: &placement,
            workload,
        })
    }

    /// Searches per-kind GPU shares for the best placement under this
    /// server's platform, model, and policy — the serving-time entry
    /// to [`crate::autoplace`]. The server's own placement is the
    /// starting policy; the search explores alternatives without
    /// mutating the server.
    ///
    /// # Errors
    ///
    /// [`HelmError::CapacityExceeded`] when no candidate placement is
    /// feasible (see [`crate::autoplace::optimize`]).
    pub fn autoplace(
        &self,
        workload: &WorkloadSpec,
        objective: crate::autoplace::Objective,
        budget: crate::autoplace::SearchBudget,
    ) -> Result<crate::autoplace::AutoPlacement, HelmError> {
        crate::autoplace::search(
            &self.system,
            &self.model,
            &self.policy,
            workload,
            objective,
            budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use hetmem::HostMemoryConfig;

    fn server(
        memory: HostMemoryConfig,
        kind: PlacementKind,
        compressed: bool,
        batch: u32,
    ) -> Result<Server, HelmError> {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(kind)
            .with_compression(compressed)
            .with_batch_size(batch);
        Server::new(SystemConfig::paper_platform(memory), model, policy)
    }

    #[test]
    fn opt175b_uncompressed_rejected_on_dram() {
        // ~320 GB host-resident weights vs 256 GB DRAM.
        let err = server(HostMemoryConfig::dram(), PlacementKind::Baseline, false, 1)
            .expect_err("should not fit");
        assert!(matches!(
            err,
            HelmError::CapacityExceeded { tier: "cpu", .. }
        ));
    }

    #[test]
    fn opt175b_compressed_fits_dram() {
        // ~92 GB compressed: fits, the §V ideal-DRAM reference.
        assert!(server(HostMemoryConfig::dram(), PlacementKind::Baseline, true, 1).is_ok());
    }

    #[test]
    fn opt175b_fits_nvdram_uncompressed() {
        assert!(server(
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            false,
            1
        )
        .is_ok());
    }

    #[test]
    fn baseline_max_batch_is_8_uncompressed() {
        // Paper Fig 4: maximum permissible batch for OPT-175B is 8.
        let s = server(
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            false,
            1,
        )
        .unwrap();
        assert_eq!(s.max_batch(&WorkloadSpec::paper_default()), 8);
    }

    #[test]
    fn all_cpu_max_batch_is_44_compressed() {
        // Paper §V-C: All-CPU raises the maximum batch to 44.
        let s = server(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 1).unwrap();
        assert_eq!(s.max_batch(&WorkloadSpec::paper_default()), 44);
    }

    #[test]
    fn oversized_batch_rejected_at_run() {
        let s = server(
            HostMemoryConfig::nvdram(),
            PlacementKind::Baseline,
            false,
            32,
        )
        .unwrap();
        let err = s.run(&WorkloadSpec::paper_default()).unwrap_err();
        assert!(matches!(
            err,
            HelmError::BatchTooLarge { requested: 32, .. }
        ));
    }

    #[test]
    fn disk_policy_needs_disk_tier() {
        // The SSD-style (65, 15, 20) split on a configuration with no
        // storage tier.
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Ssd);
        let err = Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap_err();
        assert_eq!(err, HelmError::NoDiskTier);
    }

    #[test]
    fn end_to_end_run_produces_report() {
        let s = server(HostMemoryConfig::nvdram(), PlacementKind::Helm, true, 1).unwrap();
        let report = s.run(&WorkloadSpec::paper_default()).unwrap();
        assert_eq!(report.tokens_generated, 21);
        assert!(report.throughput_tps() > 0.0);
        assert!(report.summary().contains("NVDRAM"));
    }

    #[test]
    fn kv_offload_unlocks_much_larger_batches() {
        // With the cache on the host tier, GPU memory stops bounding
        // the batch at 44.
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(PlacementKind::AllCpu)
            .with_compression(true)
            .with_kv_offload(true);
        let s = Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap();
        let max = s.max_batch(&WorkloadSpec::paper_default());
        assert!(max > 200, "offloaded max batch {max}");
    }

    #[test]
    fn micro_batches_count_against_the_budget() {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(PlacementKind::AllCpu)
            .with_compression(true)
            .with_batch_size(11)
            .with_gpu_batches(5); // effective 55 > 44
        let s = Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap();
        let err = s.run(&WorkloadSpec::paper_default()).unwrap_err();
        assert!(matches!(
            err,
            HelmError::BatchTooLarge { requested: 55, .. }
        ));
    }

    #[test]
    fn ssd_and_fsdax_servers_build() {
        assert!(server(HostMemoryConfig::ssd(), PlacementKind::Baseline, false, 1).is_ok());
        assert!(server(HostMemoryConfig::fsdax(), PlacementKind::Baseline, false, 1).is_ok());
    }
}
