//! The analytical attainment bound that prunes cluster mixes.
//!
//! # Contract
//!
//! [`attainment_bound`] is a **sound optimistic bound**: for a given
//! mix and traffic, no scheduler, admission policy, or dispatch
//! decision can make the DES's
//! [`ClusterReport::slo_attainment`](crate::online::ClusterReport::slo_attainment)
//! exceed it. The planner prunes a mix — all of its scheduler ×
//! admission variants at once — exactly when the bound is below the
//! target, so pruning can never discard a configuration that would
//! have met the SLO (bound-feasible ⊇ DES-feasible, the property the
//! `planner_props` suite checks against random traffic).
//!
//! # Derivation
//!
//! Arrivals and deadlines are deterministic in the traffic seed
//! ([`PoissonArrivals`] and the deadline draws are pure functions of
//! it), so instead of reasoning about M/G/k distribution tails the
//! bound *realizes* the actual request sequence once per plan
//! ([`TrafficRealization`]) and combines three certificates over it,
//! each an upper bound on how many requests can possibly be met:
//!
//! 1. **Service-rate capacity.** A replica serving run-to-completion
//!    batches completes at most `max_b b / total(b)` requests per
//!    busy second; under continuous batching every step of duration
//!    `prefill(a) + decode_step(c)` grants exactly `a + c` output
//!    tokens and a request needs `gen_len` grants, capping the
//!    completion rate at `max_{a,c} (a+c) / dur / gen_len`. Every
//!    met request completes by its own deadline, so all met service
//!    fits in the window from the first arrival to the latest
//!    realized deadline: `met ≤ Σ_replicas rate × window`.
//! 2. **Per-class feasibility.** The fastest any replica in the mix
//!    can finish one request served alone, immediately, is its
//!    minimum solo service time (run-to-completion: the calibration
//!    endpoints bound `total(b)` for every batch; continuous: one
//!    minimal prefill plus `gen_len − 1` minimal decode steps). A
//!    request whose relative deadline is shorter than the mix's
//!    fastest solo service can never be met — queueing and batching
//!    only add to it.
//! 3. **The offered count** itself: `met ≤ n`.
//!
//! Deadline-free requests are always met when served (the DES counts
//! them as met by definition and they may complete arbitrarily
//! late), so they bypass certificates 1 and 2.

use crate::online::{DeadlineAssigner, PoissonArrivals, ServiceModel};
use crate::planner::TrafficSpec;
use std::collections::BTreeMap;

/// Slack added to feasibility comparisons so a request whose deadline
/// *equals* its minimum service time — met in the DES, where `done >
/// deadline` is a strict comparison — is never ruled infeasible by a
/// different rounding of the same quantity. Loosening the bound is
/// always sound.
const FEASIBILITY_SLACK: f64 = 1e-9;

/// The realized request sequence of one [`TrafficSpec`]: exactly the
/// arrivals and deadline draws the DES will see, collapsed to what
/// the bound needs. Computed once per plan and shared across every
/// mix bound.
#[derive(Debug, Clone)]
pub(super) struct TrafficRealization {
    /// Offered requests.
    n: usize,
    /// Requests with no deadline (met whenever served).
    deadline_free: usize,
    /// Distinct relative deadlines (seconds, keyed by bit pattern for
    /// a deterministic order) with their request counts.
    classes: Vec<(f64, usize)>,
    /// First arrival instant, seconds.
    first_arrival: f64,
    /// Latest absolute deadline, seconds (no met deadline-carrying
    /// request can complete later).
    horizon: f64,
}

impl TrafficRealization {
    pub(super) fn realize(traffic: &TrafficSpec) -> Self {
        let mut arrivals = PoissonArrivals::new(traffic.lambda, traffic.seed);
        let mut deadliner = DeadlineAssigner::new(traffic.deadlines);
        let mut classes: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        let mut deadline_free = 0usize;
        let mut first_arrival = f64::INFINITY;
        let mut horizon = 0.0f64;
        for _ in 0..traffic.num_requests {
            let at = arrivals.next_arrival();
            first_arrival = first_arrival.min(at.as_secs());
            match deadliner.next(at) {
                None => deadline_free += 1,
                Some(deadline) => {
                    let delta = (deadline - at).as_secs();
                    horizon = horizon.max(deadline.as_secs());
                    classes.entry(delta.to_bits()).or_insert((delta, 0)).1 += 1;
                }
            }
        }
        TrafficRealization {
            n: traffic.num_requests,
            deadline_free,
            classes: classes.into_values().collect(),
            first_arrival,
            horizon,
        }
    }
}

/// The most requests per second one replica of `model` can complete,
/// maximized over every batch composition the service model admits.
fn replica_rate_per_s(model: &ServiceModel, continuous: bool) -> f64 {
    let cap = model.max_batch().max(1);
    if !continuous {
        return (1..=cap)
            .map(|b| {
                let dur = model.total(b).as_secs();
                if dur > 0.0 {
                    f64::from(b) / dur
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0, f64::max);
    }
    // Continuous batching: a step with `a` admitted and `c`
    // continuing requests grants `a + c` tokens in `prefill(a) +
    // decode_step(c)` seconds; a request completes after `gen_len`
    // grants. Enumerate every split (the cap is small).
    let gen_len = model.gen_len().max(1) as f64;
    let mut grants_per_s: f64 = 0.0;
    for a in 0..=cap {
        for c in 0..=(cap - a) {
            if a + c == 0 {
                continue;
            }
            let mut dur = 0.0;
            if a > 0 {
                dur += model.prefill(a).as_secs();
            }
            if c > 0 {
                dur += model.decode_step(c).as_secs();
            }
            if dur <= 0.0 {
                return f64::INFINITY;
            }
            grants_per_s = grants_per_s.max(f64::from(a + c) / dur);
        }
    }
    grants_per_s / gen_len
}

/// The fastest one replica of `model` can finish a single request
/// served alone, immediately — a floor on any request's end-to-end
/// latency on that replica.
fn min_service_secs(model: &ServiceModel, continuous: bool) -> f64 {
    let cap = model.max_batch().max(1);
    if !continuous {
        // `total` interpolates between the calibration endpoints, so
        // the endpoints bound it for every batch size.
        return model.total(1).as_secs().min(model.total(cap).as_secs());
    }
    let prefill = model.prefill(1).as_secs().min(model.prefill(cap).as_secs());
    let decode = model
        .decode_step(1)
        .as_secs()
        .min(model.decode_step(cap).as_secs());
    prefill + decode * model.gen_len().saturating_sub(1) as f64
}

/// The bound over a pre-realized traffic sequence; see
/// [`attainment_bound`].
pub(super) fn bound_over(
    realization: &TrafficRealization,
    groups: &[(&ServiceModel, usize)],
    continuous: bool,
) -> f64 {
    if realization.n == 0 {
        return 0.0;
    }
    let replicas: usize = groups.iter().map(|(_, count)| *count).sum();
    if replicas == 0 {
        return 0.0;
    }
    // Certificate 2: the mix's fastest solo service time gates which
    // deadline classes are reachable at all.
    let fastest = groups
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(model, _)| min_service_secs(model, continuous))
        .fold(f64::INFINITY, f64::min);
    let feasible: usize = realization
        .classes
        .iter()
        .filter(|(delta, _)| *delta + FEASIBILITY_SLACK >= fastest)
        .map(|(_, count)| count)
        .sum();
    // Certificate 1: total completion capacity inside the window no
    // met, deadline-carrying request can escape.
    let window = (realization.horizon - realization.first_arrival).max(0.0);
    let capacity: f64 = groups
        .iter()
        .map(|(model, count)| *count as f64 * replica_rate_per_s(model, continuous) * window)
        .sum();
    let met_deadline = (feasible as f64).min(capacity);
    let met = (realization.deadline_free as f64 + met_deadline).min(realization.n as f64);
    (met / realization.n as f64).min(1.0)
}

/// A sound optimistic upper bound on the SLO attainment any cluster
/// built from `groups` — `(service model, replica count)` per group —
/// can reach against `traffic`, whatever the scheduler, admission
/// policy, and dispatch decisions (see the module docs for the
/// derivation and the soundness contract). `continuous` selects the
/// batching granularity the cluster would run with.
///
/// Used by [`super::plan`] to prune mixes; exposed so the soundness
/// property (bound ≥ every DES attainment) is testable directly.
pub fn attainment_bound(
    groups: &[(&ServiceModel, usize)],
    traffic: &TrafficSpec,
    continuous: bool,
) -> f64 {
    bound_over(&TrafficRealization::realize(traffic), groups, continuous)
}
