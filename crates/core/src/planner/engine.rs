//! The planner's parallel, pruned, probe-then-confirm search driver.
//!
//! # Search order
//!
//! Resource levels — total replica counts — are walked cheapest
//! first, so the first level with a confirmed-feasible candidate *is*
//! the minimum-resource answer and no larger cluster is ever probed.
//! Within a level:
//!
//! 1. every mix of that total is bounded analytically
//!    ([`super::bound`]); a mix whose optimistic bound misses the
//!    target is pruned together with all of its scheduler × admission
//!    variants, before any DES run;
//! 2. the survivors expand into concrete candidates, ranked
//!    best-bound-first (ties broken by the total candidate order:
//!    counts, then scheduler, then admission — all indices into the
//!    caller's `PlanSpace`, so the schedule is a pure function of the
//!    lattice);
//! 3. candidates are probed with short capped-request DES runs in
//!    fixed-size chunks, reduced serially in schedule order; the
//!    first probe that clears the target is re-run at full length,
//!    and a confirmed run ends the search. A probe-feasible candidate
//!    that *fails* confirmation is skipped deterministically and the
//!    scan continues.
//!
//! # Determinism
//!
//! The same three mechanisms as the autoplace engine make the chosen
//! configuration bit-identical at any thread count: the schedule and
//! its chunk boundaries are fixed before evaluation begins; each
//! probe is a pure function of its candidate (every probe replays the
//! identical arrival prefix from the traffic seed, and the shared
//! calibration cache is warmed before the pool spins up, so workers
//! only ever read it); and the reduction over each chunk's outcomes
//! is serial and in schedule order. A level smaller than one chunk
//! per worker runs inline on the calling thread — same chunks, same
//! order, same winner, less fan-out overhead.
//!
//! # Fallback
//!
//! When no candidate confirms — the target is unreachable inside the
//! lattice — the planner still returns a deterministic best effort:
//! the highest-probe-attainment candidate seen (first in schedule
//! order on ties), or, if the bound pruned everything, the
//! highest-bound mix under the first scheduler/admission variant. The
//! report marks the result infeasible rather than failing the search.

use std::num::NonZeroUsize;
// lint: allow(wall-clock-in-sim): SearchStats.wall_ms reports real search cost, never simulated time
use std::time::Instant;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use super::bound::{bound_over, TrafficRealization};
use super::{
    Candidate, GroupTemplate, PlanReport, PlanSpace, PlanTarget, SearchBudget, SearchStats,
    TrafficSpec,
};
use crate::error::HelmError;
use crate::exec::RecordMode;
use crate::online::{
    run_cluster_mix_cached, CalibrationCache, ClusterReport, ClusterSpec, PoissonArrivals,
    ServiceModel,
};
use crate::server::Server;
use workload::WorkloadSpec;

/// Candidates per parallel probe chunk. Fixed (not thread-derived) so
/// chunk boundaries are identical whatever the thread count.
const CHUNK: usize = 8;

/// Every replica-count vector of length `templates` summing to
/// `total`, in lexicographic order — the deterministic mix
/// enumeration one resource level schedules.
pub(super) fn mixes_of(total: usize, templates: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; templates];
    fill(&mut out, &mut current, 0, total);
    out
}

fn fill(out: &mut Vec<Vec<usize>>, current: &mut Vec<usize>, idx: usize, remaining: usize) {
    if idx + 1 == current.len() {
        current[idx] = remaining;
        out.push(current.clone());
        current[idx] = 0;
        return;
    }
    for take in 0..=remaining {
        current[idx] = take;
        fill(out, current, idx + 1, remaining - take);
    }
    current[idx] = 0;
}

/// One schedulable candidate: its mix, the analytical bound it
/// inherited from the mix, and its variant indices into the plan
/// space (the tie-break key).
struct Ranked {
    counts: Vec<usize>,
    bound: f64,
    scheduler: usize,
    admission: usize,
}

/// One capacity-planning search.
pub(super) struct PlanEngine<'a> {
    server: &'a Server,
    workload: &'a WorkloadSpec,
    traffic: &'a TrafficSpec,
    target: PlanTarget,
    space: &'a PlanSpace,
    budget: SearchBudget,
}

impl<'a> PlanEngine<'a> {
    pub(super) fn new(
        server: &'a Server,
        workload: &'a WorkloadSpec,
        traffic: &'a TrafficSpec,
        target: PlanTarget,
        space: &'a PlanSpace,
        budget: SearchBudget,
    ) -> Self {
        PlanEngine {
            server,
            workload,
            traffic,
            target,
            space,
            budget,
        }
    }

    /// Builds the candidate from its schedule entry.
    fn candidate(&self, ranked: &Ranked) -> Candidate {
        Candidate {
            counts: ranked.counts.clone(),
            scheduler: self.space.schedulers[ranked.scheduler],
            admission: self.space.admissions[ranked.admission],
        }
    }

    /// Runs one DES simulation of `ranked`'s cluster over the first
    /// `num_requests` arrivals of the traffic sequence. Pure in the
    /// candidate: arrivals restart from the traffic seed and the
    /// warm calibration cache is only read, so probes can run on any
    /// worker in any order.
    fn simulate(
        &self,
        servers: &[Server],
        ranked: &Ranked,
        num_requests: usize,
        cache: &CalibrationCache,
    ) -> Result<ClusterReport, HelmError> {
        let groups: Vec<(&Server, usize)> = servers
            .iter()
            .zip(&ranked.counts)
            .filter(|(_, &count)| count > 0)
            .map(|(server, &count)| (server, count))
            .collect();
        let spec = ClusterSpec::new(1)
            .with_scheduler(self.space.schedulers[ranked.scheduler])
            .with_admission(self.space.admissions[ranked.admission])
            .with_deadlines(self.traffic.deadlines)
            .with_continuous(self.space.continuous)
            .with_granularity(self.space.granularity)
            .with_record(RecordMode::Aggregate);
        let mut arrivals = PoissonArrivals::new(self.traffic.lambda, self.traffic.seed);
        let mut cache = cache.clone();
        run_cluster_mix_cached(
            &groups,
            self.workload,
            &mut arrivals,
            num_requests,
            spec,
            &mut cache,
        )
    }

    pub(super) fn run(self) -> Result<PlanReport, HelmError> {
        let started = Instant::now(); // lint: allow(wall-clock-in-sim): feeds SearchStats.wall_ms run metadata only
        let probe_requests = self
            .space
            .probe_requests
            .max(1)
            .min(self.traffic.num_requests);
        // Template servers and the shared calibration memo, warmed
        // serially before any parallel probing: two pipeline runs per
        // distinct template for the entire search.
        let servers = self
            .space
            .templates
            .iter()
            .map(|t| self.server.reconfigured(t.placement, t.batch))
            .collect::<Result<Vec<_>, _>>()?;
        let mut cache = CalibrationCache::new();
        let models = servers
            .iter()
            .map(|s| cache.get_or_calibrate(s, self.workload))
            .collect::<Result<Vec<ServiceModel>, _>>()?;
        let realization = TrafficRealization::realize(self.traffic);

        let pool = ThreadPoolBuilder::new()
            .num_threads(self.budget.threads)
            .build()
            .unwrap_or_else(|_| unreachable!("vendored rayon pool build is infallible"));
        let workers = pool
            .current_num_threads()
            .min(std::thread::available_parallelism().map_or(1, NonZeroUsize::get));

        let mut stats = SearchStats::default();
        let mut candidates_total = 0usize;
        let mut confirmations = 0usize;
        let mut confirm_wall_ms = 0.0f64;
        // Best probe attainment seen, for the infeasible fallback
        // (strict improvement keeps the earliest on ties — the
        // schedule order is deterministic, so this is too).
        let mut best_probe: Option<(Candidate, f64)> = None;
        // Best analytical bound seen, for the everything-pruned
        // fallback.
        let mut best_bound: Option<(f64, Vec<usize>)> = None;
        let mut outcome: Option<(Candidate, f64, ClusterReport)> = None;
        let variants = self.space.schedulers.len() * self.space.admissions.len();

        'levels: for total in 1..=self.space.max_replicas {
            // Bound every mix of this resource level; the bound is
            // scheduler/admission-independent, so one pruned mix
            // removes all of its variants at once.
            let mut survivors: Vec<(Vec<usize>, f64)> = Vec::new();
            for counts in mixes_of(total, self.space.templates.len()) {
                candidates_total += variants;
                let groups: Vec<(&ServiceModel, usize)> =
                    models.iter().zip(counts.iter().copied()).collect();
                let bound = bound_over(&realization, &groups, self.space.continuous);
                if best_bound.as_ref().is_none_or(|(b, _)| bound > *b) {
                    best_bound = Some((bound, counts.clone()));
                }
                if bound < self.target.attainment {
                    stats.pruned += variants;
                } else {
                    survivors.push((counts, bound));
                }
            }
            let mut ranked: Vec<Ranked> = Vec::with_capacity(survivors.len() * variants);
            for (counts, bound) in &survivors {
                for scheduler in 0..self.space.schedulers.len() {
                    for admission in 0..self.space.admissions.len() {
                        ranked.push(Ranked {
                            counts: counts.clone(),
                            bound: *bound,
                            scheduler,
                            admission,
                        });
                    }
                }
            }
            ranked.sort_by(|a, b| {
                b.bound
                    .total_cmp(&a.bound)
                    .then_with(|| a.counts.cmp(&b.counts))
                    .then_with(|| a.scheduler.cmp(&b.scheduler))
                    .then_with(|| a.admission.cmp(&b.admission))
            });
            // Adaptive serial fallback, as in the autoplace engine: a
            // level too small to keep every worker busy runs inline —
            // same chunks, same reduction order, bit-identical pick.
            let serial = workers <= 1 || ranked.len() < workers * CHUNK;
            let mut cursor = 0usize;
            while cursor < ranked.len() {
                let cap = if self.budget.max_evals > 0 {
                    self.budget.max_evals.saturating_sub(stats.evaluated)
                } else {
                    usize::MAX
                };
                if cap == 0 {
                    break 'levels;
                }
                let take = CHUNK.min(cap).min(ranked.len() - cursor);
                let chunk = &ranked[cursor..cursor + take];
                cursor += take;
                let probes: Vec<Result<ClusterReport, HelmError>> = if serial {
                    chunk
                        .iter()
                        .map(|r| self.simulate(&servers, r, probe_requests, &cache))
                        .collect()
                } else {
                    pool.install(|| {
                        chunk
                            .par_iter()
                            .map(|r| self.simulate(&servers, r, probe_requests, &cache))
                            .collect()
                    })
                };
                for (ranked_candidate, probe) in chunk.iter().zip(probes) {
                    let report = probe?;
                    stats.evaluated += 1;
                    let attainment = report.slo_attainment();
                    if best_probe.as_ref().is_none_or(|(_, b)| attainment > *b) {
                        best_probe = Some((self.candidate(ranked_candidate), attainment));
                    }
                    if attainment >= self.target.attainment {
                        confirmations += 1;
                        // lint: allow(wall-clock-in-sim): feeds PlanReport.confirm_wall_ms run metadata only
                        let confirm_started = Instant::now();
                        let confirmed = self.simulate(
                            &servers,
                            ranked_candidate,
                            self.traffic.num_requests,
                            &cache,
                        )?;
                        confirm_wall_ms += confirm_started.elapsed().as_secs_f64() * 1000.0;
                        if confirmed.slo_attainment() >= self.target.attainment {
                            outcome =
                                Some((self.candidate(ranked_candidate), attainment, confirmed));
                            break 'levels;
                        }
                        // Probe-feasible but not confirmed: the short
                        // prefix was too optimistic. Skip it and keep
                        // scanning — deterministically, since the
                        // schedule and this rejection are both pure
                        // in the lattice.
                    }
                }
            }
        }

        let (chosen, probe_attainment, confirmed) = match outcome {
            Some(found) => found,
            None => {
                // Best effort: the strongest candidate seen, confirmed
                // at full length so the report is honest about what
                // the lattice actually delivers.
                let (candidate, probe_attainment) = match best_probe {
                    Some(best) => best,
                    None => {
                        let counts = best_bound
                            .map(|(_, counts)| counts)
                            .unwrap_or_else(|| unreachable!("plan() validates a nonempty lattice"));
                        let ranked = Ranked {
                            counts,
                            bound: 0.0,
                            scheduler: 0,
                            admission: 0,
                        };
                        let report = self.simulate(&servers, &ranked, probe_requests, &cache)?;
                        stats.evaluated += 1;
                        (self.candidate(&ranked), report.slo_attainment())
                    }
                };
                let ranked = Ranked {
                    counts: candidate.counts.clone(),
                    bound: 0.0,
                    scheduler: self
                        .space
                        .schedulers
                        .iter()
                        .position(|s| *s == candidate.scheduler)
                        .unwrap_or(0),
                    admission: self
                        .space
                        .admissions
                        .iter()
                        .position(|a| *a == candidate.admission)
                        .unwrap_or(0),
                };
                confirmations += 1;
                // lint: allow(wall-clock-in-sim): feeds PlanReport.confirm_wall_ms run metadata only
                let confirm_started = Instant::now();
                let confirmed =
                    self.simulate(&servers, &ranked, self.traffic.num_requests, &cache)?;
                confirm_wall_ms += confirm_started.elapsed().as_secs_f64() * 1000.0;
                (candidate, probe_attainment, confirmed)
            }
        };

        let attainment = confirmed.slo_attainment();
        let groups: Vec<(GroupTemplate, usize)> = self
            .space
            .templates
            .iter()
            .zip(&chosen.counts)
            .filter(|(_, &count)| count > 0)
            .map(|(template, &count)| (*template, count))
            .collect();
        stats.wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        Ok(PlanReport {
            feasible: attainment >= self.target.attainment,
            chosen,
            groups,
            probe_attainment,
            attainment,
            attribution: confirmed.attribution,
            confirmed,
            stats,
            candidates: candidates_total,
            confirmations,
            calibrations: cache.calibrations(),
            confirm_wall_ms,
            probe_requests,
        })
    }
}
