//! SLO-aware capacity planning: the minimum-resource serving
//! configuration that meets an attainment target.
//!
//! The paper's conclusion asks for a system that "automatically
//! make[s] latency/throughput tradeoffs based on desired quality of
//! service requirements" (§VII). [`crate::autoplace`] answers half of
//! that — the best `{placement, batch}` for one replica — and
//! [`crate::online`] simulates the other half, a heterogeneous
//! cluster `{mix, scheduler, admission}` taken as a given. This
//! module closes the loop: given a traffic specification
//! ([`TrafficSpec`]: arrival rate, request volume, deadline mix) and
//! an SLO-attainment target ([`PlanTarget`]), [`plan`] searches the
//! joint space `{placement × batch × replica count per group × group
//! mix × scheduler × admission}` for the cheapest cluster — fewest
//! total replicas — whose simulated attainment clears the target.
//!
//! The joint lattice is thousands of candidates where autoplace's
//! grid was 43, so the search leans on three layers of perf
//! machinery:
//!
//! 1. **Analytical pruning** ([`attainment_bound`]): an optimistic
//!    M/G/k-style upper bound on attainment computed from the
//!    calibrated [`ServiceModel`](crate::online::ServiceModel)s
//!    alone — per-replica service-rate caps against the realized
//!    arrival/deadline sequence, plus a per-class feasibility floor.
//!    A mix whose *optimistic* bound misses the target cannot meet
//!    it in the DES either (bound-feasible ⊇ DES-feasible, the same
//!    soundness contract as `autoplace`'s prune layer), so all of
//!    its scheduler × admission variants are pruned without running
//!    a single simulation.
//! 2. **Calibration caching**
//!    ([`CalibrationCache`](crate::online::CalibrationCache)): every
//!    probe of a mix draws its service models from one shared memo,
//!    so the two calibration pipeline runs per distinct
//!    `(placement, batch)` template are paid once for the whole
//!    search instead of once per probe.
//! 3. **Parallel, deterministic evaluation**: surviving candidates
//!    are probed with short capped-request DES runs
//!    ([`RecordMode::Aggregate`](crate::exec::RecordMode)) in fixed
//!    chunks on the vendored rayon pool, best-bound-first, with a
//!    serial in-order reduction — the identical determinism recipe as
//!    the autoplace engine, so the chosen configuration is
//!    bit-identical at any thread count. Replica counts are walked
//!    coarse-to-fine (cheapest level first), and the first
//!    probe-feasible candidate is verified with one full-length
//!    confirmation run before being returned.
//!
//! The resource knobs ([`SearchBudget`]) and work accounting
//! ([`SearchStats`]) are shared with [`crate::autoplace`] — one
//! budget vocabulary for both searches.

mod bound;
mod engine;

pub use crate::autoplace::{SearchBudget, SearchStats};
pub use bound::attainment_bound;

use crate::error::HelmError;
use crate::online::{AdmissionPolicy, ClusterReport, DeadlineSpec, SchedulerKind, StepGranularity};
use crate::placement::PlacementKind;
use crate::server::Server;
use workload::WorkloadSpec;

/// The offered traffic a plan must serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSpec {
    /// Poisson arrival rate, requests per second of simulated time.
    pub lambda: f64,
    /// Requests in the full-length (confirmation) run; probes use a
    /// capped prefix of the same arrival sequence.
    pub num_requests: usize,
    /// Arrival-process seed. Arrivals and deadline draws are
    /// deterministic in it, which is what lets the analytical bound
    /// reason about the *realized* sequence instead of distribution
    /// tails.
    pub seed: u64,
    /// Per-request completion deadlines.
    pub deadlines: DeadlineSpec,
}

impl TrafficSpec {
    /// Deadline-free traffic at `lambda` req/s.
    pub fn new(lambda: f64, num_requests: usize, seed: u64) -> Self {
        TrafficSpec {
            lambda,
            num_requests,
            seed,
            deadlines: DeadlineSpec::None,
        }
    }

    /// Attaches a deadline specification.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: DeadlineSpec) -> Self {
        self.deadlines = deadlines;
        self
    }
}

/// The service-level objective a plan must meet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanTarget {
    /// Minimum SLO attainment (fraction of offered requests completed
    /// within their deadline), in `[0, 1]`.
    pub attainment: f64,
}

impl PlanTarget {
    /// A target attainment.
    ///
    /// # Panics
    ///
    /// Panics unless `attainment` is in `[0, 1]`.
    pub fn attainment(attainment: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&attainment),
            "attainment target must be in [0, 1]"
        );
        PlanTarget { attainment }
    }
}

/// One replica configuration the planner may deploy: a placement
/// policy and the batch size it serves at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTemplate {
    /// Placement algorithm of this replica class.
    pub placement: PlacementKind,
    /// Serving batch size of this replica class.
    pub batch: u32,
}

impl GroupTemplate {
    /// `placement` at `batch`.
    pub fn new(placement: PlacementKind, batch: u32) -> Self {
        GroupTemplate { placement, batch }
    }
}

/// The candidate lattice one plan searches.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    /// Replica configurations available to the mix. A candidate
    /// assigns each template a replica count (possibly zero).
    pub templates: Vec<GroupTemplate>,
    /// Cap on total replicas across all groups — the resource the
    /// planner minimizes.
    pub max_replicas: usize,
    /// Dispatch policies to consider.
    pub schedulers: Vec<SchedulerKind>,
    /// Admission policies to consider.
    pub admissions: Vec<AdmissionPolicy>,
    /// Serve with continuous (decode-step) batching.
    pub continuous: bool,
    /// Event granularity of every probe and confirmation run. Reports
    /// are byte-identical either way; coalesced macro-stepping only
    /// changes how fast the confirmations finish.
    pub granularity: StepGranularity,
    /// Requests per screening probe (capped at the traffic's
    /// `num_requests`). Probes rank candidates; the winner is always
    /// verified with a full-length confirmation run.
    pub probe_requests: usize,
}

impl PlanSpace {
    /// The default lattice for `server`'s platform: a latency-tuned
    /// HeLM template at the policy's own batch, a throughput-tuned
    /// All-CPU template at the largest batch GPU memory allows (the
    /// quantity [`crate::autoplace::Objective::Throughput`] maximizes
    /// and the paper's §V-C derivation, reused here as the
    /// throughput corner of the mix), and the FlexGen baseline at the
    /// policy batch — under every scheduler, with accept-all and
    /// deadline-feasible admission, up to four replicas.
    ///
    /// # Errors
    ///
    /// Propagates placement validation from deriving the All-CPU
    /// template.
    pub fn for_server(server: &Server, workload: &WorkloadSpec) -> Result<PlanSpace, HelmError> {
        let batch = server.policy().effective_batch();
        let allcpu = server.reconfigured(PlacementKind::AllCpu, 1)?;
        let throughput_batch = allcpu.max_batch(workload).max(1);
        Ok(PlanSpace {
            templates: vec![
                GroupTemplate::new(PlacementKind::Helm, batch),
                GroupTemplate::new(PlacementKind::AllCpu, throughput_batch),
                GroupTemplate::new(PlacementKind::Baseline, batch),
            ],
            max_replicas: 4,
            schedulers: vec![
                SchedulerKind::JoinShortestQueue,
                SchedulerKind::LeastFinishTime,
                SchedulerKind::DeadlineAware,
            ],
            admissions: vec![
                AdmissionPolicy::AcceptAll,
                AdmissionPolicy::DeadlineFeasible,
            ],
            continuous: false,
            granularity: StepGranularity::default(),
            probe_requests: 200,
        })
    }

    /// Total candidate count of the lattice: mixes of up to
    /// `max_replicas` replicas over the templates, times the
    /// scheduler and admission variants.
    pub fn candidate_count(&self) -> usize {
        let variants = self.schedulers.len() * self.admissions.len();
        (1..=self.max_replicas)
            .map(|total| engine::mixes_of(total, self.templates.len()).len() * variants)
            .sum()
    }
}

/// One point of the lattice: a replica count per template plus the
/// cluster's dispatch and admission policies.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Replica count per template, aligned with
    /// [`PlanSpace::templates`].
    pub counts: Vec<usize>,
    /// Dispatch policy.
    pub scheduler: SchedulerKind,
    /// Admission policy.
    pub admission: AdmissionPolicy,
}

impl Candidate {
    /// Total replicas — the resource cost the planner minimizes.
    pub fn total_replicas(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// The outcome of one capacity-planning search.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Whether the chosen configuration met the target on the
    /// full-length confirmation run. `false` means the lattice cannot
    /// reach the target and `chosen` is the best-effort configuration
    /// (highest probe attainment, or highest analytical bound when
    /// everything was pruned).
    pub feasible: bool,
    /// The chosen configuration.
    pub chosen: Candidate,
    /// The chosen mix's deployed groups (templates with a nonzero
    /// replica count).
    pub groups: Vec<(GroupTemplate, usize)>,
    /// Attainment of the chosen candidate's screening probe.
    pub probe_attainment: f64,
    /// Attainment of the full-length confirmation run.
    pub attainment: f64,
    /// The confirmation run's full cluster report (audit ledger
    /// included when auditing is active).
    pub confirmed: ClusterReport,
    /// Work accounting: DES probes run, candidates pruned by the
    /// analytical bound, wall-clock of the whole search.
    pub stats: SearchStats,
    /// Size of the candidate lattice.
    pub candidates: usize,
    /// Full-length confirmation runs (the chosen one plus any
    /// probe-feasible candidates that failed confirmation).
    pub confirmations: usize,
    /// Calibration pipeline pairs actually run — one per distinct
    /// template, however many probes the search made.
    pub calibrations: u64,
    /// Wall-clock milliseconds spent inside full-length confirmation
    /// runs (a subset of `stats.wall_ms`) — the cost the coalesced
    /// granularity attacks. Run metadata, not simulation output: like
    /// `stats.wall_ms` it must be zeroed before any determinism
    /// fingerprint.
    pub confirm_wall_ms: f64,
    /// Requests per screening probe.
    pub probe_requests: usize,
    /// Critical-path attribution of the confirmation run, aggregated
    /// over every served request (a copy of
    /// `confirmed.attribution`, surfaced for report tooling).
    pub attribution: crate::trace::Attribution,
}

/// Finds the minimum-resource configuration in `space` meeting
/// `target` under `traffic`, by bound-pruned, calibration-cached,
/// parallel probe-then-confirm search (see the module docs). The
/// chosen configuration is bit-identical at any `budget.threads`.
///
/// # Errors
///
/// Propagates placement/batch validation from building the template
/// servers and simulation errors from the probe and confirmation
/// runs. Returns [`HelmError::InvalidConfig`] when `space` has no
/// templates, no schedulers, no admissions, a zero replica cap, or a
/// zero probe size; or when the traffic's arrival rate is not finite
/// and positive or its request count is zero.
pub fn plan(
    server: &Server,
    workload: &WorkloadSpec,
    traffic: &TrafficSpec,
    target: PlanTarget,
    space: &PlanSpace,
    budget: SearchBudget,
) -> Result<PlanReport, HelmError> {
    if space.templates.is_empty() || space.schedulers.is_empty() || space.admissions.is_empty() {
        return Err(HelmError::InvalidConfig(
            "a plan space needs at least one template, scheduler, and admission policy",
        ));
    }
    if space.max_replicas < 1 {
        return Err(HelmError::InvalidConfig(
            "a plan needs at least one replica",
        ));
    }
    if space.probe_requests == 0 {
        return Err(HelmError::InvalidConfig(
            "a plan needs at least one probe request per candidate",
        ));
    }
    if !(traffic.lambda.is_finite() && traffic.lambda > 0.0) {
        return Err(HelmError::InvalidConfig(
            "a plan needs a finite, positive arrival rate",
        ));
    }
    if traffic.num_requests < 1 {
        return Err(HelmError::InvalidConfig("a plan needs traffic to serve"));
    }
    engine::PlanEngine::new(server, workload, traffic, target, space, budget).run()
}

/// Replays a finished plan's chosen configuration with span
/// collection on, returning the cluster report together with every
/// served request's span tree. The replay reruns the confirmation
/// simulation — same arrival seed, same policies, same record mode —
/// so its report is byte-identical to `report.confirmed` and the
/// spans describe exactly the run the plan was judged on.
///
/// # Errors
///
/// Propagates placement/batch validation from rebuilding the group
/// servers and simulation errors from the replay run.
pub fn replay_plan_traced(
    server: &Server,
    workload: &WorkloadSpec,
    traffic: &TrafficSpec,
    space: &PlanSpace,
    report: &PlanReport,
) -> Result<(ClusterReport, crate::trace::Trace), HelmError> {
    use crate::exec::RecordMode;
    use crate::online::{run_cluster_mix_traced, CalibrationCache, ClusterSpec, PoissonArrivals};
    let servers = report
        .groups
        .iter()
        .map(|(t, _)| server.reconfigured(t.placement, t.batch))
        .collect::<Result<Vec<_>, _>>()?;
    let groups: Vec<(&Server, usize)> = servers
        .iter()
        .zip(&report.groups)
        .map(|(s, (_, count))| (s, *count))
        .collect();
    let spec = ClusterSpec::new(1)
        .with_scheduler(report.chosen.scheduler)
        .with_admission(report.chosen.admission)
        .with_deadlines(traffic.deadlines)
        .with_continuous(space.continuous)
        .with_granularity(space.granularity)
        .with_record(RecordMode::Aggregate);
    let mut arrivals = PoissonArrivals::new(traffic.lambda, traffic.seed);
    run_cluster_mix_traced(
        &groups,
        workload,
        &mut arrivals,
        traffic.num_requests,
        spec,
        &mut CalibrationCache::new(),
    )
}
