//! Serving metrics: TTFT, TBT, throughput, and the per-layer timers
//! behind the paper's overlap analysis (§III-C).

use crate::placement::PlacementKind;
use crate::trace::Attribution;
use llm::layers::LayerKind;
use simcore::stats::SeriesStats;
use simcore::time::SimDuration;
use simcore::units::ByteSize;
use std::fmt::Write as _;

/// Inference stage (paper Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Prompt processing (GEMM-heavy, produces the first token).
    Prefill,
    /// Token-by-token generation over the KV cache.
    Decode,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::Prefill => "prefill",
            Stage::Decode => "decode",
        })
    }
}

/// Timing of one (token, layer) pipeline step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStepRecord {
    /// Token index (0 = prefill).
    pub token: usize,
    /// Layer index in the flattened sequence.
    pub layer_index: usize,
    /// Layer kind.
    pub kind: LayerKind,
    /// Stage the step belongs to.
    pub stage: Stage,
    /// GPU compute time of this layer.
    pub compute: SimDuration,
    /// Transfer time of the *next* layer's offloaded weights,
    /// overlapped with `compute` (zero when nothing streams).
    pub load_next: SimDuration,
    /// Kind of the layer whose weights streamed during this step.
    pub next_kind: Option<LayerKind>,
    /// Host→GPU bytes moved during this step (weights + any streamed
    /// KV cache).
    pub h2d_bytes: ByteSize,
    /// GPU→host bytes moved during this step (KV-cache write-back
    /// under offloading).
    pub d2h_bytes: ByteSize,
    /// Wall-clock of the step: `max(compute, load_next)` + sync.
    pub step: SimDuration,
}

/// Run-wide aggregates over a pipeline's steps, accumulated by the
/// executors in step order — the same order the per-step record sums
/// used to run in, so the totals are bit-identical whether or not the
/// records themselves are materialized
/// ([`crate::exec::RecordMode::Aggregate`] drops them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTotals {
    /// Pipeline steps executed (`gen_len × num_layers`).
    pub steps: usize,
    /// Host→GPU bytes moved (weights plus any streamed KV cache).
    pub h2d_bytes: ByteSize,
    /// GPU→host bytes moved (KV-cache write-back under offloading).
    pub d2h_bytes: ByteSize,
    /// GPU busy (compute) time.
    pub compute: SimDuration,
}

impl Default for StepTotals {
    fn default() -> Self {
        StepTotals {
            steps: 0,
            h2d_bytes: ByteSize::ZERO,
            d2h_bytes: ByteSize::ZERO,
            compute: SimDuration::ZERO,
        }
    }
}

impl StepTotals {
    /// Folds one step into the totals.
    pub fn record(&mut self, compute: SimDuration, h2d: ByteSize, d2h: ByteSize) {
        self.steps += 1;
        self.compute += compute;
        self.h2d_bytes += h2d;
        self.d2h_bytes += d2h;
    }

    /// The totals of an already-materialized record list.
    pub fn from_records(records: &[LayerStepRecord]) -> Self {
        let mut totals = StepTotals::default();
        for r in records {
            totals.record(r.compute, r.h2d_bytes, r.d2h_bytes);
        }
        totals
    }
}

/// The result of one serving run.
///
/// All averages follow the paper's §III-C rule: arithmetic mean with
/// the first sample discarded (cold start).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Model name.
    pub model: String,
    /// Memory configuration label (Table II).
    pub config: String,
    /// Placement algorithm used.
    pub placement: PlacementKind,
    /// Serving batch size.
    pub batch: u32,
    /// Whether weights were 4-bit compressed.
    pub compressed: bool,
    /// Prefill latency (time to first token).
    pub ttft: SimDuration,
    /// Per-decode-step durations in seconds.
    pub tbt: SeriesStats,
    /// Total wall-clock of the run.
    pub total_time: SimDuration,
    /// Tokens generated (batch x gen_len).
    pub tokens_generated: u64,
    /// Every pipeline step. Empty when the run used
    /// [`crate::exec::RecordMode::Aggregate`]; the per-record
    /// breakdowns (timelines, CSV, stage/kind averages) then report
    /// nothing, while [`RunReport::totals`] stays exact.
    pub records: Vec<LayerStepRecord>,
    /// Step aggregates, valid in both record modes.
    pub totals: StepTotals,
    /// Achieved (disk, cpu, gpu) weight distribution.
    pub achieved_distribution: [f64; 3],
    /// Exact critical-path attribution of the run: compute-bound vs
    /// transfer-bound ticks partitioning the total wall-clock
    /// (offline runs never queue, so `queue_ticks == 0`).
    pub attribution: Attribution,
    /// Invariant-audit outcome, when auditing was active for the run
    /// (debug builds, or `--audit`): byte-conservation ledgers per
    /// transfer channel plus any violations observed.
    pub audit: Option<simaudit::AuditReport>,
}

impl RunReport {
    /// Time to first token in milliseconds.
    pub fn ttft_ms(&self) -> f64 {
        self.ttft.as_millis()
    }

    /// Mean time between tokens in milliseconds (first discarded).
    pub fn tbt_ms(&self) -> f64 {
        SimDuration::from_secs(self.tbt.mean_discard_first()).as_millis()
    }

    /// Overall generation throughput in tokens/second.
    pub fn throughput_tps(&self) -> f64 {
        self.tokens_generated as f64 / self.total_time.as_secs()
    }

    /// Mean decode-step duration (all steps weighted equally) — the
    /// per-step decode cost a serving-layer service model calibrates
    /// against.
    pub fn mean_tbt(&self) -> SimDuration {
        SimDuration::from_secs(self.tbt.mean())
    }

    /// Mean transfer time of `kind`-layer weights during `stage`
    /// (the bars of Figs 5, 6, 8, 11a, 12d/e), first sample
    /// discarded.
    pub fn avg_weight_transfer(&self, stage: Stage, kind: LayerKind) -> SimDuration {
        self.mean_over(|r| (r.stage == stage && r.next_kind == Some(kind)).then_some(r.load_next))
    }

    /// Mean compute time of `kind` layers during `stage` (the lines
    /// of the same figures), first sample discarded.
    pub fn avg_compute(&self, stage: Stage, kind: LayerKind) -> SimDuration {
        self.mean_over(|r| (r.stage == stage && r.kind == kind).then_some(r.compute))
    }

    /// Mean transfer time across both hidden-layer kinds.
    pub fn avg_hidden_weight_transfer(&self, stage: Stage) -> SimDuration {
        self.mean_over(|r| {
            (r.stage == stage && matches!(r.next_kind, Some(LayerKind::Mha | LayerKind::Ffn)))
                .then_some(r.load_next)
        })
    }

    /// Mean compute time across both hidden-layer kinds.
    pub fn avg_hidden_compute(&self, stage: Stage) -> SimDuration {
        self.mean_over(|r| (r.stage == stage && r.kind.is_hidden()).then_some(r.compute))
    }

    /// Per-layer weight-load times of the first decode pass, in layer
    /// order (Fig 7a's sawtooth).
    pub fn decode_load_profile(&self) -> Vec<(usize, SimDuration)> {
        let first_decode = self
            .records
            .iter()
            .filter(|r| r.stage == Stage::Decode)
            .map(|r| r.token)
            .min();
        let Some(token) = first_decode else {
            return Vec::new();
        };
        self.records
            .iter()
            .filter(|r| r.token == token && r.load_next > SimDuration::ZERO)
            .map(|r| (r.layer_index + 1, r.load_next))
            .collect()
    }

    /// Compute/communication overlap ratio: mean compute of `num`
    /// layers over mean load of `den` layers in `stage` (Table IV).
    /// Values below 1 are memory-bound, above 1 compute-bound.
    pub fn overlap_ratio(&self, stage: Stage, num: LayerKind, den: LayerKind) -> f64 {
        let c = self.avg_compute(stage, num).as_secs();
        let l = self.avg_weight_transfer(stage, den).as_secs();
        if l == 0.0 {
            f64::INFINITY
        } else {
            c / l
        }
    }

    fn mean_over<F>(&self, mut pick: F) -> SimDuration
    where
        F: FnMut(&LayerStepRecord) -> Option<SimDuration>,
    {
        let stats: SeriesStats = self
            .records
            .iter()
            .filter_map(|r| pick(r).map(SimDuration::as_secs))
            .collect();
        SimDuration::from_secs(stats.mean_discard_first())
    }

    /// Total host→GPU traffic of the run.
    pub fn total_h2d_bytes(&self) -> ByteSize {
        self.totals.h2d_bytes
    }

    /// Total GPU→host traffic of the run.
    pub fn total_d2h_bytes(&self) -> ByteSize {
        self.totals.d2h_bytes
    }

    /// Total GPU busy (compute) time of the run.
    pub fn total_compute_time(&self) -> SimDuration {
        self.totals.compute
    }

    /// Exports every pipeline step as CSV (header + one row per
    /// step), for external plotting of the timelines behind
    /// Figs 5–8/11/12.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "token,layer_index,kind,stage,compute_ms,load_next_ms,h2d_bytes,d2h_bytes,step_ms\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.6},{:.6},{},{},{:.6}",
                r.token,
                r.layer_index,
                r.kind,
                r.stage,
                r.compute.as_millis(),
                r.load_next.as_millis(),
                r.h2d_bytes.as_u64(),
                r.d2h_bytes.as_u64(),
                r.step.as_millis(),
            );
        }
        out
    }

    /// Renders one token pass as an ASCII compute/transfer Gantt —
    /// the textual version of the paper's overlap figures. `width` is
    /// the bar budget for the longest step.
    ///
    /// ```text
    /// layer  4 MHA  c ####          | l ############ (FFN)
    /// layer  5 FFN  c ##########    | l ####         (MHA)
    /// ```
    pub fn timeline(&self, token: usize, width: usize) -> String {
        let steps: Vec<&LayerStepRecord> =
            self.records.iter().filter(|r| r.token == token).collect();
        let longest = steps
            .iter()
            .map(|r| r.step.as_secs())
            .fold(0.0f64, f64::max);
        if longest <= 0.0 {
            return String::new();
        }
        let scale = width as f64 / longest;
        let mut out = String::new();
        for r in &steps {
            let c = (r.compute.as_secs() * scale).round() as usize;
            let l = (r.load_next.as_secs() * scale).round() as usize;
            let _ = writeln!(
                out,
                "layer {:>3} {:<9} c {:<w$} | l {:<w$} {}",
                r.layer_index,
                r.kind.to_string(),
                "#".repeat(c.min(width)),
                "#".repeat(l.min(width)),
                r.next_kind.map(|k| format!("({k})")).unwrap_or_default(),
                w = width,
            );
        }
        out
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} on {} [{} b={}{}]: TTFT {:.1} ms, TBT {:.1} ms, {:.2} tok/s",
            self.model,
            self.config,
            self.placement,
            self.batch,
            if self.compressed { " (c)" } else { "" },
            self.ttft_ms(),
            self.tbt_ms(),
            self.throughput_tps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        token: usize,
        layer_index: usize,
        kind: LayerKind,
        stage: Stage,
        compute_ms: f64,
        load_ms: f64,
        next_kind: Option<LayerKind>,
    ) -> LayerStepRecord {
        LayerStepRecord {
            token,
            layer_index,
            kind,
            stage,
            compute: SimDuration::from_millis(compute_ms),
            load_next: SimDuration::from_millis(load_ms),
            next_kind,
            h2d_bytes: ByteSize::from_mb(load_ms), // 1 MB/ms stand-in
            d2h_bytes: ByteSize::ZERO,
            step: SimDuration::from_millis(compute_ms.max(load_ms)),
        }
    }

    fn report() -> RunReport {
        let records = vec![
            // Two decode MHA steps loading FFN weights (first is
            // the cold sample and gets discarded).
            record(
                1,
                1,
                LayerKind::Mha,
                Stage::Decode,
                99.0,
                99.0,
                Some(LayerKind::Ffn),
            ),
            record(
                2,
                1,
                LayerKind::Mha,
                Stage::Decode,
                10.0,
                30.0,
                Some(LayerKind::Ffn),
            ),
            record(
                3,
                1,
                LayerKind::Mha,
                Stage::Decode,
                10.0,
                30.0,
                Some(LayerKind::Ffn),
            ),
            record(
                2,
                2,
                LayerKind::Ffn,
                Stage::Decode,
                20.0,
                15.0,
                Some(LayerKind::Mha),
            ),
            record(
                3,
                2,
                LayerKind::Ffn,
                Stage::Decode,
                20.0,
                15.0,
                Some(LayerKind::Mha),
            ),
        ];
        RunReport {
            model: "test".into(),
            config: "DRAM".into(),
            placement: PlacementKind::Baseline,
            batch: 1,
            compressed: false,
            ttft: SimDuration::from_millis(100.0),
            tbt: [0.5, 0.01, 0.02, 0.03].into_iter().collect(),
            total_time: SimDuration::from_secs(1.0),
            tokens_generated: 21,
            totals: StepTotals::from_records(&records),
            records,
            achieved_distribution: [0.0, 91.7, 8.3],
            attribution: Attribution::default(),
            audit: None,
        }
    }

    #[test]
    fn tbt_discards_first() {
        let r = report();
        assert!((r.tbt_ms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_tokens_over_time() {
        let r = report();
        assert!((r.throughput_tps() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn averages_filter_by_stage_kind_and_discard_first() {
        let r = report();
        let mha_c = r.avg_compute(Stage::Decode, LayerKind::Mha);
        assert!((mha_c.as_millis() - 10.0).abs() < 1e-9);
        let ffn_l = r.avg_weight_transfer(Stage::Decode, LayerKind::Ffn);
        assert!((ffn_l.as_millis() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_ratio_matches_table_iv_semantics() {
        let r = report();
        // MHA compute (10) / FFN load (30) = 0.33: memory-bound.
        let ratio = r.overlap_ratio(Stage::Decode, LayerKind::Mha, LayerKind::Ffn);
        assert!((ratio - 1.0 / 3.0).abs() < 1e-9);
        // FFN compute (20) / MHA load (15) = 1.33: compute-bound.
        let ratio2 = r.overlap_ratio(Stage::Decode, LayerKind::Ffn, LayerKind::Mha);
        assert!((ratio2 - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn decode_profile_orders_by_layer() {
        let r = report();
        let profile = r.decode_load_profile();
        // Token 1 is the first decode pass; one record there.
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].0, 2);
    }

    #[test]
    fn summary_mentions_everything() {
        let s = report().summary();
        assert!(s.contains("DRAM") && s.contains("TBT") && s.contains("tok/s"));
    }

    #[test]
    fn traffic_totals_sum_records() {
        let r = report();
        // 99 + 30 + 30 + 15 + 15 MB of stand-in traffic.
        assert_eq!(r.total_h2d_bytes(), ByteSize::from_mb(189.0));
        assert_eq!(r.total_d2h_bytes(), ByteSize::ZERO);
        assert!(r.total_compute_time() > SimDuration::ZERO);
    }

    #[test]
    fn timeline_renders_scaled_bars() {
        let r = report();
        let t = r.timeline(2, 20);
        assert_eq!(t.lines().count(), 2);
        assert!(t.contains("MHA"));
        assert!(t.contains("(FFN)"));
        // The 30 ms load dominates the token-2 MHA step: full-width bar.
        let first = t.lines().next().unwrap();
        assert!(first.contains(&"#".repeat(20)));
        // Unknown token: empty.
        assert_eq!(r.timeline(99, 20), "");
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let r = report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.records.len());
        assert!(csv.starts_with("token,layer_index"));
        assert!(csv.contains("MHA,decode"));
    }
}
