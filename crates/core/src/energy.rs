//! System energy accounting.
//!
//! The paper's abstract argues that careful placement "can effectively
//! enable the substitution of DRAM with high-capacity but slower
//! memory, improving overall system energy efficiency". This module
//! quantifies that claim: a [`RunReport`]'s traffic and timing fold
//! into joules using per-technology access energies and background
//! powers, yielding J/token comparisons between an (hypothetical)
//! all-DRAM host large enough for the model and the heterogeneous
//! configurations the paper evaluates.
//!
//! Constants are engineering approximations assembled from the device
//! literature the paper cites (Optane characterization studies; CXL's
//! "lower per-bit transfer energy" §II-D) and vendor datasheets; they
//! are exposed publicly so studies can substitute their own.

use crate::metrics::RunReport;
use crate::system::SystemConfig;
use hetmem::MemoryTechnology;
use simcore::PowerDensity;
use std::fmt;

/// DDR4 DRAM access energy, J/byte (~20 pJ/bit).
pub const DRAM_ACCESS_J_PER_BYTE: f64 = 160e-12;
/// Optane media read energy, J/byte (~40 pJ/bit).
pub const OPTANE_READ_J_PER_BYTE: f64 = 320e-12;
/// Optane media write energy, J/byte (~150 pJ/bit: PCM SET/RESET).
pub const OPTANE_WRITE_J_PER_BYTE: f64 = 1200e-12;
/// CXL link + media read energy, J/byte (PCIe's lower per-bit energy).
pub const CXL_ACCESS_J_PER_BYTE: f64 = 120e-12;
/// Block-storage path energy, J/byte (media + kernel I/O path).
pub const STORAGE_ACCESS_J_PER_BYTE: f64 = 500e-12;
/// PCIe transfer energy, J/byte (~6 pJ/bit).
pub const PCIE_J_PER_BYTE: f64 = 48e-12;
/// DRAM background power, W per GB (refresh + standby, DDR4 DIMMs).
pub const DRAM_STATIC_W_PER_GB: PowerDensity = PowerDensity::from_w_per_gb(0.075);
/// Optane background power, W per GB (DCPMM idle ~4 W / 128 GB DIMM).
pub const OPTANE_STATIC_W_PER_GB: PowerDensity = PowerDensity::from_w_per_gb(0.031);
/// CXL expander background power, W per GB (device + controller).
pub const CXL_STATIC_W_PER_GB: PowerDensity = PowerDensity::from_w_per_gb(0.040);
/// GPU board power while kernels execute (A100 under serving load).
pub const GPU_ACTIVE_W: f64 = 300.0;
/// GPU board power while idle/stalled on transfers.
pub const GPU_IDLE_W: f64 = 80.0;
/// Host CPU package power attributable to the serving process.
pub const CPU_HOST_W: f64 = 60.0;

/// The energy breakdown of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Joules spent moving bytes out of / into host memory.
    pub host_dynamic_j: f64,
    /// Joules of host-memory background power over the run.
    pub host_static_j: f64,
    /// Joules spent on the PCIe link.
    pub pcie_j: f64,
    /// Joules of GPU compute.
    pub gpu_dynamic_j: f64,
    /// Joules of GPU idle power while the pipeline stalls.
    pub gpu_idle_j: f64,
    /// Joules of host CPU package power.
    pub cpu_j: f64,
    /// Tokens generated.
    pub tokens: u64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total_j(&self) -> f64 {
        self.host_dynamic_j
            + self.host_static_j
            + self.pcie_j
            + self.gpu_dynamic_j
            + self.gpu_idle_j
            + self.cpu_j
    }

    /// Energy per generated token.
    pub fn j_per_token(&self) -> f64 {
        self.total_j() / self.tokens as f64
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} J ({:.2} J/token): host dyn {:.1} + static {:.1}, pcie {:.1}, gpu {:.1}+{:.1}, cpu {:.1}",
            self.total_j(),
            self.j_per_token(),
            self.host_dynamic_j,
            self.host_static_j,
            self.pcie_j,
            self.gpu_dynamic_j,
            self.gpu_idle_j,
            self.cpu_j,
        )
    }
}

/// Per-technology energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechEnergy {
    /// J/byte for reads.
    pub read_j_per_byte: f64,
    /// J/byte for writes.
    pub write_j_per_byte: f64,
    /// Background power density of the capacity.
    pub static_w_per_gb: PowerDensity,
}

/// Coefficients for a memory technology class.
pub fn tech_energy(tech: MemoryTechnology) -> TechEnergy {
    match tech {
        MemoryTechnology::Dram => TechEnergy {
            read_j_per_byte: DRAM_ACCESS_J_PER_BYTE,
            write_j_per_byte: DRAM_ACCESS_J_PER_BYTE,
            static_w_per_gb: DRAM_STATIC_W_PER_GB,
        },
        MemoryTechnology::Pcm => TechEnergy {
            read_j_per_byte: OPTANE_READ_J_PER_BYTE,
            write_j_per_byte: OPTANE_WRITE_J_PER_BYTE,
            static_w_per_gb: OPTANE_STATIC_W_PER_GB,
        },
        // Memory Mode: DRAM cache absorbs most traffic; media
        // energies blend toward DRAM on hits. Approximate with the
        // mean of the two on the dynamic side, both statics summed.
        MemoryTechnology::PcmCached => TechEnergy {
            read_j_per_byte: (DRAM_ACCESS_J_PER_BYTE + OPTANE_READ_J_PER_BYTE) / 2.0,
            write_j_per_byte: (DRAM_ACCESS_J_PER_BYTE + OPTANE_WRITE_J_PER_BYTE) / 2.0,
            static_w_per_gb: OPTANE_STATIC_W_PER_GB + DRAM_STATIC_W_PER_GB / 4.0,
        },
        MemoryTechnology::BlockStorage => TechEnergy {
            read_j_per_byte: STORAGE_ACCESS_J_PER_BYTE,
            write_j_per_byte: STORAGE_ACCESS_J_PER_BYTE,
            static_w_per_gb: OPTANE_STATIC_W_PER_GB,
        },
        MemoryTechnology::CxlExpander => TechEnergy {
            read_j_per_byte: CXL_ACCESS_J_PER_BYTE,
            write_j_per_byte: CXL_ACCESS_J_PER_BYTE,
            static_w_per_gb: CXL_STATIC_W_PER_GB,
        },
    }
}

/// Folds a serving run into an energy breakdown.
///
/// # Examples
///
/// ```
/// use helm_core::energy::assess;
/// use helm_core::{policy::Policy, server::Server, system::SystemConfig};
/// use hetmem::HostMemoryConfig;
/// use llm::ModelConfig;
/// use workload::WorkloadSpec;
///
/// let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
/// let model = ModelConfig::opt_175b();
/// let policy = Policy::paper_default(&model, system.memory().kind()).with_compression(true);
/// let server = Server::new(system, model, policy)?;
/// let report = server.run(&WorkloadSpec::paper_default())?;
/// let energy = assess(&report, server.system());
/// assert!(energy.j_per_token() > 0.0);
/// # Ok::<(), helm_core::HelmError>(())
/// ```
pub fn assess(report: &RunReport, system: &SystemConfig) -> EnergyReport {
    let cpu_dev = system.memory().cpu_device();
    let host = tech_energy(cpu_dev.technology());
    let h2d = report.total_h2d_bytes().as_f64();
    let d2h = report.total_d2h_bytes().as_f64();
    let wall = report.total_time.as_secs();
    let busy = report.total_compute_time().as_secs().min(wall);

    let mut host_dynamic_j = h2d * host.read_j_per_byte + d2h * host.write_j_per_byte;
    let mut host_static_w = host.static_w_per_gb.static_watts(cpu_dev.capacity());
    if let Some(disk) = system.memory().disk_device() {
        let dt = tech_energy(disk.technology());
        host_static_w += dt.static_w_per_gb.static_watts(disk.capacity());
        // Disk-tier traffic additionally crosses DRAM bounce buffers.
        host_dynamic_j += h2d * DRAM_ACCESS_J_PER_BYTE;
    }

    EnergyReport {
        host_dynamic_j,
        host_static_j: host_static_w * wall,
        pcie_j: (h2d + d2h) * PCIE_J_PER_BYTE,
        gpu_dynamic_j: busy * GPU_ACTIVE_W,
        gpu_idle_j: (wall - busy) * GPU_IDLE_W,
        cpu_j: wall * CPU_HOST_W,
        tokens: report.tokens_generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::policy::Policy;
    use crate::server::Server;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;
    use workload::WorkloadSpec;

    fn run(memory: HostMemoryConfig, placement: PlacementKind, batch: u32) -> EnergyReport {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(placement)
            .with_compression(true)
            .with_batch_size(batch);
        let server = Server::new(SystemConfig::paper_platform(memory), model, policy).unwrap();
        let report = server.run(&WorkloadSpec::paper_default()).unwrap();
        assess(&report, server.system())
    }

    #[test]
    fn components_are_positive_and_sum() {
        let e = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
        assert!(e.host_dynamic_j > 0.0);
        assert!(e.host_static_j > 0.0);
        assert!(e.pcie_j > 0.0);
        assert!(e.gpu_dynamic_j > 0.0);
        assert!(e.gpu_idle_j > 0.0);
        let total = e.total_j();
        assert!(total > e.host_static_j);
        assert!((e.j_per_token() - total / 21.0).abs() < 1e-9);
    }

    #[test]
    fn batching_slashes_energy_per_token() {
        let b1 = run(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 1);
        let b44 = run(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, 44);
        assert!(
            b44.j_per_token() < b1.j_per_token() / 3.0,
            "b1 {} vs b44 {}",
            b1.j_per_token(),
            b44.j_per_token()
        );
    }

    #[test]
    fn helm_beats_baseline_on_energy_too() {
        // Less wall-clock per token => less static+idle energy.
        let base = run(HostMemoryConfig::nvdram(), PlacementKind::Baseline, 1);
        let helm = run(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1);
        assert!(helm.j_per_token() < base.j_per_token());
    }

    #[test]
    fn optane_static_power_beats_dram_per_gb() {
        // The substitution argument's foundation.
        const {
            assert!(
                OPTANE_STATIC_W_PER_GB.as_w_per_gb() < DRAM_STATIC_W_PER_GB.as_w_per_gb() / 2.0
            );
        };
        let dram = tech_energy(MemoryTechnology::Dram);
        let pcm = tech_energy(MemoryTechnology::Pcm);
        assert!(pcm.static_w_per_gb < dram.static_w_per_gb);
        // ...while paying more per access.
        assert!(pcm.read_j_per_byte > dram.read_j_per_byte);
        assert!(pcm.write_j_per_byte > pcm.read_j_per_byte);
    }

    #[test]
    fn display_is_informative() {
        let e = run(HostMemoryConfig::nvdram(), PlacementKind::Helm, 1);
        let s = e.to_string();
        assert!(s.contains("J/token"));
    }
}
