//! Serving policies (FlexGen's `Policy`).
//!
//! A policy carries the user-requested weight distribution across
//! (storage, host, GPU), the placement algorithm interpreting it,
//! whether weights are 4-bit compressed, and the serving batch size.
//! The paper's evaluated distributions (§V-A):
//!
//! * SSD/FSDAX (OPT-175B): `(65, 15, 20)`
//! * NVDRAM/MemoryMode (OPT-175B): `(0, 80, 20)`
//! * OPT-30B (fits in host memory): `(0, 50, 50)`

use crate::placement::PlacementKind;
use hetmem::MemoryConfigKind;
use llm::weights::DType;
use llm::ModelConfig;

/// A percentage split over (disk, cpu, gpu), summing to 100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PercentDist {
    /// Storage-tier share.
    pub disk: f64,
    /// Host-memory share.
    pub cpu: f64,
    /// GPU share.
    pub gpu: f64,
}

impl PercentDist {
    /// A distribution; percentages must be non-negative and sum
    /// to 100 (within fp tolerance).
    ///
    /// # Panics
    ///
    /// Panics on negative shares or a sum away from 100.
    pub fn new(disk: f64, cpu: f64, gpu: f64) -> Self {
        assert!(disk >= 0.0 && cpu >= 0.0 && gpu >= 0.0, "negative share");
        assert!(
            ((disk + cpu + gpu) - 100.0).abs() < 1e-9,
            "shares must sum to 100: {disk}+{cpu}+{gpu}"
        );
        PercentDist { disk, cpu, gpu }
    }

    /// Fallible form of [`PercentDist::new`] for untrusted input
    /// (config files, CLI flags).
    ///
    /// # Errors
    ///
    /// [`crate::HelmError::InvalidDistribution`] on a NaN or negative
    /// share, or a sum away from 100.
    pub fn try_new(disk: f64, cpu: f64, gpu: f64) -> Result<Self, crate::HelmError> {
        let valid = [disk, cpu, gpu].iter().all(|p| p.is_finite() && *p >= 0.0)
            && ((disk + cpu + gpu) - 100.0).abs() < 1e-9;
        if valid {
            Ok(PercentDist { disk, cpu, gpu })
        } else {
            Err(crate::HelmError::InvalidDistribution {
                percents: [disk, cpu, gpu],
            })
        }
    }

    /// As the `(disk, cpu, gpu)` array FlexGen's allocator walks.
    pub fn as_array(&self) -> [f64; 3] {
        [self.disk, self.cpu, self.gpu]
    }
}

/// A complete serving policy.
///
/// # Examples
///
/// ```
/// use helm_core::policy::Policy;
/// use helm_core::placement::PlacementKind;
/// use hetmem::MemoryConfigKind;
/// use llm::ModelConfig;
///
/// let p = Policy::paper_default(&ModelConfig::opt_175b(), MemoryConfigKind::NvDram)
///     .with_compression(true)
///     .with_placement(PlacementKind::AllCpu)
///     .with_batch_size(44);
/// assert_eq!(p.batch_size(), 44);
/// assert!(p.compressed());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    dist: PercentDist,
    placement: PlacementKind,
    compress_weights: bool,
    batch_size: u32,
    num_gpu_batches: u32,
    kv_offload: bool,
}

impl Policy {
    /// The paper's default distribution for a model/memory pairing
    /// (baseline placement, uncompressed, batch 1).
    pub fn paper_default(model: &ModelConfig, memory: MemoryConfigKind) -> Self {
        let dist = if model.num_blocks() >= 96 {
            match memory {
                MemoryConfigKind::Ssd | MemoryConfigKind::FsDax => {
                    PercentDist::new(65.0, 15.0, 20.0)
                }
                _ => PercentDist::new(0.0, 80.0, 20.0),
            }
        } else {
            // OPT-30B-class: all weights host-resident. Fig 5a's
            // per-layer transfer magnitudes (~full 1.23 GB blocks at
            // PCIe rate) and the ~33% NVDRAM TTFT/TBT penalty both
            // indicate the host holds the full model.
            PercentDist::new(0.0, 100.0, 0.0)
        };
        Policy {
            dist,
            placement: PlacementKind::Baseline,
            compress_weights: false,
            batch_size: 1,
            num_gpu_batches: 1,
            kv_offload: false,
        }
    }

    /// A fully explicit policy.
    pub fn new(
        dist: PercentDist,
        placement: PlacementKind,
        compress_weights: bool,
        batch_size: u32,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Policy {
            dist,
            placement,
            compress_weights,
            batch_size,
            num_gpu_batches: 1,
            kv_offload: false,
        }
    }

    /// Replaces the distribution.
    pub fn with_dist(mut self, dist: PercentDist) -> Self {
        self.dist = dist;
        self
    }

    /// Selects the placement algorithm.
    pub fn with_placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// Enables/disables group-wise 4-bit weight compression.
    pub fn with_compression(mut self, compress: bool) -> Self {
        self.compress_weights = compress;
        self
    }

    /// Sets the serving batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch_size(mut self, batch: u32) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch_size = batch;
        self
    }

    /// Sets the number of micro-batches computed per weight load
    /// (FlexGen's zig-zag block schedule: the same layer weights serve
    /// `n` GPU batches before the next layer streams, amortizing
    /// transfers). The effective batch is
    /// `batch_size * num_gpu_batches`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_gpu_batches(mut self, n: u32) -> Self {
        assert!(n > 0, "num_gpu_batches must be positive");
        self.num_gpu_batches = n;
        self
    }

    /// Offloads the KV cache to host memory: GPU HBM holds only the
    /// live layers' cache, KV streams in with weights and new entries
    /// write back over PCIe. Trades (Optane-hostile, Fig 3b) write
    /// traffic for much larger feasible batches.
    pub fn with_kv_offload(mut self, offload: bool) -> Self {
        self.kv_offload = offload;
        self
    }

    /// The requested (disk, cpu, gpu) distribution.
    pub fn dist(&self) -> PercentDist {
        self.dist
    }

    /// The placement algorithm.
    pub fn placement(&self) -> PlacementKind {
        self.placement
    }

    /// Whether weights are stored 4-bit compressed.
    pub fn compressed(&self) -> bool {
        self.compress_weights
    }

    /// The weight storage dtype implied by the compression flag.
    pub fn weight_dtype(&self) -> DType {
        if self.compress_weights {
            DType::Int4Grouped
        } else {
            DType::F16
        }
    }

    /// The serving batch size (per micro-batch).
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Micro-batches computed per weight load.
    pub fn num_gpu_batches(&self) -> u32 {
        self.num_gpu_batches
    }

    /// Sequences served per pipeline pass.
    pub fn effective_batch(&self) -> u32 {
        self.batch_size * self.num_gpu_batches
    }

    /// Whether the KV cache lives on the host tier.
    pub fn kv_offload(&self) -> bool {
        self.kv_offload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let m175 = ModelConfig::opt_175b();
        let ssd = Policy::paper_default(&m175, MemoryConfigKind::Ssd);
        assert_eq!(ssd.dist().as_array(), [65.0, 15.0, 20.0]);
        let nv = Policy::paper_default(&m175, MemoryConfigKind::NvDram);
        assert_eq!(nv.dist().as_array(), [0.0, 80.0, 20.0]);
        let m30 = ModelConfig::opt_30b();
        let dram = Policy::paper_default(&m30, MemoryConfigKind::Dram);
        assert_eq!(dram.dist().as_array(), [0.0, 100.0, 0.0]);
    }

    #[test]
    fn builders_compose() {
        let p = Policy::paper_default(&ModelConfig::opt_175b(), MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_batch_size(8)
            .with_placement(PlacementKind::Helm);
        assert_eq!(p.weight_dtype(), DType::Int4Grouped);
        assert_eq!(p.batch_size(), 8);
        assert_eq!(p.placement(), PlacementKind::Helm);
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_distribution_rejected() {
        let _ = PercentDist::new(50.0, 10.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = Policy::paper_default(&ModelConfig::opt_30b(), MemoryConfigKind::Dram)
            .with_batch_size(0);
    }
}
