//! Serving errors.

use simcore::units::{ByteSize, UnitError};
use simcore::SimError;
use std::fmt;

/// Errors raised while configuring or running a serving session.
#[derive(Debug, Clone, PartialEq)]
pub enum HelmError {
    /// A weight placement does not fit the targeted tier.
    CapacityExceeded {
        /// Tier name ("gpu", "cpu", "disk").
        tier: &'static str,
        /// Bytes the placement needs there.
        requested: ByteSize,
        /// Tier capacity.
        capacity: ByteSize,
    },
    /// The requested batch does not fit GPU memory alongside the
    /// placement.
    BatchTooLarge {
        /// Requested batch size.
        requested: u32,
        /// Largest batch that fits.
        max_batch: u32,
    },
    /// A policy placed weights on a storage tier the memory
    /// configuration does not provide.
    NoDiskTier,
    /// Percentages in a policy distribution do not sum to 100.
    InvalidDistribution {
        /// The offending (disk, cpu, gpu) percentages.
        percents: [f64; 3],
    },
    /// A quantity (bytes, bandwidth, time) was NaN or negative.
    InvalidUnit(UnitError),
    /// An executor needed a memory tier the platform does not
    /// provide (e.g. a disk transfer on a diskless configuration).
    TierUnavailable {
        /// Tier name ("gpu", "cpu", "disk").
        tier: &'static str,
    },
    /// The discrete-event executor recorded a structural fault
    /// (scheduling into the past, a queue-order violation, an
    /// unregistered span).
    Simulation(SimError),
    /// A run or plan was asked for with degenerate inputs (an empty
    /// pipeline mix, a zero-request calibration probe) that admit no
    /// meaningful report.
    InvalidConfig(&'static str),
}

impl From<UnitError> for HelmError {
    fn from(e: UnitError) -> Self {
        HelmError::InvalidUnit(e)
    }
}

impl From<SimError> for HelmError {
    fn from(e: SimError) -> Self {
        HelmError::Simulation(e)
    }
}

impl fmt::Display for HelmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HelmError::CapacityExceeded {
                tier,
                requested,
                capacity,
            } => write!(
                f,
                "placement needs {requested} on the {tier} tier but only {capacity} exists"
            ),
            HelmError::BatchTooLarge {
                requested,
                max_batch,
            } => write!(
                f,
                "batch size {requested} exceeds the maximum of {max_batch} that fits GPU memory"
            ),
            HelmError::NoDiskTier => {
                write!(
                    f,
                    "policy places weights on disk but no storage tier is configured"
                )
            }
            HelmError::InvalidDistribution { percents } => write!(
                f,
                "distribution ({}, {}, {}) does not sum to 100",
                percents[0], percents[1], percents[2]
            ),
            HelmError::InvalidUnit(e) => write!(f, "invalid unit value: {e}"),
            HelmError::TierUnavailable { tier } => {
                write!(f, "the {tier} tier is not available on this platform")
            }
            HelmError::Simulation(e) => write!(f, "simulation fault: {e}"),
            HelmError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for HelmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HelmError::InvalidUnit(e) => Some(e),
            HelmError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = HelmError::CapacityExceeded {
            tier: "cpu",
            requested: ByteSize::from_gb(300.0),
            capacity: ByteSize::from_gb(256.0),
        };
        let msg = e.to_string();
        assert!(msg.contains("cpu") && msg.contains("300"));
        assert!(HelmError::NoDiskTier.to_string().contains("disk"));
        let b = HelmError::BatchTooLarge {
            requested: 64,
            max_batch: 44,
        };
        assert!(b.to_string().contains("44"));
        let t = HelmError::TierUnavailable { tier: "disk" };
        assert!(t.to_string().contains("disk"));
    }

    #[test]
    fn unit_errors_convert_and_chain() {
        let u = UnitError::InvalidBandwidth(-1.0);
        let e = HelmError::from(u);
        assert_eq!(e, HelmError::InvalidUnit(u));
        assert!(e.to_string().contains("invalid"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&HelmError::NoDiskTier).is_none());
    }
}
