//! Serving errors.

use simcore::units::ByteSize;
use std::fmt;

/// Errors raised while configuring or running a serving session.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A weight placement does not fit the targeted tier.
    CapacityExceeded {
        /// Tier name ("gpu", "cpu", "disk").
        tier: &'static str,
        /// Bytes the placement needs there.
        requested: ByteSize,
        /// Tier capacity.
        capacity: ByteSize,
    },
    /// The requested batch does not fit GPU memory alongside the
    /// placement.
    BatchTooLarge {
        /// Requested batch size.
        requested: u32,
        /// Largest batch that fits.
        max_batch: u32,
    },
    /// A policy placed weights on a storage tier the memory
    /// configuration does not provide.
    NoDiskTier,
    /// Percentages in a policy distribution do not sum to 100.
    InvalidDistribution {
        /// The offending (disk, cpu, gpu) percentages.
        percents: [f64; 3],
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::CapacityExceeded {
                tier,
                requested,
                capacity,
            } => write!(
                f,
                "placement needs {requested} on the {tier} tier but only {capacity} exists"
            ),
            ServeError::BatchTooLarge {
                requested,
                max_batch,
            } => write!(
                f,
                "batch size {requested} exceeds the maximum of {max_batch} that fits GPU memory"
            ),
            ServeError::NoDiskTier => {
                write!(f, "policy places weights on disk but no storage tier is configured")
            }
            ServeError::InvalidDistribution { percents } => write!(
                f,
                "distribution ({}, {}, {}) does not sum to 100",
                percents[0], percents[1], percents[2]
            ),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ServeError::CapacityExceeded {
            tier: "cpu",
            requested: ByteSize::from_gb(300.0),
            capacity: ByteSize::from_gb(256.0),
        };
        let msg = e.to_string();
        assert!(msg.contains("cpu") && msg.contains("300"));
        assert!(ServeError::NoDiskTier.to_string().contains("disk"));
        let b = ServeError::BatchTooLarge {
            requested: 64,
            max_batch: 44,
        };
        assert!(b.to_string().contains("44"));
    }
}
