//! The parallel, pruned, multi-resolution search driver.
//!
//! # Search order: screen, sort, evaluate, mass-prune
//!
//! Each resolution level runs in two passes. A cheap *screen* pass
//! rejects infeasible candidates on the placement template's byte
//! totals (no per-layer placement is materialized for them), builds
//! the placement for the survivors, and computes each survivor's
//! analytical objective-space bound ([`super::prune`]) —
//! without touching the pipeline executor and without building the
//! candidate's cost table (the bound reads the same per-layer cost
//! functions the table would cache, so pruned candidates never pay
//! for a table at all). Candidates are then sorted best-bound-first
//! and costed in chunks. Because the schedule is bound-sorted and an
//! incumbent's objective only ever improves, the first pruned
//! candidate proves every candidate after it in the schedule is
//! dominated too — the whole tail is pruned in one step without being
//! touched. The expensive table build + pipeline run therefore happen
//! only for the bound-ordered prefix that might actually win.
//!
//! # Determinism
//!
//! The winner must be bit-identical to a serial sweep whatever the
//! thread count. Three mechanisms guarantee it:
//!
//! 1. the candidate schedule is fixed before parallel evaluation
//!    begins: the screen pass is a pure function of each candidate,
//!    and the sort key (bound, mha, ffn) is a total order, so the
//!    ranked schedule and its fixed-size chunk boundaries depend only
//!    on the evaluation history, never on the thread count;
//! 2. each chunk's candidates are evaluated against a pruning
//!    threshold *frozen at chunk launch*, so every per-candidate
//!    outcome is a pure function of (candidate, threshold) — and the
//!    vendored rayon's `collect` returns outcomes in input order;
//! 3. the reduction over a chunk's outcomes is serial and in order,
//!    applying the same strict-improvement rule as the serial sweep.
//!
//! Because per-candidate outcomes are pure in (candidate, threshold),
//! a level may also run entirely without the thread pool: when a
//! level has fewer candidates than `threads × CHUNK`, fan-out costs
//! more than it buys (the zoom levels are four probes each), so the
//! driver evaluates the same chunks with the same frozen thresholds
//! inline on the calling thread. The winner is bit-identical by
//! construction — only wall-clock changes.
//!
//! Pruning is winner-preserving: a candidate is pruned only when its
//! lower bound says it cannot *strictly* beat an incumbent that came
//! earlier in schedule order, and the strict-improvement rule would
//! have kept that earlier incumbent on a tie anyway.
//!
//! # Multi-resolution schedule
//!
//! A coarse 10%-step sweep of the full `(mha, ffn)` square is
//! followed by pattern descent around the incumbent: at each step
//! size in [`ZOOM_STEPS`] (5%, 2%, then 1%) the four axis neighbors
//! are probed and the search re-centers for as long as one improves.
//! The descent reaches the 1% lattice in a handful of probes instead
//! of the 10201 candidates a full fine grid would cost, and spends
//! extra evaluations only when they actually move the incumbent.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
// lint: allow(wall-clock-in-sim): SearchStats.wall_ms reports real search cost, never simulated time
use std::time::Instant;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::error::HelmError;
use crate::exec::{run_pipeline_with, LayerCostTable, PipelineInputs, RecordMode};
use crate::metrics::RunReport;
use crate::placement::{CustomPlacementTemplate, ModelPlacement, Tier};
use crate::policy::Policy;
use crate::system::SystemConfig;
use gpusim::{MemoryBudget, ResidentCosts};
use llm::ModelConfig;
use simcore::time::SimDuration;
use simcore::units::ByteSize;
use workload::WorkloadSpec;

use super::frontier::{Frontier, FrontierPoint};
use super::prune::{bound_dominated, BoundContext};
use super::{AutoPlacement, Objective};

/// Coarse sweep step, in half-percent lattice units (10%).
const COARSE_STEP: u32 = 20;
/// Pattern-descent step sizes in half-percent units (5%, 2%, 1%),
/// coarse to fine. [`zoom_steps`] appends the half-percent step when
/// a [`SearchSpace`] asks for the finer lattice.
const ZOOM_STEPS: [u32; 3] = [10, 4, 2];
/// Upper bound of the GPU-share axis in half-percent units (100%).
const AXIS_MAX: u32 = 200;
/// Candidates per parallel chunk. Fixed (not thread-derived) so chunk
/// boundaries — and therefore pruning thresholds — are identical
/// whatever the thread count.
const CHUNK: usize = 8;
/// Chunk size while no incumbent exists yet. Smaller, so a (likely
/// near-optimal, thanks to the bound-sorted schedule) incumbent is
/// established after a handful of evaluations and pruning can start.
const FIRST_CHUNK: usize = 4;

/// Resource knobs for one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    /// Worker threads for candidate evaluation; 0 means auto
    /// (`RAYON_NUM_THREADS` or the machine's available parallelism).
    pub threads: usize,
    /// Cap on pipeline evaluations; 0 means unlimited. When the cap
    /// truncates the search, the best candidate found so far wins
    /// (pruned and infeasible candidates are free and don't count).
    pub max_evals: usize,
}

/// How much work one search did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchStats {
    /// Candidates costed with a full pipeline run.
    pub evaluated: usize,
    /// Candidates skipped by the analytical lower bound.
    pub pruned: usize,
    /// Wall-clock time of the whole search (milliseconds).
    pub wall_ms: f64,
}

/// The candidate lattice one placement search walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Finest pattern-descent step, in half-percent units: `2` (the
    /// default) stops the descent on the 1% lattice, `1` continues to
    /// the 0.5% lattice the coarse grid could never afford to
    /// enumerate (201×201 points).
    pub fine_step_half_pct: u32,
    /// Batch sizes searched jointly with the placement shares. Empty
    /// (the default) keeps the objective's own batch rule — the
    /// policy batch for latency, the residency-derived maximum for
    /// throughput. Non-empty expands every feasible `(mha, ffn)`
    /// point into one candidate per listed batch that fits GPU memory
    /// alongside it, making the search a joint `{placement × batch}`
    /// optimization.
    pub batches: Vec<u32>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            fine_step_half_pct: 2,
            batches: Vec::new(),
        }
    }
}

/// The descent schedule down to `fine` (half-percent units): the
/// standard 5% → 2% → 1% ladder, extended to 0.5% when asked.
fn zoom_steps(fine: u32) -> Vec<u32> {
    let mut steps: Vec<u32> = ZOOM_STEPS.iter().copied().filter(|&s| s >= fine).collect();
    if steps.last() != Some(&fine.max(1)) {
        steps.push(fine.max(1));
    }
    steps
}

/// A feasible candidate after the cheap screening pass: its placement,
/// the batch the objective assigns it, and its objective-space bound
/// (`None` when no sound bound exists — those sort first and are
/// always costed). No cost table yet: screening's bound reads the
/// per-layer cost functions directly, and only candidates that reach
/// a pipeline run pay for a table build.
struct Screened {
    mha: u32,
    ffn: u32,
    batch: u32,
    placement: ModelPlacement,
    bound: Option<f64>,
}

/// One costed candidate, kept boxed because a `RunReport` dwarfs the
/// other `Outcome` variants. Keeps the cost table its evaluation
/// built so the winner's full-record re-cost reuses it.
struct Evaluation {
    mha: u32,
    ffn: u32,
    batch: u32,
    placement: ModelPlacement,
    table: LayerCostTable,
    report: RunReport,
}

/// What happened to one candidate.
enum Outcome {
    Evaluated(Box<Evaluation>),
    Pruned(u32, u32),
    Failed(HelmError),
}

/// Mutable search state threaded through the per-level driver.
struct SearchState {
    stats: SearchStats,
    frontier: Frontier,
    best: Option<Box<Evaluation>>,
    seen: BTreeSet<(u32, u32)>,
}

/// One placement search: the hoisted workload-invariant state plus
/// the candidate schedule driver.
pub(super) struct SearchEngine<'a> {
    system: &'a SystemConfig,
    model: &'a ModelConfig,
    policy: &'a Policy,
    workload: &'a WorkloadSpec,
    objective: Objective,
    budget: SearchBudget,
    space: SearchSpace,
    // Candidate-invariant pieces, computed once per search instead of
    // once per grid point.
    mem_budget: MemoryBudget,
    kv_per_sequence: ByteSize,
    hidden_per_sequence: ByteSize,
    host_capacity: ByteSize,
    bounds: BoundContext,
    /// Hoisted layer sequence + spec classes: per-candidate placement
    /// work is one allocation per class, and infeasible candidates
    /// are rejected on byte totals without building a placement.
    template: CustomPlacementTemplate,
    /// Per-batch memo of the micro-scaled, sorted token-1 decode
    /// computes feeding the bound. Placement-invariant, so every
    /// candidate at the same batch shares one vector: the latency
    /// objective computes it exactly once per search, the throughput
    /// objective once per distinct `max_batch`. Shared across the
    /// pool's workers; the lock guards a tiny map, and a racing
    /// double-compute is harmless (both sides produce the same
    /// vector).
    decode_computes: Mutex<BTreeMap<u32, Arc<Vec<SimDuration>>>>,
}

impl<'a> SearchEngine<'a> {
    pub(super) fn new(
        system: &'a SystemConfig,
        model: &'a ModelConfig,
        policy: &'a Policy,
        workload: &'a WorkloadSpec,
        objective: Objective,
        budget: SearchBudget,
        space: SearchSpace,
    ) -> Self {
        SearchEngine {
            system,
            model,
            policy,
            workload,
            objective,
            budget,
            space,
            mem_budget: MemoryBudget::for_gpu(system.gpu()),
            kv_per_sequence: llm::kv::kv_bytes_per_sequence(model, workload.context_len()),
            hidden_per_sequence: llm::kv::hidden_bytes_per_sequence(model, workload.context_len()),
            host_capacity: system.tier_capacity(Tier::Cpu),
            bounds: BoundContext::new(system, model, workload),
            template: CustomPlacementTemplate::new(model, policy.compressed()),
            decode_computes: Mutex::new(BTreeMap::new()),
        }
    }

    /// The memoized sorted decode-compute vector for `batch` (see the
    /// field doc). Computes outside the lock on a miss so workers
    /// never serialize on the kernel-model walk.
    fn decode_computes_for(&self, inp: &PipelineInputs<'_>, batch: u32) -> Arc<Vec<SimDuration>> {
        let cached = self
            .decode_computes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&batch)
            .cloned();
        if let Some(computes) = cached {
            return computes;
        }
        let computes = Arc::new(BoundContext::sorted_decode_computes(inp));
        self.decode_computes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(batch)
            .or_insert_with(|| computes.clone())
            .clone()
    }

    pub(super) fn run(self) -> Result<AutoPlacement, HelmError> {
        let started = Instant::now(); // lint: allow(wall-clock-in-sim): feeds SearchStats.wall_ms run metadata only
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.budget.threads)
            .build()
            .unwrap_or_else(|_| unreachable!("vendored rayon pool build is infallible"));

        let mut state = SearchState {
            stats: SearchStats::default(),
            frontier: Frontier::new(),
            best: None,
            seen: BTreeSet::new(),
        };

        let mut budget_left = self.run_level(&pool, &coarse_grid(), &mut state)?;
        for step in zoom_steps(self.space.fine_step_half_pct) {
            while budget_left {
                let Some(center) = state.best.as_ref().map(|b| (b.mha, b.ffn)) else {
                    break;
                };
                budget_left = self.run_level(&pool, &plus_neighbors(center, step), &mut state)?;
                let moved = state.best.as_ref().map(|b| (b.mha, b.ffn)) != Some(center);
                if !moved {
                    break;
                }
            }
        }

        let winner = state.best.ok_or_else(|| self.no_feasible_candidate())?;
        // Candidates were costed in aggregate mode; re-cost the winner
        // once with full step records so the returned report supports
        // timelines/CSV, reusing the table its evaluation built.
        // Aggregates are bit-identical between modes (the equivalence
        // property the test suite pins down), so this cannot change
        // the winner. Not counted in `stats.evaluated`.
        let winner_policy = self.policy.clone().with_batch_size(winner.batch);
        let report = run_pipeline_with(
            &PipelineInputs {
                system: self.system,
                model: self.model,
                policy: &winner_policy,
                placement: &winner.placement,
                workload: self.workload,
            },
            &winner.table,
            RecordMode::Full,
        )?;
        state.stats.wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        Ok(AutoPlacement {
            mha_gpu_percent: f64::from(winner.mha) / 2.0,
            ffn_gpu_percent: f64::from(winner.ffn) / 2.0,
            batch: winner.batch,
            placement: winner.placement,
            report,
            stats: state.stats,
            frontier: state.frontier,
        })
    }

    /// Screens, ranks, and evaluates one level's candidates. Returns
    /// `Ok(false)` when the `max_evals` budget ran out (the caller
    /// must stop scheduling further levels).
    fn run_level(
        &self,
        pool: &rayon::ThreadPool,
        schedule: &[(u32, u32)],
        state: &mut SearchState,
    ) -> Result<bool, HelmError> {
        let pending: Vec<(u32, u32)> = schedule
            .iter()
            .copied()
            .filter(|c| state.seen.insert(*c))
            .collect();
        // Adaptive serial fallback: a level smaller than one chunk per
        // worker can't keep the pool busy, and fan-out overhead beats
        // the work (the zoom levels are four probes each). Workers are
        // clamped to the machine's parallelism first — a requested
        // thread count the hardware can't run concurrently is pure
        // spawn overhead. Outcomes are pure in (candidate, threshold)
        // and reduced in input order either way, so the winner is
        // bit-identical.
        let workers = pool
            .current_num_threads()
            .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
        let serial = workers <= 1 || pending.len() < workers * CHUNK;
        let screened: Vec<Vec<Screened>> = if serial {
            pending.iter().map(|&c| self.screen(c)).collect()
        } else {
            pool.install(|| pending.par_iter().map(|&c| self.screen(c)).collect())
        };
        let mut ranked: Vec<Screened> = screened.into_iter().flatten().collect();
        ranked.sort_by(|a, b| self.promise_order(a, b));
        let mut cursor = 0usize;
        while cursor < ranked.len() {
            let cap = if self.budget.max_evals > 0 {
                self.budget.max_evals.saturating_sub(state.stats.evaluated)
            } else {
                usize::MAX
            };
            if cap == 0 {
                return Ok(false);
            }
            let chunk_size = if state.best.is_none() {
                FIRST_CHUNK
            } else {
                CHUNK
            };
            let take = chunk_size.min(cap).min(ranked.len() - cursor);
            let chunk = &ranked[cursor..cursor + take];
            cursor += take;
            let threshold = state.best.as_ref().map(|b| self.objective_value(&b.report));
            let outcomes: Vec<Outcome> = if serial {
                chunk.iter().map(|s| self.evaluate(s, threshold)).collect()
            } else {
                pool.install(|| {
                    chunk
                        .par_iter()
                        .map(|s| self.evaluate(s, threshold))
                        .collect()
                })
            };
            let mut chunk_pruned = false;
            for outcome in outcomes {
                match outcome {
                    Outcome::Evaluated(eval) => {
                        state.stats.evaluated += 1;
                        state.frontier.record(FrontierPoint {
                            mha_gpu_percent: f64::from(eval.mha) / 2.0,
                            ffn_gpu_percent: f64::from(eval.ffn) / 2.0,
                            batch: eval.batch,
                            tbt_ms: eval.report.tbt_ms(),
                            throughput_tps: eval.report.throughput_tps(),
                        });
                        let improved = match &state.best {
                            None => true,
                            Some(b) => self.is_better(&eval.report, &b.report),
                        };
                        if improved {
                            state.best = Some(eval);
                        }
                    }
                    Outcome::Pruned(mha, ffn) => {
                        chunk_pruned = true;
                        state.stats.pruned += 1;
                        state
                            .frontier
                            .record_pruned(f64::from(mha) / 2.0, f64::from(ffn) / 2.0);
                    }
                    Outcome::Failed(e) => return Err(e),
                }
            }
            if chunk_pruned {
                // The schedule is bound-sorted and the frozen
                // threshold only ever tightens, so every candidate
                // after a pruned one is dominated by the same
                // threshold that pruned it: prune the whole tail
                // without touching it.
                for s in &ranked[cursor..] {
                    state.stats.pruned += 1;
                    state
                        .frontier
                        .record_pruned(f64::from(s.mha) / 2.0, f64::from(s.ffn) / 2.0);
                }
                break;
            }
        }
        Ok(true)
    }

    /// The cheap feasibility-and-bound pass for one `(mha, ffn)`
    /// lattice point (half-percent units): checks feasibility on the
    /// template's byte totals, picks the candidate batches, and
    /// computes each analytical bound — no pipeline run. The
    /// placement itself is materialized only for points that pass the
    /// host-memory check (on the coarse grid, more than half fail).
    /// An empty result means infeasible. With a joint batch space
    /// ([`SearchSpace::batches`]) one point expands into one
    /// candidate per listed batch that fits GPU memory alongside it.
    /// Pure in the candidate, so it can run on any worker.
    fn screen(&self, (mha, ffn): (u32, u32)) -> Vec<Screened> {
        let share = |half: u32| {
            let pct = f64::from(half) / 2.0;
            [pct, 100.0 - pct, 0.0]
        };
        let mha_pct = share(mha);
        let ffn_pct = share(ffn);
        let other_pct = [0.0, 100.0, 0.0];
        // Byte totals alone decide both feasibility checks, and the
        // template's totals are exactly the built placement's totals
        // (a pinned invariant), so rejected candidates never pay for
        // per-layer placement materialization.
        let totals = self.template.totals(mha_pct, ffn_pct, other_pct);
        if totals.cpu > self.host_capacity {
            return Vec::new();
        }
        let costs = ResidentCosts {
            weights: totals.gpu,
            staging: totals.staging,
            kv_per_sequence: self.kv_per_sequence,
            hidden_per_sequence: self.hidden_per_sequence,
        };
        let batches: Vec<u32> = if self.space.batches.is_empty() {
            match self.objective {
                Objective::Latency => {
                    if !self.mem_budget.fits(&costs, self.policy.effective_batch()) {
                        return Vec::new();
                    }
                    vec![self.policy.batch_size()]
                }
                Objective::Throughput => {
                    let max = self.mem_budget.max_batch(&costs);
                    if max == 0 {
                        return Vec::new();
                    }
                    vec![max]
                }
            }
        } else {
            self.space
                .batches
                .iter()
                .copied()
                .filter(|&b| b >= 1 && self.mem_budget.fits(&costs, b))
                .collect()
        };
        if batches.is_empty() {
            return Vec::new();
        }
        let placement = self.template.build(mha_pct, ffn_pct, other_pct);
        batches
            .into_iter()
            .map(|batch| {
                let candidate_policy = self.policy.clone().with_batch_size(batch);
                let inputs = PipelineInputs {
                    system: self.system,
                    model: self.model,
                    policy: &candidate_policy,
                    placement: &placement,
                    workload: self.workload,
                };
                // The bound reads the same per-layer cost functions a
                // table build would cache, so no table is built here —
                // pruned candidates never pay for one.
                let computes = self.decode_computes_for(&inputs, batch);
                let bound = self
                    .bounds
                    .objective_bound(self.objective, &inputs, &computes);
                Screened {
                    mha,
                    ffn,
                    batch,
                    placement: placement.clone(),
                    bound,
                }
            })
            .collect()
    }

    /// Best-bound-first total order: unbounded candidates (which must
    /// always be costed) come first, then ascending TBT floor /
    /// descending tokens-per-second ceiling, with `(mha, ffn, batch)`
    /// as the deterministic tie-break.
    fn promise_order(&self, a: &Screened, b: &Screened) -> Ordering {
        let key = |s: &Screened| (s.mha, s.ffn, s.batch);
        match (a.bound, b.bound) {
            (None, None) => key(a).cmp(&key(b)),
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(x), Some(y)) => {
                let by_bound = match self.objective {
                    Objective::Latency => x.total_cmp(&y),
                    Objective::Throughput => y.total_cmp(&x),
                };
                by_bound.then_with(|| key(a).cmp(&key(b)))
            }
        }
    }

    /// Costs one screened candidate. Pure in `(candidate, threshold)`,
    /// so it can run on any worker without affecting the result.
    fn evaluate(&self, screened: &Screened, threshold: Option<f64>) -> Outcome {
        if let (Some(bound), Some(best)) = (screened.bound, threshold) {
            if bound_dominated(self.objective, bound, best) {
                return Outcome::Pruned(screened.mha, screened.ffn);
            }
        }
        let candidate_policy = self.policy.clone().with_batch_size(screened.batch);
        let inputs = PipelineInputs {
            system: self.system,
            model: self.model,
            policy: &candidate_policy,
            placement: &screened.placement,
            workload: self.workload,
        };
        // Only here — past the bound check — does the candidate pay
        // for its cost table. Aggregate mode: the search only compares
        // TBT / throughput, so no candidate pays for per-step record
        // materialization.
        let result = LayerCostTable::build(&inputs).and_then(|table| {
            run_pipeline_with(&inputs, &table, RecordMode::Aggregate).map(|report| (table, report))
        });
        match result {
            Ok((table, report)) => Outcome::Evaluated(Box::new(Evaluation {
                mha: screened.mha,
                ffn: screened.ffn,
                batch: screened.batch,
                placement: screened.placement.clone(),
                table,
                report,
            })),
            Err(e) => Outcome::Failed(e),
        }
    }

    fn objective_value(&self, report: &RunReport) -> f64 {
        match self.objective {
            Objective::Latency => report.tbt_ms(),
            Objective::Throughput => report.throughput_tps(),
        }
    }

    fn is_better(&self, new: &RunReport, current: &RunReport) -> bool {
        match self.objective {
            Objective::Latency => new.tbt_ms() < current.tbt_ms(),
            Objective::Throughput => new.throughput_tps() > current.throughput_tps(),
        }
    }

    fn no_feasible_candidate(&self) -> HelmError {
        HelmError::CapacityExceeded {
            tier: "cpu",
            requested: ModelPlacement::compute_custom(
                self.model,
                self.policy.compressed(),
                [0.0, 100.0, 0.0],
                [0.0, 100.0, 0.0],
                [0.0, 100.0, 0.0],
            )
            .total_on(Tier::Cpu),
            capacity: self.host_capacity,
        }
    }
}

/// The full coarse grid, row-major: every `(mha, ffn)` multiple of
/// [`COARSE_STEP`] in `[0, AXIS_MAX]` half-percent units.
fn coarse_grid() -> Vec<(u32, u32)> {
    let axis: Vec<u32> = (0..=AXIS_MAX).step_by(COARSE_STEP as usize).collect();
    let mut grid = Vec::with_capacity(axis.len() * axis.len());
    for &mha in &axis {
        for &ffn in &axis {
            grid.push((mha, ffn));
        }
    }
    grid
}

/// The four axis neighbors of `center` at distance `step`, clamped to
/// `[0, AXIS_MAX]`. Neighbors that clamp onto `center` itself are
/// dropped.
fn plus_neighbors((mha, ffn): (u32, u32), step: u32) -> Vec<(u32, u32)> {
    let shift = |v: u32, delta: i64| {
        let moved = (i64::from(v) + delta).clamp(0, i64::from(AXIS_MAX));
        u32::try_from(moved).unwrap_or(0)
    };
    let candidates = [
        (shift(mha, -i64::from(step)), ffn),
        (shift(mha, i64::from(step)), ffn),
        (mha, shift(ffn, -i64::from(step))),
        (mha, shift(ffn, i64::from(step))),
    ];
    candidates
        .into_iter()
        .filter(|&c| c != (mha, ffn))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_grid_is_the_11x11_lattice() {
        let grid = coarse_grid();
        assert_eq!(grid.len(), 121);
        assert_eq!(grid[0], (0, 0));
        assert_eq!(grid[120], (AXIS_MAX, AXIS_MAX));
        assert!(grid
            .iter()
            .all(|&(m, f)| m % COARSE_STEP == 0 && f % COARSE_STEP == 0));
    }

    #[test]
    fn plus_neighbors_probe_all_four_directions() {
        assert_eq!(
            plus_neighbors((100, 120), 10),
            vec![(90, 120), (110, 120), (100, 110), (100, 130)]
        );
        assert_eq!(
            plus_neighbors((20, 60), 2),
            vec![(18, 60), (22, 60), (20, 58), (20, 62)]
        );
    }

    #[test]
    fn plus_neighbors_clamp_and_drop_degenerates() {
        // Clamping at the square's corner folds two probes onto the
        // center; they must be dropped, not re-evaluated.
        assert_eq!(plus_neighbors((0, 0), 10), vec![(10, 0), (0, 10)]);
        assert_eq!(
            plus_neighbors((AXIS_MAX, AXIS_MAX), 4),
            vec![(AXIS_MAX - 4, AXIS_MAX), (AXIS_MAX, AXIS_MAX - 4)]
        );
        // One step from the edge, clamping still yields a real probe.
        assert_eq!(
            plus_neighbors((2, 100), 4),
            vec![(0, 100), (6, 100), (2, 96), (2, 104)]
        );
    }

    #[test]
    fn descent_steps_reach_the_fine_lattice() {
        // The default descent stops on the 1% lattice (2 half-units);
        // a 0.5% space appends the final half-unit step. A stalled
        // descent costs 4 probes per step.
        assert_eq!(zoom_steps(2), vec![10, 4, 2]);
        assert_eq!(zoom_steps(1), vec![10, 4, 2, 1]);
        assert_eq!(zoom_steps(4), vec![10, 4]);
        let stalled_probes = zoom_steps(1).len() * 4;
        assert!(121 + stalled_probes < 40401 / 50);
    }
}
