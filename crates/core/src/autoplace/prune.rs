//! Analytical lower bounds that let the search skip hopeless
//! candidates without paying for a pipeline run.
//!
//! Every zig-zag step costs `max(compute, load, writeback) +
//! SYNC_OVERHEAD` ([`crate::exec::run_pipeline`]), so one decode
//! token over all `L` layers costs
//!
//! ```text
//! Σ_j max( compute_j(Decode, token=1) * micro, load_π(j) ) + L * SYNC_OVERHEAD
//! ```
//!
//! for *some* assignment `π` of layer loads to steps: a decode token's
//! steps issue every layer's load except (on the run's final token
//! only) the skipped last prefetch. The floor replaces the largest
//! load with zero (over-covering that skip) and takes the minimum over
//! all possible assignments, which an exchange argument shows is the
//! similarly-sorted pairing: sort computes and loads ascending and sum
//! `max(c↑_j, l↑_j)`. That is sound whatever order the executor
//! actually interleaves loads in, and far tighter than the classic
//! `max(Σ compute, Σ load)` relaxation it supersedes. Per-layer loads
//! come from the executor's own [`load_time`] model (a per-layer sum,
//! ~20x cheaper than the full token × layer pipeline); a coarser
//! bytes-over-theoretical-link floor is kept alongside because it
//! needs no per-tier modeling. Decode compute is monotone in the token
//! index, so token 1 is the cheapest decode step. KV streaming and
//! write-back only add time, so ignoring them keeps the bound a lower
//! bound. TBT is a mean of per-token times, each of which respects the
//! floor; throughput divides a fixed token count by at least `gen_len`
//! floors.
//!
//! The bound reads only each layer's [`load_time`] and its token-1
//! decode [`compute_time`] — the exact scalars `LayerCostTable::build`
//! would cache — so screening computes it directly from the free
//! functions and never pays for the full table (prefill costs, DES
//! flows, write-back modeling). Only candidates that survive to a
//! pipeline run build a table.

use crate::exec::{compute_time, load_time, PipelineInputs, SYNC_OVERHEAD};
use crate::metrics::Stage;
use crate::placement::Tier;
use crate::system::SystemConfig;
use llm::ModelConfig;
use simcore::time::SimDuration;
use simcore::units::Bandwidth;
use workload::WorkloadSpec;

use super::Objective;

/// Workload- and platform-invariant inputs to the candidate bounds,
/// computed once per search.
#[derive(Debug, Clone, Copy)]
pub(super) struct BoundContext {
    /// The PCIe link's theoretical rate — an upper bound on any
    /// achievable H2D bandwidth, whatever tier the bytes live on.
    peak_link: Bandwidth,
    /// Per-pass synchronization floor: one sync per layer step.
    sync_per_pass: SimDuration,
    /// Tokens generated per sequence.
    gen_len: usize,
}

impl BoundContext {
    pub(super) fn new(system: &SystemConfig, model: &ModelConfig, workload: &WorkloadSpec) -> Self {
        BoundContext {
            peak_link: system.path().pcie().theoretical(),
            sync_per_pass: SYNC_OVERHEAD * (model.num_layers() as f64),
            gen_len: workload.gen_len,
        }
    }

    /// The per-layer token-1 decode compute times feeding
    /// [`Self::objective_bound`], micro-scaled and sorted ascending
    /// for the similarly-sorted pairing. Placement-invariant
    /// ([`compute_time`] never reads the placement), so one vector
    /// serves every candidate at the same batch — the engine memoizes
    /// it per batch instead of recomputing it per grid point.
    pub(super) fn sorted_decode_computes(inp: &PipelineInputs<'_>) -> Vec<SimDuration> {
        let micro = f64::from(inp.policy.num_gpu_batches());
        let mut computes: Vec<SimDuration> = inp
            .placement
            .layers()
            .iter()
            .map(|lp| compute_time(inp, lp.layer(), Stage::Decode, 1) * micro)
            .collect();
        computes.sort_unstable();
        computes
    }

    /// Lower bound on the time one decode token spends traversing all
    /// layers under `inp`'s placement and policy, computed straight
    /// from the per-layer cost functions (bit-identical to the values
    /// a `LayerCostTable` would cache, without building one). `None`
    /// when the placement routes through an unavailable tier — the
    /// pipeline run surfaces that error instead.
    fn decode_token_floor(
        &self,
        inp: &PipelineInputs<'_>,
        sorted_computes: &[SimDuration],
    ) -> Option<SimDuration> {
        let placed = inp.placement.layers();
        let cpu_ws = inp.placement.total_on(Tier::Cpu);
        let disk_ws = inp.placement.total_on(Tier::Disk);
        let mut loads = Vec::with_capacity(placed.len());
        for lp in placed {
            loads.push(load_time(inp, lp, cpu_ws, disk_ws).ok()?);
        }
        // Drop the largest load (the final token may skip exactly one
        // prefetch) and pair the remainder with a zero-load step.
        loads.sort_unstable();
        if let Some(last) = loads.last_mut() {
            *last = SimDuration::ZERO;
        }
        loads.rotate_right(1);
        let paired: SimDuration = sorted_computes
            .iter()
            .zip(&loads)
            .map(|(&c, &l)| c.max(l))
            .fold(SimDuration::ZERO, |acc, step| acc + step);
        let working_set = inp.placement.offloaded_working_set();
        let skipped = inp.placement.largest_offloaded_layer();
        let link_floor = self.peak_link.time_for(working_set - skipped);
        Some(paired.max(link_floor) + self.sync_per_pass)
    }

    /// The candidate's bound in objective space: a lower bound on TBT
    /// (ms) for [`Objective::Latency`], an upper bound on tokens/s for
    /// [`Objective::Throughput`]. `None` when no sound bound exists
    /// (degenerate workload, or a tier error the evaluation will
    /// surface) — such candidates must always be costed.
    pub(super) fn objective_bound(
        &self,
        objective: Objective,
        inp: &PipelineInputs<'_>,
        sorted_computes: &[SimDuration],
    ) -> Option<f64> {
        match objective {
            Objective::Latency => {
                // TBT averages decode tokens; with none generated the
                // metric is degenerate and pruning has no sound bound.
                if self.gen_len < 2 {
                    return None;
                }
                Some(self.decode_token_floor(inp, sorted_computes)?.as_millis())
            }
            Objective::Throughput => {
                let floor = self.decode_token_floor(inp, sorted_computes)?;
                let tokens = inp.workload.tokens_generated(inp.policy.effective_batch());
                let floor_secs = floor.as_secs() * (self.gen_len as f64);
                if floor_secs <= 0.0 {
                    return None;
                }
                Some((tokens as f64) / floor_secs)
            }
        }
    }

    /// Whether `inp` provably cannot strictly beat the incumbent's
    /// objective value `best` (lower TBT ms for latency, higher
    /// tokens/s for throughput). `false` means "might win — cost it".
    #[cfg(test)]
    pub(super) fn cannot_beat(
        &self,
        objective: Objective,
        inp: &PipelineInputs<'_>,
        best: f64,
    ) -> bool {
        self.objective_bound(objective, inp, &BoundContext::sorted_decode_computes(inp))
            .is_some_and(|bound| bound_dominated(objective, bound, best))
    }
}

/// Whether a candidate whose objective-space bound is `bound` provably
/// cannot strictly beat an incumbent at `best`: its best-case TBT is
/// no lower (latency) or its best-case tokens/s no higher (throughput).
pub(super) fn bound_dominated(objective: Objective, bound: f64, best: f64) -> bool {
    match objective {
        Objective::Latency => bound >= best,
        Objective::Throughput => bound <= best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_pipeline;
    use crate::placement::{ModelPlacement, PlacementKind};
    use crate::policy::Policy;
    use hetmem::HostMemoryConfig;

    fn bound_vs_actual(
        memory: HostMemoryConfig,
        kind: PlacementKind,
        compressed: bool,
        batch: u32,
    ) {
        let system = SystemConfig::paper_platform(memory.clone());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, memory.kind())
            .with_placement(kind)
            .with_compression(compressed)
            .with_batch_size(batch);
        let workload = WorkloadSpec::paper_default();
        let placement = ModelPlacement::compute(&model, &policy);
        let inp = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        };
        let ctx = BoundContext::new(&system, &model, &workload);
        let report = run_pipeline(&inp).expect("pipeline runs");
        let floor = ctx
            .decode_token_floor(&inp, &BoundContext::sorted_decode_computes(&inp))
            .expect("tiers available");

        let floor_ms = floor.as_millis();
        assert!(
            floor_ms <= report.tbt_ms() * (1.0 + 1e-9),
            "{kind:?}: floor {floor_ms} ms vs actual TBT {} ms",
            report.tbt_ms()
        );
        // The floor should also be a *useful* bound, not a vacuous 0.
        assert!(
            floor_ms > report.tbt_ms() * 0.5,
            "vacuous floor {floor_ms} vs {}",
            report.tbt_ms()
        );

        let tokens = workload.tokens_generated(policy.effective_batch()) as f64;
        let ceiling = tokens / (floor.as_secs() * workload.gen_len as f64);
        assert!(
            ceiling >= report.throughput_tps() * (1.0 - 1e-9),
            "{kind:?}: ceiling {ceiling} tps vs actual {} tps",
            report.throughput_tps()
        );
    }

    #[test]
    fn floor_never_exceeds_actual_tbt() {
        bound_vs_actual(HostMemoryConfig::nvdram(), PlacementKind::Baseline, true, 1);
        bound_vs_actual(HostMemoryConfig::nvdram(), PlacementKind::Helm, true, 1);
        bound_vs_actual(HostMemoryConfig::nvdram(), PlacementKind::AllCpu, true, 44);
        bound_vs_actual(HostMemoryConfig::dram(), PlacementKind::Helm, true, 8);
        // Split disk/DRAM streaming still respects both floors.
        bound_vs_actual(HostMemoryConfig::ssd(), PlacementKind::Baseline, false, 1);
    }

    #[test]
    fn direct_costs_match_table_cached_costs() {
        // The bound's soundness story leans on reading the exact
        // scalars `LayerCostTable::build` would cache; pin the
        // bit-identity per layer.
        use crate::exec::LayerCostTable;
        let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_batch_size(1);
        let workload = WorkloadSpec::paper_default();
        let placement = ModelPlacement::compute(&model, &policy);
        let inp = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        };
        let table = LayerCostTable::build(&inp).expect("table builds");
        let cpu_ws = placement.total_on(Tier::Cpu);
        let disk_ws = placement.total_on(Tier::Disk);
        for (j, lp) in placement.layers().iter().enumerate() {
            assert_eq!(
                table.load(j),
                load_time(&inp, lp, cpu_ws, disk_ws).expect("tier available"),
                "load mismatch at layer {j}"
            );
            assert_eq!(
                table.compute_time(system.gpu(), j, Stage::Decode, 1),
                compute_time(&inp, lp.layer(), Stage::Decode, 1),
                "decode compute mismatch at layer {j}"
            );
        }
    }

    #[test]
    fn cannot_beat_respects_strict_improvement() {
        let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_batch_size(1);
        let workload = WorkloadSpec::paper_default();
        let placement = ModelPlacement::compute(&model, &policy);
        let inp = PipelineInputs {
            system: &system,
            model: &model,
            policy: &policy,
            placement: &placement,
            workload: &workload,
        };
        let ctx = BoundContext::new(&system, &model, &workload);
        let floor_ms = ctx
            .decode_token_floor(&inp, &BoundContext::sorted_decode_computes(&inp))
            .expect("tiers available")
            .as_millis();
        // An incumbent exactly at the floor cannot be strictly beaten.
        assert!(ctx.cannot_beat(Objective::Latency, &inp, floor_ms));
        // An incumbent far above the floor might be.
        assert!(!ctx.cannot_beat(Objective::Latency, &inp, floor_ms * 10.0));
    }
}
