//! The set of candidates a search touched, and its Pareto surface.
//!
//! Every candidate the engine costs becomes a [`FrontierPoint`]
//! carrying both objective values (TBT and tokens/s), so one search
//! exposes the latency/throughput tradeoff curve the paper's §VII
//! asks placement algorithms to navigate. Pruned candidates are
//! remembered by coordinate only — they never ran, but recording them
//! lets tests re-cost every skipped point and prove pruning soundness.

/// One costed candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// GPU share of MHA layers (percent).
    pub mha_gpu_percent: f64,
    /// GPU share of FFN layers (percent).
    pub ffn_gpu_percent: f64,
    /// Batch size this candidate ran at.
    pub batch: u32,
    /// Mean time between tokens (ms).
    pub tbt_ms: f64,
    /// Decode throughput (tokens/s).
    pub throughput_tps: f64,
}

impl FrontierPoint {
    /// Whether `self` dominates `other`: at least as good on both
    /// objectives and strictly better on one.
    fn dominates(&self, other: &FrontierPoint) -> bool {
        let no_worse = self.tbt_ms <= other.tbt_ms && self.throughput_tps >= other.throughput_tps;
        let better = self.tbt_ms < other.tbt_ms || self.throughput_tps > other.throughput_tps;
        no_worse && better
    }
}

/// Candidates touched by one search, in evaluation order.
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    points: Vec<FrontierPoint>,
    pruned: Vec<(f64, f64)>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    pub(super) fn record(&mut self, point: FrontierPoint) {
        self.points.push(point);
    }

    pub(super) fn record_pruned(&mut self, mha_gpu_percent: f64, ffn_gpu_percent: f64) {
        self.pruned.push((mha_gpu_percent, ffn_gpu_percent));
    }

    /// Every candidate that ran the pipeline, in evaluation order
    /// (deterministic: the engine reduces chunks serially).
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// `(mha_gpu_percent, ffn_gpu_percent)` of every candidate pruned
    /// by the analytical bound, in schedule order.
    pub fn pruned_candidates(&self) -> &[(f64, f64)] {
        &self.pruned
    }

    /// The Pareto-optimal subset (minimize TBT, maximize tokens/s),
    /// sorted by ascending TBT.
    pub fn pareto(&self) -> Vec<FrontierPoint> {
        let mut surface: Vec<FrontierPoint> = self
            .points
            .iter()
            .filter(|p| !self.points.iter().any(|q| q.dominates(p)))
            .copied()
            .collect();
        surface.sort_by(|a, b| {
            a.tbt_ms
                .total_cmp(&b.tbt_ms)
                .then(a.mha_gpu_percent.total_cmp(&b.mha_gpu_percent))
                .then(a.ffn_gpu_percent.total_cmp(&b.ffn_gpu_percent))
        });
        surface.dedup_by(|a, b| a == b);
        surface
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(tbt_ms: f64, tps: f64) -> FrontierPoint {
        FrontierPoint {
            mha_gpu_percent: 10.0,
            ffn_gpu_percent: 30.0,
            batch: 1,
            tbt_ms,
            throughput_tps: tps,
        }
    }

    #[test]
    fn pareto_drops_dominated_points() {
        let mut f = Frontier::new();
        f.record(point(10.0, 5.0)); // dominated by (8, 6)
        f.record(point(8.0, 6.0));
        f.record(point(12.0, 9.0)); // worse TBT, better tput: kept
        let surface = f.pareto();
        assert_eq!(surface.len(), 2);
        assert_eq!(surface[0].tbt_ms, 8.0);
        assert_eq!(surface[1].tbt_ms, 12.0);
    }

    #[test]
    fn pareto_keeps_incomparable_chain_sorted() {
        let mut f = Frontier::new();
        f.record(point(3.0, 1.0));
        f.record(point(1.0, 0.5));
        f.record(point(2.0, 0.8));
        let surface = f.pareto();
        let tbts: Vec<f64> = surface.iter().map(|p| p.tbt_ms).collect();
        assert_eq!(tbts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn pruned_candidates_are_tracked_separately() {
        let mut f = Frontier::new();
        f.record(point(1.0, 1.0));
        f.record_pruned(50.0, 70.0);
        assert_eq!(f.points().len(), 1);
        assert_eq!(f.pruned_candidates(), &[(50.0, 70.0)]);
    }
}
