//! Automatic weight-placement search.
//!
//! The paper closes hoping its insights "inform the design of improved
//! weight placement algorithms that can automatically make
//! latency/throughput tradeoffs based on desired quality of service
//! requirements" (§VII). This module is that algorithm over the
//! simulator — rebuilt as a search engine fast enough to sit on the
//! serving path rather than an offline sweep:
//!
//! * [`engine`] evaluates candidates in parallel (vendored rayon) in
//!   bound-sorted fixed chunks with a serial in-order reduction, so
//!   the winner is bit-identical to the serial sweep whatever the
//!   thread count;
//! * [`prune`] skips candidates whose analytical lower bound on
//!   decode-token time already loses to the incumbent — those never
//!   pay for a pipeline run, and since the schedule is sorted
//!   best-bound-first, one pruned candidate prunes the whole tail;
//! * the search is multi-resolution: a coarse 10% sweep followed by
//!   pattern descent at 5%, 2%, then 1% steps around the incumbent,
//!   reaching the fine lattice with ~0.3% of its evaluations.
//!
//! For [`Objective::Latency`] the search minimizes TBT at the
//! policy's batch; for [`Objective::Throughput`] it maximizes
//! tokens/second, letting each candidate use the largest batch its
//! GPU residency allows. Surviving candidates are costed with the
//! same pipeline executor the serving path uses, so the optimizer
//! sees exactly the compute/communication overlap the paper analyzes.

mod engine;
mod frontier;
mod prune;

pub use engine::{SearchBudget, SearchSpace, SearchStats};
pub use frontier::{Frontier, FrontierPoint};

use crate::error::HelmError;
use crate::metrics::RunReport;
use crate::placement::ModelPlacement;
use crate::policy::Policy;
use crate::system::SystemConfig;
use llm::ModelConfig;
use workload::WorkloadSpec;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize time between tokens at the policy's batch size.
    Latency,
    /// Maximize tokens/second, choosing the batch per candidate.
    Throughput,
}

/// The outcome of a placement search.
#[derive(Debug, Clone)]
pub struct AutoPlacement {
    /// GPU share chosen for MHA layers (percent).
    pub mha_gpu_percent: f64,
    /// GPU share chosen for FFN layers (percent).
    pub ffn_gpu_percent: f64,
    /// Batch size the winning evaluation used.
    pub batch: u32,
    /// The winning placement.
    pub placement: ModelPlacement,
    /// The winning evaluation run.
    pub report: RunReport,
    /// How much work the search did to find the winner.
    pub stats: SearchStats,
    /// Every candidate the search touched (evaluated or pruned).
    pub frontier: Frontier,
}

/// Grid-searches per-kind GPU shares for `objective` with the default
/// [`SearchBudget`] (auto thread count, unlimited evaluations).
///
/// The search keeps embeddings host-resident (they are a rounding
/// error of the footprint) and storage unused (matching the paper's
/// §V setting where compressed weights fit host memory).
///
/// # Errors
///
/// Returns [`HelmError::CapacityExceeded`] when even the all-host
/// candidate cannot fit (host tier too small for the model).
pub fn optimize(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    objective: Objective,
) -> Result<AutoPlacement, HelmError> {
    search(
        system,
        model,
        policy,
        workload,
        objective,
        SearchBudget::default(),
    )
}

/// [`optimize`] with an explicit [`SearchBudget`] — thread count for
/// the parallel candidate evaluation and an optional cap on pipeline
/// evaluations (the search returns its best-so-far when the cap
/// truncates it).
///
/// # Errors
///
/// Returns [`HelmError::CapacityExceeded`] when no candidate is
/// feasible (see [`optimize`]).
pub fn search(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    objective: Objective,
    budget: SearchBudget,
) -> Result<AutoPlacement, HelmError> {
    search_in(
        system,
        model,
        policy,
        workload,
        objective,
        budget,
        SearchSpace::default(),
    )
}

/// [`search`] over an explicit [`SearchSpace`]: a finer descent
/// lattice (down to 0.5% GPU-share steps) and/or a joint
/// `{placement × batch}` candidate space. The default space makes
/// this identical to [`search`].
///
/// # Errors
///
/// Returns [`HelmError::CapacityExceeded`] when no candidate is
/// feasible (see [`optimize`]).
#[allow(clippy::too_many_arguments)]
pub fn search_in(
    system: &SystemConfig,
    model: &ModelConfig,
    policy: &Policy,
    workload: &WorkloadSpec,
    objective: Objective,
    budget: SearchBudget,
    space: SearchSpace,
) -> Result<AutoPlacement, HelmError> {
    engine::SearchEngine::new(system, model, policy, workload, objective, budget, space).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacementKind, Tier};
    use crate::server::Server;
    use hetmem::HostMemoryConfig;

    fn setup() -> (SystemConfig, ModelConfig, Policy, WorkloadSpec) {
        let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_compression(true)
            .with_batch_size(1);
        (system, model, policy, WorkloadSpec::paper_default())
    }

    #[test]
    fn latency_search_matches_or_beats_helm() {
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        let helm = Server::new(
            system.clone(),
            model,
            policy.with_placement(PlacementKind::Helm),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        assert!(
            auto.report.tbt_ms() <= helm.tbt_ms() * 1.01,
            "auto {} vs HeLM {}",
            auto.report.tbt_ms(),
            helm.tbt_ms()
        );
        // The multi-resolution schedule visits well beyond the coarse
        // grid, and pruning must be doing real work.
        assert!(auto.stats.evaluated + auto.stats.pruned > 20);
        assert!(auto.stats.pruned > 0, "pruning never fired");
    }

    #[test]
    fn latency_search_favors_ffn_offload_relief() {
        // The winning latency placement should put substantially more
        // of FFN on the GPU than the baseline's 0% (HeLM's insight).
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        assert!(
            auto.ffn_gpu_percent >= 30.0,
            "FFN gpu share {}",
            auto.ffn_gpu_percent
        );
    }

    #[test]
    fn throughput_search_evicts_weights() {
        // The throughput optimum trades GPU weight residency for
        // batch (All-CPU's insight): low GPU shares, big batch.
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Throughput).unwrap();
        assert!(auto.batch >= 40, "batch {}", auto.batch);
        let gpu_bytes = auto.placement.total_on(Tier::Gpu);
        assert!(
            gpu_bytes < simcore::units::ByteSize::from_gb(5.0),
            "GPU-resident {gpu_bytes}"
        );
        // And it should at least match the hand-built All-CPU at 44.
        let all_cpu = Server::new(
            system.clone(),
            model,
            policy
                .with_placement(PlacementKind::AllCpu)
                .with_batch_size(44),
        )
        .unwrap()
        .run(&workload)
        .unwrap();
        assert!(auto.report.throughput_tps() >= all_cpu.throughput_tps() * 0.99);
    }

    #[test]
    fn infeasible_model_is_rejected() {
        // OPT-175B uncompressed cannot fit a 256 GB DRAM host.
        let system = SystemConfig::paper_platform(HostMemoryConfig::dram());
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::Dram);
        let err = optimize(
            &system,
            &model,
            &policy,
            &WorkloadSpec::paper_default(),
            Objective::Latency,
        )
        .unwrap_err();
        assert!(matches!(err, HelmError::CapacityExceeded { .. }));
    }

    #[test]
    fn max_evals_truncation_returns_best_so_far() {
        let (system, model, policy, workload) = setup();
        let budget = SearchBudget {
            threads: 1,
            max_evals: 8,
        };
        let auto = search(
            &system,
            &model,
            &policy,
            &workload,
            Objective::Latency,
            budget,
        )
        .unwrap();
        assert!(
            auto.stats.evaluated <= 8,
            "evaluated {}",
            auto.stats.evaluated
        );
        assert!(auto.report.tbt_ms() > 0.0);
    }

    #[test]
    fn joint_batch_space_picks_among_listed_batches() {
        // With an explicit batch list the search optimizes batch
        // jointly with the shares — the winner's batch comes from the
        // list, and for throughput it should find the large batch.
        let (system, model, policy, workload) = setup();
        let auto = search_in(
            &system,
            &model,
            &policy,
            &workload,
            Objective::Throughput,
            SearchBudget::default(),
            SearchSpace {
                fine_step_half_pct: 2,
                batches: vec![4, 44],
            },
        )
        .unwrap();
        assert!(auto.batch == 4 || auto.batch == 44, "batch {}", auto.batch);
        assert_eq!(auto.batch, 44, "throughput should pick the large batch");
    }

    #[test]
    fn half_percent_lattice_stays_on_lattice() {
        // fine_step_half_pct == 1 descends to the 0.5% lattice: the
        // winner's shares are half-integer and at least as good as
        // the default search's.
        let (system, model, policy, workload) = setup();
        let fine = search_in(
            &system,
            &model,
            &policy,
            &workload,
            Objective::Latency,
            SearchBudget::default(),
            SearchSpace {
                fine_step_half_pct: 1,
                batches: Vec::new(),
            },
        )
        .unwrap();
        let on_half = |v: f64| (v * 2.0) == (v * 2.0).round();
        assert!(on_half(fine.mha_gpu_percent) && on_half(fine.ffn_gpu_percent));
        let coarse = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        assert!(fine.report.tbt_ms() <= coarse.report.tbt_ms() * (1.0 + 1e-12));
    }

    #[test]
    fn zoom_reaches_fine_resolution() {
        // The winner's shares sit on the 1% lattice but the search
        // never enumerates the 101x101 fine grid.
        let (system, model, policy, workload) = setup();
        let auto = optimize(&system, &model, &policy, &workload, Objective::Latency).unwrap();
        let fine_grid_candidates = 101 * 101;
        assert!(
            auto.stats.evaluated + auto.stats.pruned < fine_grid_candidates,
            "search did {} + {} touches",
            auto.stats.evaluated,
            auto.stats.pruned
        );
        assert_eq!(auto.mha_gpu_percent, auto.mha_gpu_percent.round());
        assert_eq!(auto.ffn_gpu_percent, auto.ffn_gpu_percent.round());
    }
}
