//! # helm-core — out-of-core LLM serving on heterogeneous memory
//!
//! The paper's contribution, rebuilt as a library: a FlexGen-style
//! serving engine whose weight-placement policy is pluggable, driving
//! the calibrated device/interconnect/GPU models from the substrate
//! crates.
//!
//! * [`policy`] — serving policies: percentage distributions,
//!   compression, batch size (FlexGen's `Policy`).
//! * [`placement`] — the three weight-placement algorithms:
//!   [`placement::PlacementKind::Baseline`] (a faithful port of
//!   FlexGen's `init_weight_list`, paper Listing 2),
//!   [`placement::PlacementKind::Helm`] (the latency-optimizing
//!   Heterogeneous Layerwise Mapping, Listing 3), and
//!   [`placement::PlacementKind::AllCpu`] (the throughput-optimizing
//!   all-host placement, §V-C).
//! * [`system`] — the full platform assembly (Table I + Table II).
//! * [`exec`] — the zig-zag pipeline executor (Listing 1): compute of
//!   layer *j* overlapped with the weight transfer of layer *j+1* on
//!   a shared PCIe link model.
//! * [`metrics`] — TTFT / TBT / throughput and the per-layer,
//!   per-stage timers behind the paper's overlap figures.
//! * [`server`] — the high-level entry point.
//! * [`projection`] — CXL performance projections (§V-D, Table IV).
//!
//! # Examples
//!
//! Serve OPT-175B on Optane main memory with HeLM placement:
//!
//! ```
//! use helm_core::placement::PlacementKind;
//! use helm_core::policy::Policy;
//! use helm_core::server::Server;
//! use helm_core::system::SystemConfig;
//! use hetmem::HostMemoryConfig;
//! use llm::ModelConfig;
//! use workload::WorkloadSpec;
//!
//! let system = SystemConfig::paper_platform(HostMemoryConfig::nvdram());
//! let model = ModelConfig::opt_175b();
//! let policy = Policy::paper_default(&model, system.memory().kind())
//!     .with_compression(true)
//!     .with_placement(PlacementKind::Helm)
//!     .with_batch_size(1);
//! let report = Server::new(system, model, policy)?.run(&WorkloadSpec::paper_default())?;
//! assert!(report.tbt_ms() > 0.0);
//! # Ok::<(), helm_core::error::HelmError>(())
//! ```

pub mod autoplace;
pub mod energy;
pub mod error;
pub mod exec;
pub mod exec_des;
pub mod metrics;
pub mod online;
pub mod placement;
pub mod planner;
pub mod policy;
pub mod projection;
pub mod server;
pub mod system;
pub mod trace;

pub use error::HelmError;
pub use metrics::RunReport;
pub use placement::{ModelPlacement, PlacementKind, Tier};
pub use policy::Policy;
pub use server::Server;
pub use system::SystemConfig;
pub use trace::{Attribution, RequestTrace, Trace, TraceMode};
