//! Per-request span traces and critical-path attribution.
//!
//! The auditor proves a run is *correct*; this module explains why it
//! is *slow*. Every request decomposes into queue wait → service
//! (prefill → per-step decode), and every boundary is quantized onto
//! `simcore::trace`'s integer picosecond lattice so the three
//! attribution buckets — queue-bound, compute-bound, transfer-bound —
//! partition the end-to-end latency *exactly*:
//! `queue + compute + transfer == e2e` is a `u64` equality, never a
//! float tolerance.
//!
//! Attribution is computed unconditionally (it reads only instants
//! the simulators already produce, so it costs a handful of integer
//! subtractions per request and never perturbs the f64 timing
//! stream). Span *trees* are collected only behind
//! [`TraceMode::Spans`]; with [`TraceMode::Off`] every report is
//! bit-identical to a run without tracing because the reports never
//! contain the spans — traces travel on a separate channel.
//!
//! Coalesced cluster runs never re-run per-step: decode boundaries
//! are synthesized from the calibrated service model's span
//! arithmetic (`prefill(b) + k * decode_step(b)`), which is the same
//! arithmetic the per-step engine uses to schedule its events, so the
//! synthesized tree is byte-identical to the per-step tree by
//! construction.

use simcore::trace::{validate_nesting, NestingError, TraceSpan};

/// Whether span trees are collected during a run.
///
/// Orthogonal to `RecordMode` (what the *report* keeps) and
/// `StepGranularity` (how the cluster engine batches events): any of
/// the eight combinations is valid, and turning tracing on never
/// changes a single byte of any report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No spans are collected (attribution is still computed).
    #[default]
    Off,
    /// Collect a span tree per request.
    Spans,
}

impl TraceMode {
    /// Whether span collection is enabled.
    pub fn enabled(self) -> bool {
        matches!(self, TraceMode::Spans)
    }
}

/// Critical-path attribution: an exact partition of elapsed time into
/// queue-bound, compute-bound, and transfer-bound ticks.
///
/// All fields are integer picoseconds on the `simcore::trace`
/// lattice. The invariant `queue + compute + transfer == total` holds
/// as an equality (see [`Attribution::is_exact`]) because every
/// bucket is a telescoping sum of converted boundaries. Buckets are
/// `u128`: a single request's ticks fit comfortably in `u64`, but a
/// run-level aggregate sums latencies over up to 1e5+ requests, and
/// 1e5 × ~5e16 ticks overflows `u64` — the wider type keeps
/// [`Attribution::absorb`] exact at any scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Ticks spent waiting for admission (zero for offline runs).
    pub queue_ticks: u128,
    /// Ticks where compute bound the critical path.
    pub compute_ticks: u128,
    /// Ticks where weight/KV transfer bound the critical path.
    pub transfer_ticks: u128,
    /// Total attributed ticks (end-to-end latency, or run makespan
    /// when aggregated).
    pub total_ticks: u128,
}

impl Attribution {
    /// Exactness invariant: the three buckets partition the total.
    pub fn is_exact(&self) -> bool {
        self.queue_ticks + self.compute_ticks + self.transfer_ticks == self.total_ticks
    }

    /// Adds another attribution bucket-wise (per-run aggregation).
    pub fn absorb(&mut self, other: Attribution) {
        self.queue_ticks += other.queue_ticks;
        self.compute_ticks += other.compute_ticks;
        self.transfer_ticks += other.transfer_ticks;
        self.total_ticks += other.total_ticks;
    }

    /// Fraction of attributed time that was queue-bound (0 when no
    /// time was attributed).
    pub fn queue_fraction(&self) -> f64 {
        self.fraction(self.queue_ticks)
    }

    /// Fraction of attributed time that was compute-bound.
    pub fn compute_fraction(&self) -> f64 {
        self.fraction(self.compute_ticks)
    }

    /// Fraction of attributed time that was transfer-bound — the
    /// paper's overlap claim in one number: HeLM placements stay
    /// below 0.5, All-CPU baselines do not.
    pub fn transfer_fraction(&self) -> f64 {
        self.fraction(self.transfer_ticks)
    }

    fn fraction(&self, bucket: u128) -> f64 {
        if self.total_ticks == 0 {
            0.0
        } else {
            bucket as f64 / self.total_ticks as f64
        }
    }
}

/// The span tree and attribution of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Request identity (completion order within the run).
    pub id: u64,
    /// Pipeline (offline: always 0) the request was served on.
    pub pipe: u32,
    /// Pre-order, depth-encoded span tree.
    pub spans: Vec<TraceSpan>,
    /// Exact critical-path attribution for this request.
    pub attribution: Attribution,
}

/// All span trees collected from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// One entry per completed request, in completion order.
    pub requests: Vec<RequestTrace>,
}

impl Trace {
    /// Total number of spans across all requests.
    pub fn span_count(&self) -> usize {
        self.requests.iter().map(|r| r.spans.len()).sum()
    }

    /// Validates every request's span tree nests without overlap.
    ///
    /// # Errors
    ///
    /// Returns the first structural fault with its request id.
    pub fn validate(&self) -> Result<(), (u64, NestingError)> {
        for req in &self.requests {
            validate_nesting(&req.spans).map_err(|e| (req.id, e))?;
        }
        Ok(())
    }

    /// Renders the trace as chrome-trace JSON (the "trace event
    /// format" loaded by `chrome://tracing` / Perfetto): one complete
    /// (`"ph":"X"`) event per span, with the pipeline as the process
    /// id and the request as the thread id. Timestamps are
    /// microseconds, the format's native unit.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.span_count() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for req in &self.requests {
            for span in &req.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n{{\"name\":\"{}\",\"cat\":\"helm\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{}}}",
                    span.name,
                    ticks_to_us(span.start),
                    ticks_to_us(span.end - span.start),
                    req.pipe,
                    req.id,
                ));
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Picosecond ticks → microseconds for chrome-trace timestamps.
fn ticks_to_us(ticks: u64) -> f64 {
    ticks as f64 / 1e6 // lint: allow(raw-unit-arith): tick-lattice to chrome-trace µs encoding
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Number of `"ph":"X"` events in the file.
    pub events: usize,
    /// Number of distinct (pid, tid) tracks.
    pub tracks: usize,
}

/// Parses an exported chrome-trace JSON file and checks that, within
/// each (pid, tid) track, spans nest without overlap. The parser is
/// deliberately minimal — it accepts exactly the subset of JSON that
/// [`Trace::to_chrome_json`] emits (flat complete events with numeric
/// `ts`/`dur`/`pid`/`tid` and string `name`) — because the workspace
/// takes no serde dependency.
///
/// # Errors
///
/// Returns a description of the first parse or nesting fault.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let events_start = text
        .find("\"traceEvents\"")
        .ok_or("missing \"traceEvents\" key")?;
    let open = text[events_start..]
        .find('[')
        .ok_or("missing traceEvents array")?
        + events_start;
    let close = text.rfind(']').ok_or("unterminated traceEvents array")?;
    if close < open {
        return Err("malformed traceEvents array".into());
    }
    // (pid, tid) -> events, kept in file order per track.
    type Track = ((u64, u64), Vec<(f64, f64)>);
    let mut tracks: Vec<Track> = Vec::new();
    let mut events = 0usize;
    for raw in split_objects(&text[open + 1..close]) {
        let ph = field_str(raw, "ph").ok_or_else(|| format!("event missing \"ph\": {raw}"))?;
        if ph != "X" {
            return Err(format!("unsupported event phase {ph:?}"));
        }
        field_str(raw, "name").ok_or_else(|| format!("event missing \"name\": {raw}"))?;
        let ts = field_num(raw, "ts").ok_or_else(|| format!("event missing \"ts\": {raw}"))?;
        let dur = field_num(raw, "dur").ok_or_else(|| format!("event missing \"dur\": {raw}"))?;
        let pid = field_num(raw, "pid").ok_or_else(|| format!("event missing \"pid\": {raw}"))?;
        let tid = field_num(raw, "tid").ok_or_else(|| format!("event missing \"tid\": {raw}"))?;
        if !(ts.is_finite() && dur.is_finite()) || ts < 0.0 || dur < 0.0 {
            return Err(format!("event has invalid ts/dur: {raw}"));
        }
        let key = (pid as u64, tid as u64);
        match tracks.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push((ts, ts + dur)),
            None => tracks.push((key, vec![(ts, ts + dur)])),
        }
        events += 1;
    }
    for ((pid, tid), list) in &tracks {
        check_track_nesting(list).map_err(|e| format!("track pid={pid} tid={tid}: {e}"))?;
    }
    Ok(ChromeTraceStats {
        events,
        tracks: tracks.len(),
    })
}

/// Half a tick in microseconds. True span boundaries are integer
/// picosecond ticks, so a real overlap is at least one full tick
/// (1e-6 µs); the µs float encoding (`ts`, `ts + dur`) carries only
/// rounding noise. Comparing with [`boundary_slack`] therefore
/// rejects every genuine overlap and accepts every genuine nesting.
const HALF_TICK_US: f64 = 0.5e-6; // lint: allow(untyped-unit-const): chrome-trace µs comparison slack, not a simulated quantity

/// Comparison slack for one encoded boundary: half a tick plus a few
/// ULPs at the boundary's own magnitude. `ts` and `dur` are rounded
/// separately and summed, so an event's end carries up to ~2 ULPs of
/// float error — at late timestamps (1e9+ µs) one ULP already
/// exceeds the fixed half-tick term. Eight ULPs stays sub-nanosecond
/// out to 1e8 s of simulated time, orders of magnitude below the
/// shortest attributed segment (~250 µs), so genuine overlaps still
/// fail the check.
fn boundary_slack(at: f64) -> f64 {
    HALF_TICK_US + 8.0 * f64::EPSILON * at.abs()
}

/// Spans in one track must form a proper nesting: each event either
/// nests inside the enclosing open event or starts at/after its end
/// (boundaries compared with [`boundary_slack`]).
fn check_track_nesting(events: &[(f64, f64)]) -> Result<(), String> {
    let mut stack: Vec<(f64, f64)> = Vec::new();
    for &(start, end) in events {
        while let Some(&(_, open_end)) = stack.last() {
            if start >= open_end - boundary_slack(open_end) {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(open_start, open_end)) = stack.last() {
            if start < open_start - boundary_slack(open_start)
                || end > open_end + boundary_slack(open_end)
            {
                return Err(format!(
                    "span [{start}, {end}] overlaps enclosing span [{open_start}, {open_end}]"
                ));
            }
        }
        stack.push((start, end));
    }
    Ok(())
}

/// Splits the inside of a JSON array into top-level `{...}` objects.
/// Tolerates whitespace and trailing commas; rejects nesting deeper
/// than one level (the exporter emits flat objects).
fn split_objects(body: &str) -> impl Iterator<Item = &str> {
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        objects.push(&body[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    objects.into_iter()
}

/// Extracts a string field value from a flat JSON object.
fn field_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts a numeric field value from a flat JSON object.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, depth: u32, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            name,
            depth,
            start,
            end,
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            requests: vec![
                RequestTrace {
                    id: 0,
                    pipe: 0,
                    spans: vec![
                        span("request", 0, 0, 1_000_000),
                        span("queue", 1, 0, 250_000),
                        span("service", 1, 250_000, 1_000_000),
                        span("prefill", 2, 250_000, 500_000),
                        span("decode", 2, 500_000, 1_000_000),
                    ],
                    attribution: Attribution {
                        queue_ticks: 250_000,
                        compute_ticks: 500_000,
                        transfer_ticks: 250_000,
                        total_ticks: 1_000_000,
                    },
                },
                RequestTrace {
                    id: 1,
                    pipe: 1,
                    spans: vec![span("request", 0, 100, 900), span("service", 1, 100, 900)],
                    attribution: Attribution {
                        queue_ticks: 0,
                        compute_ticks: 800,
                        transfer_ticks: 0,
                        total_ticks: 800,
                    },
                },
            ],
        }
    }

    #[test]
    fn attribution_exactness_and_fractions() {
        let a = Attribution {
            queue_ticks: 10,
            compute_ticks: 60,
            transfer_ticks: 30,
            total_ticks: 100,
        };
        assert!(a.is_exact());
        assert_eq!(a.queue_fraction(), 0.1);
        assert_eq!(a.compute_fraction(), 0.6);
        assert_eq!(a.transfer_fraction(), 0.3);
        let empty = Attribution::default();
        assert!(empty.is_exact());
        assert_eq!(empty.transfer_fraction(), 0.0);
    }

    #[test]
    fn absorb_accumulates_bucketwise() {
        let mut total = Attribution::default();
        for _ in 0..3 {
            total.absorb(Attribution {
                queue_ticks: 1,
                compute_ticks: 2,
                transfer_ticks: 3,
                total_ticks: 6,
            });
        }
        assert_eq!(total.total_ticks, 18);
        assert!(total.is_exact());
    }

    #[test]
    fn trace_validates_and_counts() {
        let trace = sample_trace();
        assert_eq!(trace.span_count(), 7);
        trace.validate().unwrap();
    }

    #[test]
    fn broken_tree_reports_request_id() {
        let mut trace = sample_trace();
        trace.requests[1].spans.push(span("bad", 1, 0, 5_000));
        let (id, err) = trace.validate().unwrap_err();
        assert_eq!(id, 1);
        assert!(err.reason.contains("sibling") || err.reason.contains("escapes"));
    }

    #[test]
    fn chrome_export_round_trips_through_validator() {
        let json = sample_trace().to_chrome_json();
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.events, 7);
        assert_eq!(stats.tracks, 2);
    }

    #[test]
    fn validator_rejects_overlapping_spans() {
        let json = "{\"traceEvents\":[\
            {\"name\":\"a\",\"cat\":\"x\",\"ph\":\"X\",\"ts\":0,\"dur\":10,\"pid\":0,\"tid\":0},\
            {\"name\":\"b\",\"cat\":\"x\",\"ph\":\"X\",\"ts\":5,\"dur\":10,\"pid\":0,\"tid\":0}\
            ]}";
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("overlaps"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_missing_fields_and_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\":[]}").is_err());
        let missing_ts = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"dur\":10,\"pid\":0,\"tid\":0}]}";
        assert!(validate_chrome_trace(missing_ts).is_err());
    }

    #[test]
    fn validator_accepts_empty_trace() {
        let stats = validate_chrome_trace("{\"traceEvents\":[]}").unwrap();
        assert_eq!(stats.events, 0);
        assert_eq!(stats.tracks, 0);
    }
}
