//! Online (request-level) serving simulation.
//!
//! The paper evaluates steady-state batches; its conclusion frames
//! the real deployment question — "automatically make
//! latency/throughput tradeoffs based on desired quality of service
//! requirements" (§VII). This module provides the missing serving
//! layer: requests arrive continuously (Poisson), queue, and are
//! ground through the pipeline in batches of at most the policy's
//! batch size. Per-request queueing delay and end-to-end latency then
//! expose the QoS consequences of each placement policy: a bigger
//! batch (All-CPU) sustains higher arrival rates, a balanced pipeline
//! (HeLM) serves each batch faster.
//!
//! Two serving granularities are modelled:
//!
//! * **Run-to-completion** ([`run_online`], and [`run_cluster`] with
//!   [`ClusterSpec::continuous`] off): FlexGen-style static batches —
//!   whoever is queued when the pipeline frees up is ground through
//!   the full prompt+generate pass together.
//! * **Continuous batching** ([`ClusterSpec::continuous`]): Orca-style
//!   iteration-level scheduling — waiting requests are admitted at
//!   decode-step boundaries, so a newcomer no longer waits out the
//!   whole in-flight batch. Service times come from the same
//!   [`ServiceModel`], split into per-batch prefill and per-step
//!   decode costs calibrated from two pipeline runs.
//!
//! [`run_cluster`] generalizes both to `N` identical pipelines fed by
//! a pluggable dispatcher ([`SchedulerKind`]); [`run_cluster_mix`]
//! generalizes further to a **heterogeneous** cluster — each replica
//! group carries its own [`Server`]-derived [`ServiceModel`] (e.g. a
//! latency-tuned HeLM batch-4 replica next to a throughput-tuned
//! All-CPU batch-44 replica), calibrated once per distinct
//! configuration. On top of dispatch, an [`AdmissionPolicy`] can
//! reject requests at arrival and a [`DeadlineSpec`] attaches
//! per-request completion deadlines, turning the cluster into the QoS
//! engine the paper's conclusion asks for: [`ClusterReport`] then
//! separates goodput (tokens from SLO-met requests) from raw
//! throughput and counts rejections, expiries, and SLO violations.
//!
//! The [`simaudit`] conservation auditor is wired through the serving
//! path: every arrival is ledgered against its pipeline, every
//! completion or abandonment (rejection, expiry) balances the ledger
//! — `enqueued == completed + abandoned` holds per pipeline — and
//! per-pipeline busy time is checked against the cluster makespan
//! instead of being silently clamped.

use crate::error::HelmError;
use crate::exec::RecordMode;
use crate::server::Server;
use crate::trace::{Attribution, RequestTrace, Trace, TraceMode};
use simaudit::{AuditReport, Auditor};
use simcore::engine::{Context, Simulator, SpanId};
use simcore::rng::SimRng;
use simcore::stats::{Accumulator, Reservoir, SeriesStats};
use simcore::time::{SimDuration, SimTime};
use simcore::trace::{time_ticks, TraceSpan};
use simcore::QueueBackend;
use std::collections::VecDeque;
use workload::WorkloadSpec;

/// A Poisson arrival process.
///
/// The clock is part of the process state: successive [`take`] calls
/// continue where the previous one stopped, so arrival instants are
/// strictly increasing across calls.
///
/// [`take`]: PoissonArrivals::take
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_s: f64,
    rng: SimRng,
    t: f64,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_s` requests/second, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "invalid arrival rate"
        );
        PoissonArrivals {
            rate_per_s,
            rng: SimRng::from_seed_and_stream(seed, "poisson-arrivals"),
            t: 0.0,
        }
    }

    /// The next arrival instant, advancing the process clock by one
    /// exponential gap. [`take`] is this in a loop, so mixing the two
    /// draws one continuous process.
    ///
    /// [`take`]: PoissonArrivals::take
    pub fn next_arrival(&mut self) -> SimTime {
        let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
        self.t += -u.ln() / self.rate_per_s;
        SimTime::from_secs(self.t)
    }

    /// The next `n` arrival instants.
    ///
    /// The process resumes from the last drawn instant rather than
    /// restarting at zero, so `take(2)` twice draws the same four
    /// arrivals as `take(4)` once.
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// Per-batch service times calibrated from two pipeline runs.
///
/// The pipeline is run once at batch 1 and once at the policy batch;
/// every other batch size is linearly interpolated between the two
/// (decode is batch-flat on an out-of-core pipeline, prefill grows
/// with batch). Beyond the run-to-completion total the model keeps
/// the prefill/decode split — time-to-first-token and mean
/// time-between-tokens at each calibration point — which is what
/// continuous batching needs to price a single decode step.
///
/// Queries outside the calibrated range are clamped, never
/// extrapolated: batch 0 prices as batch 1 (a degenerate batch still
/// pays the single-request cost) and batches beyond
/// [`ServiceModel::max_batch`] price as the cap.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    max_batch: u32,
    gen_len: usize,
    /// Batch-1 / batch-max run-to-completion totals, seconds.
    t1: f64,
    tn: f64,
    /// Batch-1 / batch-max time-to-first-token, seconds.
    ttft1: f64,
    ttftn: f64,
    /// Batch-1 / batch-max mean decode-step time, seconds.
    tbt1: f64,
    tbtn: f64,
    /// Batch-1 / batch-max transfer-bound fraction of the calibration
    /// run, from the pipeline's exact critical-path attribution.
    xfer1: f64,
    xfern: f64,
}

impl ServiceModel {
    /// Calibrates the model by running `server`'s pipeline at batch 1
    /// and at the policy's full batch.
    ///
    /// # Errors
    ///
    /// Propagates validation and tier errors from the underlying
    /// [`Server`] runs.
    pub fn calibrate(server: &Server, workload: &WorkloadSpec) -> Result<ServiceModel, HelmError> {
        let max_batch = server.policy().effective_batch();
        // Calibration reads only aggregates (totals, TTFT, mean TBT),
        // so both runs skip per-step record materialization.
        let full = server.run_aggregate(workload)?;
        let single = if max_batch > 1 {
            Server::new(
                server.system().clone(),
                server.model().clone(),
                server
                    .policy()
                    .clone()
                    .with_batch_size(1)
                    .with_gpu_batches(1),
            )?
            .run_aggregate(workload)?
        } else {
            full.clone()
        };
        Ok(ServiceModel {
            max_batch,
            gen_len: workload.gen_len,
            t1: single.total_time.as_secs(),
            tn: full.total_time.as_secs(),
            ttft1: single.ttft.as_secs(),
            ttftn: full.ttft.as_secs(),
            tbt1: single.mean_tbt().as_secs(),
            tbtn: full.mean_tbt().as_secs(),
            xfer1: single.attribution.transfer_fraction(),
            xfern: full.attribution.transfer_fraction(),
        })
    }

    /// The batch cap this model was calibrated for.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// Output tokens per request in the calibration workload.
    pub fn gen_len(&self) -> usize {
        self.gen_len
    }

    fn lerp(&self, batch: u32, lo: f64, hi: f64) -> f64 {
        // Clamp into the calibrated range. The seed code computed
        // `batch - 1` unguarded — a `u32` underflow for batch 0
        // (panic in debug, wraparound garbage in release) — and
        // silently extrapolated past `max_batch`.
        let b = batch.clamp(1, self.max_batch.max(1));
        let frac = f64::from(b - 1) / f64::from(self.max_batch - 1);
        lo + frac * (hi - lo)
    }

    /// Run-to-completion service time for a batch of `batch`
    /// (clamped into the calibrated range `1..=max_batch`).
    pub fn total(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.tn);
        }
        SimDuration::from_secs(self.lerp(batch, self.t1, self.tn))
    }

    /// Prefill time for `batch` prompts entering together (their
    /// first output token is produced by this pass; the batch is
    /// clamped into the calibrated range).
    pub fn prefill(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.ttftn);
        }
        SimDuration::from_secs(self.lerp(batch, self.ttft1, self.ttftn))
    }

    /// One decode step over an active set of `batch` requests (one
    /// output token each; the batch is clamped into the calibrated
    /// range).
    pub fn decode_step(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.tbtn);
        }
        SimDuration::from_secs(self.lerp(batch, self.tbt1, self.tbtn))
    }

    /// Transfer-bound fraction of a batch's service time, lerped
    /// between the two calibration runs' exact pipeline attributions
    /// — how cluster-level service time is split into compute- and
    /// transfer-bound buckets.
    pub fn transfer_share(&self, batch: u32) -> f64 {
        if self.max_batch <= 1 {
            return self.xfern;
        }
        self.lerp(batch, self.xfer1, self.xfern)
    }
}

/// A shared memo for [`ServiceModel::calibrate`].
///
/// Calibration costs two pipeline runs per distinct replica
/// configuration. A capacity-planning search probes thousands of
/// cluster mixes drawn from a handful of templates, so without a
/// cache the same two runs are re-paid on every probe — the dominant
/// cost of the whole search. The cache keys on everything calibration
/// reads (platform, model, policy, workload) and hands back the
/// memoized model on a hit; [`run_cluster_mix_cached`] threads one
/// cache through repeated cluster runs, and [`run_cluster_mix`] is
/// the fresh-cache special case (which still dedupes identical groups
/// *within* one call).
///
/// The key is the `Debug` rendering of the configuration tuple.
/// Every field that feeds calibration derives `Debug` with
/// shortest-round-trip float formatting, so two configurations
/// collide only when they are value-identical — exactly when their
/// calibrated models are bit-identical too.
#[derive(Debug, Clone, Default)]
pub struct CalibrationCache {
    models: std::collections::BTreeMap<String, ServiceModel>,
    calibrations: u64,
}

impl CalibrationCache {
    /// An empty cache.
    pub fn new() -> Self {
        CalibrationCache::default()
    }

    fn key(server: &Server, workload: &WorkloadSpec) -> String {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            server.system(),
            server.model(),
            server.policy(),
            workload
        )
    }

    /// The calibrated model for `server` under `workload`, running
    /// the two calibration pipelines only on a cache miss.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors from [`ServiceModel::calibrate`]
    /// (failed calibrations are not cached).
    pub fn get_or_calibrate(
        &mut self,
        server: &Server,
        workload: &WorkloadSpec,
    ) -> Result<ServiceModel, HelmError> {
        let key = CalibrationCache::key(server, workload);
        if let Some(model) = self.models.get(&key) {
            return Ok(model.clone());
        }
        let model = ServiceModel::calibrate(server, workload)?;
        self.calibrations += 1;
        self.models.insert(key, model.clone());
        Ok(model)
    }

    /// How many calibrations actually ran (cache misses). Repeated
    /// mixes over the same configurations leave this at the number of
    /// *distinct* configurations — the regression the cache exists to
    /// prevent is this counter scaling with the number of runs.
    pub fn calibrations(&self) -> u64 {
        self.calibrations
    }

    /// Number of distinct configurations currently cached.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

/// How a cluster spreads arriving requests over its pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Arrival `i` goes to pipeline `i mod N`, load-blind.
    RoundRobin,
    /// Each arrival joins the pipeline with the fewest queued plus
    /// in-flight requests (ties broken by lowest index).
    JoinShortestQueue,
    /// Each arrival joins the pipeline whose *modeled* completion of
    /// this request is earliest, priced with that replica's own
    /// [`ServiceModel`] — the dispatcher that makes a heterogeneous
    /// mix useful: small-batch replicas win when their queue is
    /// short, big-batch replicas absorb backlog because one more
    /// request rarely starts a new batch (ties broken by lowest
    /// index).
    LeastFinishTime,
    /// Deadline-aware dispatch and queueing. Dispatch is *best-fit*:
    /// a deadlined request goes to the **slowest replica
    /// configuration** whose modeled finish still meets its deadline
    /// (load-balanced by least finish time within that
    /// configuration) — loose-deadline traffic soaks into the
    /// big-batch replicas, preserving the fast small-batch replicas
    /// for requests only they can serve in time. Requests with no
    /// deadline, or with no feasible replica, fall back to
    /// least-finish-time. Within each pipeline, queues are kept in
    /// earliest-deadline-first order (requests without a deadline
    /// sort last), and at batch/step admission a request that can no
    /// longer meet its deadline even if served alone immediately is
    /// shed as expired instead of wasting service on it.
    DeadlineAware,
}

impl SchedulerKind {
    /// Canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::JoinShortestQueue => "jsq",
            SchedulerKind::LeastFinishTime => "lft",
            SchedulerKind::DeadlineAware => "edf",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(SchedulerKind::RoundRobin),
            "jsq" | "join-shortest-queue" => Ok(SchedulerKind::JoinShortestQueue),
            "lft" | "least-finish-time" => Ok(SchedulerKind::LeastFinishTime),
            "edf" | "deadline-aware" => Ok(SchedulerKind::DeadlineAware),
            other => Err(format!(
                "unknown scheduler '{other}' (expected rr, jsq, lft, or edf)"
            )),
        }
    }
}

/// Whether an arriving request is accepted into its dispatched
/// pipeline's queue or rejected on the spot.
///
/// A rejected request is ledgered as enqueued-then-abandoned on the
/// pipeline the scheduler picked for it, so the per-pipeline
/// conservation invariant `enqueued == completed + abandoned` keeps
/// holding with admission control on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every request is accepted (the pre-admission-control
    /// behaviour).
    AcceptAll,
    /// Reject when the dispatched pipeline already holds this many
    /// requests (queued + in-flight + active).
    QueueCap(usize),
    /// Reject a deadlined request whose modeled completion on the
    /// dispatched pipeline — current backlog drained in batches,
    /// priced with that replica's [`ServiceModel`] — would land past
    /// its deadline. Requests without a deadline are always accepted.
    ///
    /// The check is against the pipeline the scheduler picked; under
    /// [`SchedulerKind::LeastFinishTime`] / [`SchedulerKind::DeadlineAware`]
    /// that is the earliest-finishing replica, so rejection means no
    /// replica could make the deadline.
    DeadlineFeasible,
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::AcceptAll => f.write_str("accept-all"),
            AdmissionPolicy::QueueCap(n) => write!(f, "cap:{n}"),
            AdmissionPolicy::DeadlineFeasible => f.write_str("deadline"),
        }
    }
}

impl std::str::FromStr for AdmissionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(n) = s.strip_prefix("cap:") {
            return n
                .parse::<usize>()
                .map(AdmissionPolicy::QueueCap)
                .map_err(|e| format!("bad queue cap '{n}': {e}"));
        }
        match s {
            "accept" | "accept-all" => Ok(AdmissionPolicy::AcceptAll),
            "deadline" | "deadline-feasible" => Ok(AdmissionPolicy::DeadlineFeasible),
            other => Err(format!(
                "unknown admission policy '{other}' (expected accept, cap:N, or deadline)"
            )),
        }
    }
}

/// How requests acquire completion deadlines.
///
/// Deadlines are assigned per request at arrival, deterministically
/// in the arrival order (independent of scheduler and admission
/// decisions), as `arrival + slo`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineSpec {
    /// No deadlines: every request trivially meets its SLO.
    None,
    /// Every request gets the same relative deadline (a
    /// workload-level SLO).
    Fixed(SimDuration),
    /// Mixed traffic: a `tight_fraction` of requests draw the
    /// `tight` SLO (latency-critical), the rest draw `loose` (batch
    /// traffic), deterministically in `seed`.
    Bimodal {
        /// Relative deadline of the latency-critical class.
        tight: SimDuration,
        /// Relative deadline of the throughput class.
        loose: SimDuration,
        /// Fraction of arrivals in the latency-critical class.
        tight_fraction: f64,
        /// Seed of the per-request class draw.
        seed: u64,
    },
}

impl DeadlineSpec {
    /// The absolute deadline of each arrival in `times` — the batch
    /// reference implementation [`DeadlineAssigner`] must reproduce
    /// draw for draw (pinned by a test).
    #[cfg(test)]
    fn assign(self, times: &[SimTime]) -> Vec<Option<SimTime>> {
        match self {
            DeadlineSpec::None => vec![None; times.len()],
            DeadlineSpec::Fixed(slo) => times.iter().map(|&t| Some(t + slo)).collect(),
            DeadlineSpec::Bimodal {
                tight,
                loose,
                tight_fraction,
                seed,
            } => {
                let mut rng = SimRng::from_seed_and_stream(seed, "deadline-mix");
                times
                    .iter()
                    .map(|&t| {
                        let slo = if rng.next_f64() < tight_fraction {
                            tight
                        } else {
                            loose
                        };
                        Some(t + slo)
                    })
                    .collect()
            }
        }
    }
}

/// Streaming form of [`DeadlineSpec`]: one deadline per call, drawing
/// the Bimodal class picks in arrival order from the same seed stream
/// as the batch assigner — lazy per-event assignment therefore sees
/// exactly the sequence `DeadlineSpec::assign` produces up front,
/// without materializing a deadline vector for the whole run.
#[derive(Debug, Clone)]
pub(crate) enum DeadlineAssigner {
    None,
    Fixed(SimDuration),
    Bimodal {
        tight: SimDuration,
        loose: SimDuration,
        tight_fraction: f64,
        rng: SimRng,
    },
}

impl DeadlineAssigner {
    pub(crate) fn new(spec: DeadlineSpec) -> Self {
        match spec {
            DeadlineSpec::None => DeadlineAssigner::None,
            DeadlineSpec::Fixed(slo) => DeadlineAssigner::Fixed(slo),
            DeadlineSpec::Bimodal {
                tight,
                loose,
                tight_fraction,
                seed,
            } => DeadlineAssigner::Bimodal {
                tight,
                loose,
                tight_fraction,
                rng: SimRng::from_seed_and_stream(seed, "deadline-mix"),
            },
        }
    }

    /// The absolute deadline of the next arrival, at instant `t`.
    pub(crate) fn next(&mut self, t: SimTime) -> Option<SimTime> {
        match self {
            DeadlineAssigner::None => None,
            DeadlineAssigner::Fixed(slo) => Some(t + *slo),
            DeadlineAssigner::Bimodal {
                tight,
                loose,
                tight_fraction,
                rng,
            } => {
                let slo = if rng.next_f64() < *tight_fraction {
                    *tight
                } else {
                    *loose
                };
                Some(t + slo)
            }
        }
    }
}

/// Event granularity of the cluster simulation.
///
/// Both granularities execute the **same per-step arithmetic in the
/// same order** — [`ClusterReport`]s are byte-identical between them
/// (pinned by proptests and a 1e5-request byte compare); only the
/// event-queue traffic differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepGranularity {
    /// Every batch/step completion is its own priority-queue event —
    /// the reference backend: one boxed closure scheduled and popped
    /// per decode step of every replica.
    PerStep,
    /// Macro-stepping (the default): between *epochs* where the
    /// scheduler can act (the next arrival, and end-of-traffic
    /// drain), each replica's pending batch/step completion lives as
    /// a `(time, seq)` boundary in plain state. Epoch handlers replay
    /// all due boundaries in the global `(time, seq)` order with a
    /// tight min-scan loop — zero queue round-trips and zero
    /// allocations per step. See DESIGN.md §11 for the identity
    /// argument.
    #[default]
    Coalesced,
}

impl StepGranularity {
    /// Canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            StepGranularity::PerStep => "per-step",
            StepGranularity::Coalesced => "coalesced",
        }
    }
}

impl std::fmt::Display for StepGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for StepGranularity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "per-step" | "step" => Ok(StepGranularity::PerStep),
            "coalesced" | "macro" => Ok(StepGranularity::Coalesced),
            other => Err(format!(
                "unknown granularity '{other}' (expected per-step or coalesced)"
            )),
        }
    }
}

/// Shape of a serving cluster: how many pipelines, how requests are
/// dispatched to them, at what granularity batches admit work, which
/// arrivals are admitted at all, and what deadlines requests carry.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of independent pipeline replicas ([`run_cluster`] only;
    /// [`run_cluster_mix`] derives the count from its replica
    /// groups).
    pub pipelines: usize,
    /// Dispatch policy for arriving requests.
    pub scheduler: SchedulerKind,
    /// Admit requests at decode-step boundaries (continuous batching)
    /// instead of run-to-completion batches.
    pub continuous: bool,
    /// Arrival-time admission control.
    pub admission: AdmissionPolicy,
    /// Per-request deadline assignment.
    pub deadlines: DeadlineSpec,
    /// Recording granularity: [`RecordMode::Full`] retains every
    /// latency sample and batch size; [`RecordMode::Aggregate`] keeps
    /// streaming summaries plus a bounded latency reservoir, so
    /// million-request runs stay allocation-bounded.
    pub record: RecordMode,
    /// Event-scheduler backend of the underlying simulator. The
    /// backends share one `(time, seq)` total order, so reports are
    /// bit-identical either way; only speed differs.
    pub backend: QueueBackend,
    /// Event granularity: coalesced macro-stepping (default) or one
    /// queue event per batch/step completion. Reports are
    /// byte-identical either way; only speed differs.
    pub granularity: StepGranularity,
    /// Span collection: [`TraceMode::Spans`] records a per-request
    /// span tree (retrieved via the `*_traced` entry points). Reports
    /// are byte-identical either way — attribution is always
    /// computed; only the side-channel span trees are optional.
    pub trace: TraceMode,
}

impl ClusterSpec {
    /// `pipelines` replicas, round-robin dispatch, run-to-completion
    /// batching, accept-all admission, no deadlines.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines` is zero.
    pub fn new(pipelines: usize) -> Self {
        assert!(pipelines >= 1, "a cluster needs at least one pipeline");
        ClusterSpec {
            pipelines,
            scheduler: SchedulerKind::RoundRobin,
            continuous: false,
            admission: AdmissionPolicy::AcceptAll,
            deadlines: DeadlineSpec::None,
            record: RecordMode::Full,
            backend: QueueBackend::default(),
            granularity: StepGranularity::default(),
            trace: TraceMode::default(),
        }
    }

    /// Replaces the dispatch policy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables or disables continuous batching.
    #[must_use]
    pub fn with_continuous(mut self, continuous: bool) -> Self {
        self.continuous = continuous;
        self
    }

    /// Replaces the admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Replaces the deadline assignment.
    #[must_use]
    pub fn with_deadlines(mut self, deadlines: DeadlineSpec) -> Self {
        self.deadlines = deadlines;
        self
    }

    /// Replaces the recording granularity.
    #[must_use]
    pub fn with_record(mut self, record: RecordMode) -> Self {
        self.record = record;
        self
    }

    /// Replaces the event-scheduler backend.
    #[must_use]
    pub fn with_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the event granularity.
    #[must_use]
    pub fn with_granularity(mut self, granularity: StepGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Replaces the span-collection mode.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }
}

/// Reservoir size for aggregate-mode latency percentiles: large
/// enough that tail estimates are stable, small enough that a
/// million-request run keeps O(1) latency state.
const LATENCY_RESERVOIR: usize = 4096;

/// Latency accounting at either [`RecordMode`] granularity.
///
/// [`RecordMode::Full`] retains every sample (a [`SeriesStats`]),
/// which per-request analyses and the bit-identity cross-checks need.
/// [`RecordMode::Aggregate`] keeps a streaming Welford summary plus a
/// fixed-size uniform reservoir: count and mean stay exact, only
/// percentiles become (deterministic) estimates, and a
/// million-request cluster run no longer allocates per request.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyStats {
    /// Every sample retained.
    Full(SeriesStats),
    /// Streaming summary plus bounded percentile reservoir.
    Sampled {
        /// Exact count/mean/variance over all samples.
        summary: Accumulator,
        /// Uniform sample of the stream for percentile estimates.
        reservoir: Reservoir,
    },
}

impl LatencyStats {
    fn full() -> Self {
        LatencyStats::Full(SeriesStats::new())
    }

    fn sampled(rng: SimRng) -> Self {
        LatencyStats::Sampled {
            summary: Accumulator::new(),
            reservoir: Reservoir::new(LATENCY_RESERVOIR, rng),
        }
    }

    fn add(&mut self, x: f64) {
        match self {
            LatencyStats::Full(s) => s.add(x),
            LatencyStats::Sampled { summary, reservoir } => {
                summary.add(x);
                reservoir.add(x);
            }
        }
    }

    /// Number of samples observed — all of them, in either mode.
    pub fn count(&self) -> u64 {
        match self {
            LatencyStats::Full(s) => u64::try_from(s.count()).unwrap_or(u64::MAX),
            LatencyStats::Sampled { summary, .. } => summary.count(),
        }
    }

    /// Arithmetic mean over **all** samples; exact in both modes (the
    /// aggregate mode streams the mean — only percentiles are
    /// estimated).
    pub fn mean(&self) -> f64 {
        match self {
            LatencyStats::Full(s) => s.mean(),
            LatencyStats::Sampled { summary, .. } => summary.mean(),
        }
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`: exact in
    /// full mode, a uniform-reservoir estimate in aggregate mode
    /// (exact there too while the sample count is within the
    /// reservoir capacity).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        match self {
            LatencyStats::Full(s) => s.percentile(p),
            LatencyStats::Sampled { reservoir, .. } => reservoir.percentile(p),
        }
    }

    /// The retained samples: the complete series in full mode, the
    /// reservoir's uniform subset in aggregate mode.
    pub fn samples(&self) -> &[f64] {
        match self {
            LatencyStats::Full(s) => s.samples(),
            LatencyStats::Sampled { reservoir, .. } => reservoir.samples(),
        }
    }
}

/// Per-pipeline accounting from a cluster run.
///
/// Counters are `u64`: at the million-request scale the DES core is
/// sized for, 32-bit counters are one long soak away from wrapping.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// Index of the replica group this pipeline was built from
    /// (always 0 for homogeneous clusters).
    pub config: usize,
    /// Requests completed on this pipeline.
    pub served: u64,
    /// Requests rejected at arrival by the admission policy.
    pub rejected: u64,
    /// Requests shed at batch/step admission because their deadline
    /// had become infeasible ([`SchedulerKind::DeadlineAware`] only).
    pub expired: u64,
    /// Total time this pipeline spent serving.
    pub busy: SimDuration,
    /// Batches (run-to-completion) or steps (continuous) executed.
    pub batches: u64,
    /// `busy` as a fraction of the cluster makespan (not clamped; a
    /// value above 1 means over-accounted busy time, which the audit
    /// flags via [`Auditor::check_busy_time`]).
    pub utilization: f64,
}

/// Aggregate and per-pipeline results of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Requests served across all pipelines.
    pub served: u64,
    /// Requests rejected at arrival by the admission policy.
    pub rejected: u64,
    /// Requests shed as expired at batch/step admission
    /// ([`SchedulerKind::DeadlineAware`] only).
    pub expired: u64,
    /// Served requests that finished past their deadline.
    pub slo_violations: u64,
    /// Served requests that met their deadline (requests without a
    /// deadline count as met).
    pub met: u64,
    /// Simulator events fired during the run (arrivals plus
    /// batch/step completions) — the denominator of events/s
    /// scheduler benchmarks.
    pub events: u64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Queueing delays (arrival → batch/step admission), seconds.
    pub queue_delay: LatencyStats,
    /// End-to-end latencies (arrival → last token), seconds.
    pub e2e_latency: LatencyStats,
    /// Batch (or active-set) sizes in execution order, interleaved
    /// across pipelines (empty under [`RecordMode::Aggregate`]).
    pub batch_sizes: Vec<u32>,
    /// Mean per-pipeline busy fraction of the makespan.
    pub utilization: f64,
    /// Sustained output-token throughput over the makespan, computed
    /// from requests actually served (not offered load).
    pub tokens_per_s: f64,
    /// Goodput: output-token throughput from SLO-met requests only.
    pub tokens_per_s_met: f64,
    /// Per-pipeline breakdown, indexed by pipeline.
    pub per_pipeline: Vec<PipelineStats>,
    /// Aggregate critical-path attribution over all served requests:
    /// queue-bound vs compute-bound vs transfer-bound ticks, exact
    /// (`sum(buckets) == total` as a `u64` equality). Identical
    /// across granularities, backends, and [`TraceMode`]s.
    pub attribution: Attribution,
    /// Conservation audit, when auditing is enabled (debug builds or
    /// [`simaudit::force_enable`]).
    pub audit: Option<AuditReport>,
}

impl ClusterReport {
    /// Mean queueing delay in milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        SimDuration::from_secs(self.queue_delay.mean()).as_millis()
    }

    /// A latency percentile (end-to-end) in milliseconds.
    pub fn e2e_percentile_ms(&self, p: f64) -> f64 {
        SimDuration::from_secs(self.e2e_latency.percentile(p).unwrap_or(0.0)).as_millis()
    }

    /// Requests offered to the cluster: served + rejected + expired.
    pub fn offered(&self) -> u64 {
        self.served + self.rejected + self.expired
    }

    /// Fraction of offered requests that completed within their
    /// deadline (rejected and expired requests count against it).
    pub fn slo_attainment(&self) -> f64 {
        if self.offered() == 0 {
            0.0
        } else {
            self.met as f64 / self.offered() as f64
        }
    }
}

/// Per-request and aggregate results of an online run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Requests served.
    pub served: u64,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Queueing delays (arrival → batch start), seconds.
    pub queue_delay: LatencyStats,
    /// End-to-end latencies (arrival → last token), seconds.
    pub e2e_latency: LatencyStats,
    /// Batch sizes actually formed.
    pub batch_sizes: Vec<u32>,
    /// Fraction of the makespan the pipeline was busy (not clamped;
    /// over-accounted busy time is an audit finding, not a silent
    /// saturation).
    pub utilization: f64,
    /// Sustained output-token throughput over the makespan, computed
    /// from requests actually served.
    pub tokens_per_s: f64,
    /// Conservation audit, when auditing is enabled (debug builds or
    /// [`simaudit::force_enable`]).
    pub audit: Option<AuditReport>,
}

impl OnlineReport {
    /// Mean queueing delay in milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        SimDuration::from_secs(self.queue_delay.mean()).as_millis()
    }

    /// A latency percentile (end-to-end) in milliseconds.
    pub fn e2e_percentile_ms(&self, p: f64) -> f64 {
        SimDuration::from_secs(self.e2e_latency.percentile(p).unwrap_or(0.0)).as_millis()
    }
}

/// Serves `num_requests` Poisson arrivals through `server`, forming
/// batches of at most the policy's batch size from whatever is queued
/// when the pipeline frees up (run-to-completion batching, FlexGen
/// style — no continuous batching).
///
/// The per-batch service time comes from a [`ServiceModel`]
/// interpolated between two pipeline runs (batch 1 and the policy
/// batch) rather than re-simulated per batch, keeping λ-sweeps cheap
/// while preserving the batch-size dependence of prefill.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    let model = ServiceModel::calibrate(server, workload)?;
    let max_batch = model.max_batch();

    let times = arrivals.take(num_requests);
    let mut queue_delay = SeriesStats::new();
    let mut e2e = SeriesStats::new();
    let mut batch_sizes = Vec::new();
    let mut busy = SimDuration::ZERO;

    let mut next = 0usize;
    let mut pipeline_free = SimTime::ZERO;
    let mut last_completion = SimTime::ZERO;
    while next < times.len() {
        // The batch starts when the pipeline is free and at least one
        // request has arrived.
        let start = pipeline_free.max(times[next]);
        // Everyone who has arrived by then joins, up to the cap.
        let mut batch = 0u32;
        while next < times.len() && times[next] <= start && batch < max_batch {
            queue_delay.add((start - times[next]).as_secs());
            batch += 1;
            next += 1;
        }
        let service = model.total(batch);
        let done = start + service;
        // All requests in the batch finish together (static batch).
        for i in 0..batch as usize {
            e2e.add((done - times[next - batch as usize + i]).as_secs());
        }
        busy += service;
        batch_sizes.push(batch);
        pipeline_free = done;
        last_completion = done;
    }

    let first_arrival = times.first().copied().unwrap_or(SimTime::ZERO);
    let makespan = last_completion.max(first_arrival) - first_arrival;
    // Every request the loop admitted to a batch completed; count
    // completions rather than trusting the offered load.
    debug_assert_eq!(e2e.count(), queue_delay.count());
    let served = u64::try_from(e2e.count()).unwrap_or(u64::MAX);
    let tokens = served * workload.gen_len as u64;
    let mut audit = Auditor::capture();
    let utilization = busy_fraction(&mut audit, "online", busy, makespan);
    Ok(OnlineReport {
        served,
        makespan,
        queue_delay: LatencyStats::Full(queue_delay),
        e2e_latency: LatencyStats::Full(e2e),
        batch_sizes,
        utilization,
        tokens_per_s: tokens as f64 / makespan.as_secs().max(f64::MIN_POSITIVE),
        audit: audit.finish_if_active(),
    })
}

/// Event-driven variant of [`run_online`]: a thin wrapper over
/// [`run_cluster`] with a single pipeline, round-robin dispatch, and
/// run-to-completion batching, which reproduces the hand-rolled loop
/// bit for bit (the test suite cross-validates the two).
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online_des(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    let r = run_cluster(
        server,
        workload,
        arrivals,
        num_requests,
        ClusterSpec::new(1),
    )?;
    Ok(OnlineReport {
        served: r.served,
        makespan: r.makespan,
        queue_delay: r.queue_delay,
        e2e_latency: r.e2e_latency,
        batch_sizes: r.batch_sizes,
        utilization: r.utilization,
        tokens_per_s: r.tokens_per_s,
        audit: r.audit,
    })
}

/// Busy fraction of `makespan`, reported raw. The seed code clamped
/// this with `.min(1.0)`, which silently masked over-accounted busy
/// time; a ratio above 1 now surfaces as a
/// [`Auditor::check_busy_time`] finding and is returned as-is.
fn busy_fraction(
    audit: &mut Auditor,
    label: &str,
    busy: SimDuration,
    makespan: SimDuration,
) -> f64 {
    audit.check_busy_time(label, busy, makespan);
    if makespan > SimDuration::ZERO {
        busy / makespan
    } else {
        0.0
    }
}

/// One request in flight through the cluster: its arrival instant,
/// the instant it was admitted into a batch/step (set at admission;
/// equal to `at` until then), and optional absolute completion
/// deadline.
#[derive(Debug, Clone, Copy)]
struct Req {
    at: SimTime,
    admitted: SimTime,
    deadline: Option<SimTime>,
}

impl Req {
    /// EDF sort key: requests without a deadline sort last.
    fn edf_key(&self) -> SimTime {
        self.deadline
            .unwrap_or(SimTime::from_secs(f64::INFINITY).max(SimTime::ZERO))
    }
}

/// One pipeline replica's live state inside the cluster simulation.
struct Pipe {
    /// Index into the cluster's [`ServiceModel`] list (one model per
    /// distinct replica configuration).
    model: usize,
    /// Requests waiting for admission, in arrival order (or EDF order
    /// under [`SchedulerKind::DeadlineAware`]).
    queue: VecDeque<Req>,
    /// Whether the pipeline is between batches/steps.
    idle: bool,
    /// In-flight request count (run-to-completion mode).
    in_flight: usize,
    /// Active set: request plus output tokens still owed.
    /// Continuous mode only.
    active: Vec<(Req, usize)>,
    /// Members of the in-flight run-to-completion batch. Held in pipe
    /// state (rather than captured in the completion closure) so both
    /// granularities share one completion routine.
    members: Vec<Req>,
    /// Modeled instant the in-flight batch/step completes — the base
    /// of finish-time estimates for dispatch and admission.
    free_at: SimTime,
    /// Coalesced mode: the pending completion boundary as a
    /// `(instant, virtual seq)` key replicating the per-step queue's
    /// `(time, seq)` total order, held in state instead of the
    /// priority queue.
    boundary: Option<(SimTime, u64)>,
    busy: SimDuration,
    served: u64,
    rejected: u64,
    expired: u64,
    batches: u64,
}

impl Pipe {
    fn new(model: usize) -> Self {
        Pipe {
            model,
            queue: VecDeque::new(),
            idle: true,
            in_flight: 0,
            active: Vec::new(),
            members: Vec::new(),
            free_at: SimTime::ZERO,
            boundary: None,
            busy: SimDuration::ZERO,
            served: 0,
            rejected: 0,
            expired: 0,
            batches: 0,
        }
    }

    /// Queued plus in-flight requests — the JSQ load signal.
    fn load(&self) -> usize {
        self.queue.len() + self.in_flight + self.active.len()
    }
}

struct ClusterSt {
    pipes: Vec<Pipe>,
    models: Vec<ServiceModel>,
    continuous: bool,
    scheduler: SchedulerKind,
    admission: AdmissionPolicy,
    record: RecordMode,
    queue_delay: LatencyStats,
    e2e: LatencyStats,
    batch_sizes: Vec<u32>,
    last_completion: SimTime,
    slo_violations: u64,
    met: u64,
    /// Aggregate attribution over completed requests — always
    /// accumulated, whatever the [`TraceMode`].
    attribution: Attribution,
    /// Span collection buffer ([`TraceMode::Spans`] only).
    trace: Option<Trace>,
    audit: Auditor,
    /// The live arrival process: the chain of arrival events draws
    /// from it lazily, one inter-arrival gap per event.
    arrivals: PoissonArrivals,
    /// Streaming deadline assignment, in arrival order.
    deadliner: DeadlineAssigner,
    /// Arrivals not yet drawn (beyond the one pending event).
    remaining: usize,
    /// Free list of batch member buffers: completions return theirs,
    /// so steady state forms batches without allocating.
    member_pool: Vec<Vec<Req>>,
    /// Per-pipe audit channel names, formatted once — the ledger is
    /// touched on every arrival and completion.
    channels: Vec<String>,
    /// Event granularity this run executes at.
    granularity: StepGranularity,
    /// Virtual sequence counter (coalesced mode): assigned in the
    /// exact program order the per-step backend assigns queue
    /// sequence numbers, so `(time, vseq)` boundary keys replicate
    /// the per-step `(time, seq)` total order.
    next_vseq: u64,
    /// Logical events processed (arrivals plus batch/step
    /// completions) — identical across granularities by construction,
    /// and equal to the simulator's fired-event count in per-step
    /// mode.
    events: u64,
    /// Payload of the single pending arrival: its index, request, and
    /// virtual sequence number (the arrival chain is a registered
    /// span, so the payload lives in state, not in a boxed closure).
    arrival_pending: Option<(usize, Req, u64)>,
    /// The registered arrival-chain span.
    arrival_span: Option<SpanId>,
    /// The registered end-of-traffic drain span (coalesced mode):
    /// armed by the last arrival to replay every remaining boundary.
    drain_span: Option<SpanId>,
}

fn req_channel(p: usize) -> String {
    format!("requests:pipe{p}")
}

/// Modeled completion instant of one more request landing on `pipe`:
/// the in-flight work finishes at `free_at`, then the backlog (plus
/// the candidate) drains in run-to-completion batches priced by the
/// pipe's own model. In continuous mode the active set's residual
/// decode steps are added first; the batched drain of the queue is a
/// deliberate upper-bound approximation of step-granularity
/// admission.
fn modeled_finish(pipe: &Pipe, model: &ServiceModel, continuous: bool, now: SimTime) -> SimTime {
    let mut t = pipe.free_at.max(now);
    if continuous {
        if let Some(owed) = pipe.active.iter().map(|(_, owed)| *owed).max() {
            t += model.decode_step(pipe.active.len() as u32) * owed as f64;
        }
    }
    let mut backlog = pipe.queue.len() + 1;
    let cap = model.max_batch().max(1) as usize;
    while backlog > 0 {
        let b = backlog.min(cap);
        t += model.total(b as u32);
        backlog -= b;
    }
    t
}

/// Whether `req` can no longer meet its deadline even if served alone
/// starting right now — the optimistic bound ([`ServiceModel::total`]
/// at batch 1 is the fastest any admission could finish it), so a
/// request is only ever shed when it is provably lost.
fn infeasible(req: &Req, model: &ServiceModel, now: SimTime) -> bool {
    req.deadline.is_some_and(|d| now + model.total(1) > d)
}

/// The pipeline `spec.scheduler` dispatches an arrival to.
fn dispatch(st: &ClusterSt, i: usize, deadline: Option<SimTime>, now: SimTime) -> usize {
    let finish = |pipe: &Pipe| modeled_finish(pipe, &st.models[pipe.model], st.continuous, now);
    match st.scheduler {
        SchedulerKind::RoundRobin => i % st.pipes.len(),
        SchedulerKind::JoinShortestQueue => st
            .pipes
            .iter()
            .enumerate()
            .min_by_key(|(_, pipe)| pipe.load())
            .map_or(0, |(idx, _)| idx),
        SchedulerKind::LeastFinishTime => st
            .pipes
            .iter()
            .enumerate()
            .min_by_key(|(_, pipe)| finish(pipe))
            .map_or(0, |(idx, _)| idx),
        SchedulerKind::DeadlineAware => {
            // Best-fit: the slowest replica *configuration* that can
            // still meet the deadline, load-balanced by least finish
            // time within that configuration (ties to the lowest
            // index). Keying on intrinsic service speed — not current
            // backlog — keeps fast replicas free for requests only
            // they can serve in time without the feedback loop where
            // the most-backlogged replica keeps "winning". No deadline
            // or no feasible replica: least finish time.
            let best_fit = deadline.and_then(|d| {
                st.pipes
                    .iter()
                    .enumerate()
                    .filter(|(_, pipe)| finish(pipe) <= d)
                    .min_by_key(|(_, pipe)| {
                        (
                            std::cmp::Reverse(st.models[pipe.model].total(1)),
                            finish(pipe),
                        )
                    })
                    .map(|(idx, _)| idx)
            });
            best_fit.unwrap_or_else(|| {
                st.pipes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, pipe)| finish(pipe))
                    .map_or(0, |(idx, _)| idx)
            })
        }
    }
}

/// Whether the admission policy accepts `req` on pipeline `p`.
fn admit(st: &ClusterSt, p: usize, req: &Req, now: SimTime) -> bool {
    let pipe = &st.pipes[p];
    match st.admission {
        AdmissionPolicy::AcceptAll => true,
        AdmissionPolicy::QueueCap(cap) => pipe.load() < cap,
        AdmissionPolicy::DeadlineFeasible => match req.deadline {
            None => true,
            Some(d) => modeled_finish(pipe, &st.models[pipe.model], st.continuous, now) <= d,
        },
    }
}

/// Queues `req` on pipeline `p`: FIFO normally, EDF order (ties FIFO)
/// under [`SchedulerKind::DeadlineAware`].
fn push_request(st: &mut ClusterSt, p: usize, req: Req) {
    let queue = &mut st.pipes[p].queue;
    if st.scheduler == SchedulerKind::DeadlineAware {
        let pos = queue.partition_point(|q| q.edf_key() <= req.edf_key());
        queue.insert(pos, req);
    } else {
        queue.push_back(req);
    }
}

/// Run-to-completion admission at `now`: whoever is queued joins, up
/// to the cap, and the whole batch occupies the pipeline for its full
/// service time. Under [`SchedulerKind::DeadlineAware`], requests
/// whose deadline has become infeasible are shed as expired instead
/// of joining. Returns the batch's completion instant, or `None` when
/// everything ready was shed and the pipe went back to sleep.
fn start_batch(st: &mut ClusterSt, p: usize, now: SimTime) -> Option<SimTime> {
    debug_assert!(st.pipes[p].idle);
    st.pipes[p].idle = false;
    let model_idx = st.pipes[p].model;
    let max_batch = st.models[model_idx].max_batch();
    // Pooled member buffer: the completion hands it back, so steady
    // state forms batches allocation-free.
    let mut members = st.member_pool.pop().unwrap_or_default();
    debug_assert!(members.is_empty());
    while members.len() < max_batch as usize {
        match st.pipes[p].queue.pop_front() {
            Some(mut req) if req.at <= now => {
                if st.scheduler == SchedulerKind::DeadlineAware
                    && infeasible(&req, &st.models[model_idx], now)
                {
                    st.audit.abandoned(&st.channels[p], 1);
                    st.pipes[p].expired += 1;
                    continue;
                }
                st.queue_delay.add((now - req.at).as_secs());
                req.admitted = now;
                members.push(req);
            }
            Some(req) => {
                st.pipes[p].queue.push_front(req);
                break;
            }
            None => break,
        }
    }
    let batch = members.len() as u32;
    if batch == 0 {
        // Everything ready was shed as expired; the pipe goes back to
        // sleep until the next arrival wakes it.
        st.member_pool.push(members);
        st.pipes[p].idle = true;
        return None;
    }
    if st.record == RecordMode::Full {
        st.batch_sizes.push(batch);
    }
    st.pipes[p].in_flight = members.len();
    st.pipes[p].members = members;
    st.pipes[p].batches += 1;
    let dur = st.models[model_idx].total(batch);
    st.pipes[p].busy += dur;
    st.pipes[p].free_at = now + dur;
    Some(st.pipes[p].free_at)
}

/// Attribution and (optional) span tree of one completed request.
///
/// The three instants the engine already records — arrival,
/// admission, completion — are quantized onto the tick lattice;
/// queue is `admitted - arrival`, service is `done - admitted`, and
/// the service interval is partitioned into transfer- and
/// compute-bound ticks by the replica model's calibrated transfer
/// share (transfer rounds, compute takes the integer remainder), so
/// `queue + compute + transfer == e2e` holds exactly. `batch` is the
/// batch/active-set size the request completed under.
fn record_request(st: &mut ClusterSt, p: usize, req: &Req, done: SimTime, batch: u32) {
    let model = &st.models[st.pipes[p].model];
    let arrival = time_ticks(req.at);
    let done_ticks = time_ticks(done);
    let admitted = time_ticks(req.admitted).clamp(arrival, done_ticks);
    let service = done_ticks - admitted;
    let share = model.transfer_share(batch);
    let transfer = ((service as f64 * share).round() as u64).min(service);
    let att = Attribution {
        queue_ticks: u128::from(admitted - arrival),
        compute_ticks: u128::from(service - transfer),
        transfer_ticks: u128::from(transfer),
        total_ticks: u128::from(done_ticks - arrival),
    };
    st.attribution.absorb(att);
    if let Some(trace) = st.trace.as_mut() {
        let spans = request_spans(model, arrival, admitted, done_ticks, req.admitted, batch);
        trace.requests.push(RequestTrace {
            id: trace.requests.len() as u64,
            pipe: p as u32,
            spans,
            attribution: att,
        });
    }
}

/// Synthesizes one request's span tree from the service model's span
/// arithmetic: queue and service children under the request root,
/// with per-step prefill/decode boundaries at
/// `admitted + prefill(b) + k · decode_step(b)`. Both granularities
/// call this with identical instants — the coalesced engine never
/// re-runs per-step; it derives the same boundaries the per-step
/// engine would schedule, so the trees are byte-identical across
/// granularities by construction. Boundaries are clamped monotone
/// into the service interval and the final step is pinned to the
/// completion instant, so the tree always nests.
fn request_spans(
    model: &ServiceModel,
    arrival: u64,
    admitted: u64,
    done: u64,
    admitted_at: SimTime,
    batch: u32,
) -> Vec<TraceSpan> {
    let gen_len = model.gen_len().max(1);
    let mut spans = Vec::with_capacity(3 + gen_len);
    spans.push(TraceSpan {
        name: "request",
        depth: 0,
        start: arrival,
        end: done,
    });
    spans.push(TraceSpan {
        name: "queue",
        depth: 1,
        start: arrival,
        end: admitted,
    });
    spans.push(TraceSpan {
        name: "service",
        depth: 1,
        start: admitted,
        end: done,
    });
    let step = model.decode_step(batch);
    let mut boundary = admitted_at + model.prefill(batch);
    let mut prev = admitted;
    for k in 0..gen_len {
        let end = if k + 1 == gen_len {
            done
        } else {
            time_ticks(boundary).clamp(prev, done)
        };
        spans.push(TraceSpan {
            name: if k == 0 { "prefill" } else { "decode" },
            depth: 2,
            start: prev,
            end,
        });
        prev = end;
        boundary += step;
    }
    spans
}

/// Completion bookkeeping of a run-to-completion batch at `done`.
/// Returns whether the pipe has queued work to restart on.
fn complete_batch(st: &mut ClusterSt, p: usize, done: SimTime) -> bool {
    st.audit.observe_time("cluster", done);
    let members = std::mem::take(&mut st.pipes[p].members);
    let batch = members.len() as u32;
    for req in &members {
        st.e2e.add((done - req.at).as_secs());
        match req.deadline {
            Some(d) if done > d => st.slo_violations += 1,
            _ => st.met += 1,
        }
        record_request(st, p, req, done, batch);
    }
    st.audit.completed(&st.channels[p], members.len() as u64);
    st.pipes[p].served += members.len() as u64;
    st.pipes[p].in_flight = 0;
    st.last_completion = done;
    st.pipes[p].idle = true;
    // Recycle the member buffer for the next batch.
    let mut members = members;
    members.clear();
    st.member_pool.push(members);
    !st.pipes[p].queue.is_empty()
}

/// Continuous-batching admission at `now`: admit whoever is queued
/// into the active set (up to the cap) and start one iteration —
/// prefill for the newcomers, one decode step for requests already
/// past prefill. Under [`SchedulerKind::DeadlineAware`], infeasible
/// requests are shed at the admission boundary. Returns the step's
/// completion instant, or `None` when the pipe went back to sleep.
fn start_step(st: &mut ClusterSt, p: usize, now: SimTime) -> Option<SimTime> {
    debug_assert!(st.pipes[p].idle);
    st.pipes[p].idle = false;
    let model_idx = st.pipes[p].model;
    let gen_len = st.models[model_idx].gen_len();
    let max_batch = st.models[model_idx].max_batch();
    let continuing = st.pipes[p].active.len() as u32;
    let mut admitted = 0u32;
    while st.pipes[p].active.len() < max_batch as usize {
        match st.pipes[p].queue.pop_front() {
            Some(mut req) if req.at <= now => {
                if st.scheduler == SchedulerKind::DeadlineAware
                    && infeasible(&req, &st.models[model_idx], now)
                {
                    st.audit.abandoned(&st.channels[p], 1);
                    st.pipes[p].expired += 1;
                    continue;
                }
                st.queue_delay.add((now - req.at).as_secs());
                req.admitted = now;
                st.pipes[p].active.push((req, gen_len));
                admitted += 1;
            }
            Some(req) => {
                st.pipes[p].queue.push_front(req);
                break;
            }
            None => break,
        }
    }
    let batch = st.pipes[p].active.len() as u32;
    if batch == 0 {
        // The queue drained entirely into expiries and nothing is in
        // flight; sleep until the next arrival.
        st.pipes[p].idle = true;
        return None;
    }
    if st.record == RecordMode::Full {
        st.batch_sizes.push(batch);
    }
    st.pipes[p].batches += 1;
    // The newcomers' first token comes out of their prefill pass; the
    // continuing requests each decode one token alongside it.
    let mut dur = SimDuration::ZERO;
    if admitted > 0 {
        dur += st.models[model_idx].prefill(admitted);
    }
    if continuing > 0 {
        dur += st.models[model_idx].decode_step(continuing);
    }
    st.pipes[p].busy += dur;
    st.pipes[p].free_at = now + dur;
    Some(st.pipes[p].free_at)
}

/// Completion bookkeeping of one continuous-batching step at `done`:
/// every active request receives one output token. Returns whether
/// the pipe has active or queued work to restart on.
fn complete_step(st: &mut ClusterSt, p: usize, done: SimTime) -> bool {
    st.audit.observe_time("cluster", done);
    // Compact the active set in place (order-preserving): finished
    // requests drop out, survivors slide forward with one fewer
    // token owed. No per-step replacement Vec.
    let len = st.pipes[p].active.len();
    let mut write = 0usize;
    let mut finished = 0u64;
    for read in 0..len {
        let (req, owed) = st.pipes[p].active[read];
        if owed <= 1 {
            st.e2e.add((done - req.at).as_secs());
            match req.deadline {
                Some(d) if done > d => st.slo_violations += 1,
                _ => st.met += 1,
            }
            record_request(st, p, &req, done, len as u32);
            finished += 1;
        } else {
            st.pipes[p].active[write] = (req, owed - 1);
            write += 1;
        }
    }
    st.pipes[p].active.truncate(write);
    st.pipes[p].served += finished;
    if finished > 0 {
        st.audit.completed(&st.channels[p], finished);
        st.last_completion = done;
    }
    st.pipes[p].idle = true;
    !st.pipes[p].active.is_empty() || !st.pipes[p].queue.is_empty()
}

/// Starts one run-to-completion batch or one continuous step on `p`
/// at `now`, returning its completion instant (`None`: back to
/// sleep).
fn start_work(st: &mut ClusterSt, p: usize, now: SimTime) -> Option<SimTime> {
    if st.continuous {
        start_step(st, p, now)
    } else {
        start_batch(st, p, now)
    }
}

/// Completion bookkeeping of `p`'s in-flight batch/step at `done` —
/// one logical event in either granularity. Returns whether the pipe
/// should restart immediately.
fn complete_work(st: &mut ClusterSt, p: usize, done: SimTime) -> bool {
    st.events += 1;
    if st.continuous {
        complete_step(st, p, done)
    } else {
        complete_batch(st, p, done)
    }
}

/// Coalesced mode: starts work on `p` and parks its completion as a
/// state-held `(time, vseq)` boundary instead of a queue event. The
/// virtual sequence number is drawn at exactly the point the per-step
/// backend would issue its `schedule` call, so boundary keys compare
/// like per-step queue keys.
fn arm_boundary(st: &mut ClusterSt, p: usize, now: SimTime) {
    if let Some(done) = start_work(st, p, now) {
        let vseq = st.next_vseq;
        st.next_vseq += 1;
        st.pipes[p].boundary = Some((done, vseq));
    }
}

/// Per-step mode: a batch/step completion event.
fn complete_pipe(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, p: usize) {
    let done = ctx.now();
    if complete_work(st, p, done) {
        start_pipe(ctx, st, p);
    }
}

/// Kicks `p` when it is idle with work queued: one run-to-completion
/// batch or one continuous step. Per-step granularity schedules the
/// completion as its own queue event; coalesced granularity parks it
/// as a state-held boundary for the next epoch's drain.
fn start_pipe(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, p: usize) {
    let now = ctx.now();
    match st.granularity {
        StepGranularity::PerStep => {
            if let Some(done) = start_work(st, p, now) {
                ctx.schedule_at(done, move |ctx, st: &mut ClusterSt| {
                    complete_pipe(ctx, st, p);
                });
            }
        }
        StepGranularity::Coalesced => arm_boundary(st, p, now),
    }
}

/// The coalesced macro-step: replays every pending boundary whose
/// `(time, vseq)` key is strictly below `limit` (all of them when
/// `limit` is `None`), in the exact global order the per-step backend
/// would pop them — completion bookkeeping and the next batch/step
/// start run inline, with a min-scan over the pipes instead of a
/// priority-queue round-trip per step.
fn drain_boundaries(st: &mut ClusterSt, limit: Option<(SimTime, u64)>) {
    loop {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (p, pipe) in st.pipes.iter().enumerate() {
            if let Some((at, vseq)) = pipe.boundary {
                let better = match best {
                    None => true,
                    Some((bt, bv, _)) => (at, vseq) < (bt, bv),
                };
                if better {
                    best = Some((at, vseq, p));
                }
            }
        }
        let Some((at, vseq, p)) = best else { return };
        if let Some((lt, lv)) = limit {
            if (at, vseq) >= (lt, lv) {
                return;
            }
        }
        st.pipes[p].boundary = None;
        if complete_work(st, p, at) {
            arm_boundary(st, p, at);
        }
    }
}

/// Serves `num_requests` Poisson arrivals through a cluster of
/// `spec.pipelines` independent replicas of `server`'s pipeline,
/// dispatched by `spec.scheduler` and batched at the granularity
/// `spec.continuous` selects.
///
/// With one pipeline, round-robin dispatch, continuous batching off,
/// accept-all admission, and no deadlines this reproduces
/// [`run_online`]'s statistics bit for bit; the extra pipelines,
/// alternative dispatchers, admission policies, deadlines, and
/// step-granularity admission are strict generalizations on the same
/// [`ServiceModel`].
///
/// Request conservation and per-pipeline busy time are tracked with a
/// [`simaudit::Auditor`]; the resulting report (when auditing is
/// active) is attached to the returned [`ClusterReport`].
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_cluster(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
) -> Result<ClusterReport, HelmError> {
    let model = ServiceModel::calibrate(server, workload)?;
    let n = spec.pipelines.max(1);
    let pipes = (0..n).map(|_| Pipe::new(0)).collect();
    run_cluster_engine(
        vec![model],
        pipes,
        workload,
        arrivals,
        num_requests,
        spec,
        None,
    )
}

/// [`run_cluster`] with span collection forced on: returns the report
/// together with every served request's span tree. The report is
/// byte-identical to the untraced run.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_cluster_traced(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
) -> Result<(ClusterReport, Trace), HelmError> {
    let model = ServiceModel::calibrate(server, workload)?;
    let n = spec.pipelines.max(1);
    let pipes = (0..n).map(|_| Pipe::new(0)).collect();
    let mut trace = Trace::default();
    let report = run_cluster_engine(
        vec![model],
        pipes,
        workload,
        arrivals,
        num_requests,
        spec.with_trace(TraceMode::Spans),
        Some(&mut trace),
    )?;
    Ok((report, trace))
}

/// Serves `num_requests` Poisson arrivals through a **heterogeneous**
/// cluster: each `(server, count)` group contributes `count` replicas
/// of that server's pipeline, with the [`ServiceModel`] calibrated
/// once per group (the caller expresses "distinct configuration" by
/// the grouping). `spec.pipelines` is ignored; the cluster size is
/// the sum of the group counts.
///
/// The point of mixing: a latency-tuned small-batch replica and a
/// throughput-tuned large-batch replica behind one
/// [`SchedulerKind::LeastFinishTime`] or
/// [`SchedulerKind::DeadlineAware`] dispatcher serve mixed-SLO
/// traffic better than either homogeneous cluster — the dispatcher
/// prices each replica with its own model and routes accordingly.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`] runs;
/// returns [`HelmError::InvalidConfig`] when the groups contribute no
/// pipeline at all.
pub fn run_cluster_mix(
    groups: &[(&Server, usize)],
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
) -> Result<ClusterReport, HelmError> {
    run_cluster_mix_cached(
        groups,
        workload,
        arrivals,
        num_requests,
        spec,
        &mut CalibrationCache::new(),
    )
}

/// [`run_cluster_mix`] with span collection forced on: returns the
/// report together with every served request's span tree. The report
/// is byte-identical to the untraced run.
///
/// # Errors
///
/// Same contract as [`run_cluster_mix`].
pub fn run_cluster_mix_traced(
    groups: &[(&Server, usize)],
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
    cache: &mut CalibrationCache,
) -> Result<(ClusterReport, Trace), HelmError> {
    let mut models = Vec::with_capacity(groups.len());
    let mut pipes: Vec<Pipe> = Vec::new();
    for (g, (server, count)) in groups.iter().enumerate() {
        models.push(cache.get_or_calibrate(server, workload)?);
        pipes.extend((0..*count).map(|_| Pipe::new(g)));
    }
    if pipes.is_empty() {
        return Err(HelmError::InvalidConfig(
            "a cluster mix needs at least one pipeline",
        ));
    }
    let mut trace = Trace::default();
    let report = run_cluster_engine(
        models,
        pipes,
        workload,
        arrivals,
        num_requests,
        spec.with_trace(TraceMode::Spans),
        Some(&mut trace),
    )?;
    Ok((report, trace))
}

/// [`run_cluster_mix`] with the calibration memo held by the caller:
/// repeated runs over mixes drawn from the same replica
/// configurations (a capacity-planning search, a λ sweep) pay the two
/// calibration pipeline runs once per *distinct* configuration
/// instead of once per group per call. A warm cache makes the
/// per-call calibration cost zero; the simulation itself is
/// unchanged, so reports are bit-identical to the uncached path.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`] runs;
/// returns [`HelmError::InvalidConfig`] when the groups contribute no
/// pipeline at all.
pub fn run_cluster_mix_cached(
    groups: &[(&Server, usize)],
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
    cache: &mut CalibrationCache,
) -> Result<ClusterReport, HelmError> {
    let mut models = Vec::with_capacity(groups.len());
    let mut pipes: Vec<Pipe> = Vec::new();
    for (g, (server, count)) in groups.iter().enumerate() {
        models.push(cache.get_or_calibrate(server, workload)?);
        pipes.extend((0..*count).map(|_| Pipe::new(g)));
    }
    if pipes.is_empty() {
        return Err(HelmError::InvalidConfig(
            "a cluster mix needs at least one pipeline",
        ));
    }
    run_cluster_engine(models, pipes, workload, arrivals, num_requests, spec, None)
}

/// One arrival landing in the cluster (the registered arrival-span
/// handler, shared by both granularities): in coalesced mode first
/// replay every batch/step boundary ordered before this arrival's
/// `(time, vseq)` key, then dispatch, ledger, admission, queue, kick
/// the pipe if idle — and schedule the successor in the lazy arrival
/// chain.
fn fire_arrival(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt) {
    let Some((i, req, vseq)) = st.arrival_pending.take() else {
        return;
    };
    if st.granularity == StepGranularity::Coalesced {
        drain_boundaries(st, Some((req.at, vseq)));
    }
    st.events += 1;
    let now = ctx.now();
    let p = dispatch(st, i, req.deadline, now);
    st.audit.observe_time("cluster", now);
    st.audit.enqueued(&st.channels[p], 1);
    if !admit(st, p, &req, now) {
        st.audit.abandoned(&st.channels[p], 1);
        st.pipes[p].rejected += 1;
    } else {
        push_request(st, p, req);
        if st.pipes[p].idle {
            start_pipe(ctx, st, p);
        }
    }
    schedule_next_arrival(ctx, st, i + 1);
}

/// Draws arrival `i`'s instant and deadline and arms the arrival span
/// for it. Exactly one arrival is ever pending — the chain replaces
/// the seed code's up-front loop that boxed one closure per request
/// before the simulation started, which at a million requests
/// dominated both allocation and peak queue population. The virtual
/// sequence number is drawn here, at the same program point the
/// per-step backend sequences its queue pushes, so arrival keys and
/// boundary keys interleave identically across granularities. When
/// the stream is exhausted, coalesced mode arms the terminal drain
/// span at the earliest outstanding boundary so every in-flight
/// batch/step still completes.
fn schedule_next_arrival(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, i: usize) {
    if st.remaining == 0 {
        if st.granularity == StepGranularity::Coalesced {
            let earliest = st.pipes.iter().filter_map(|pipe| pipe.boundary).min();
            if let (Some((at, _)), Some(span)) = (earliest, st.drain_span) {
                ctx.schedule_span_at(at, span);
            }
        }
        return;
    }
    st.remaining -= 1;
    let at = st.arrivals.next_arrival();
    let deadline = st.deadliner.next(at);
    let vseq = st.next_vseq;
    st.next_vseq += 1;
    st.arrival_pending = Some((
        i,
        Req {
            at,
            admitted: at,
            deadline,
        },
        vseq,
    ));
    if let Some(span) = st.arrival_span {
        ctx.schedule_span_at(at, span);
    }
}

/// The shared cluster simulation: `pipes` (each bound to one of
/// `models`) serving Poisson arrivals under `spec`'s dispatch,
/// admission, deadline, and recording policies.
fn run_cluster_engine(
    models: Vec<ServiceModel>,
    pipes: Vec<Pipe>,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
    trace_out: Option<&mut Trace>,
) -> Result<ClusterReport, HelmError> {
    let n = pipes.len();
    let (queue_delay, e2e) = match spec.record {
        RecordMode::Full => (LatencyStats::full(), LatencyStats::full()),
        // Fixed-stream reservoir seeds: replacement draws must not
        // depend on the workload so aggregate runs replay bit for bit.
        RecordMode::Aggregate => (
            LatencyStats::sampled(SimRng::from_seed_and_stream(0, "cluster-queue-delay")),
            LatencyStats::sampled(SimRng::from_seed_and_stream(0, "cluster-e2e")),
        ),
    };
    let mut sim = Simulator::with_backend(
        ClusterSt {
            pipes,
            models,
            continuous: spec.continuous,
            scheduler: spec.scheduler,
            admission: spec.admission,
            record: spec.record,
            granularity: spec.granularity,
            queue_delay,
            e2e,
            batch_sizes: Vec::new(),
            last_completion: SimTime::ZERO,
            slo_violations: 0,
            met: 0,
            attribution: Attribution::default(),
            trace: spec.trace.enabled().then(Trace::default),
            audit: Auditor::capture(),
            arrivals: arrivals.clone(),
            deadliner: DeadlineAssigner::new(spec.deadlines),
            remaining: num_requests,
            member_pool: Vec::new(),
            channels: (0..n).map(req_channel).collect(),
            next_vseq: 0,
            events: 0,
            arrival_pending: None,
            arrival_span: None,
            drain_span: None,
        },
        spec.backend,
    );
    // Both granularities route arrivals through one registered span
    // (no per-arrival closure allocation); coalesced mode adds the
    // terminal drain span that flushes in-flight work after the last
    // arrival.
    let arrival_span = sim.register_span(fire_arrival);
    let drain_span = sim.register_span(|_, st: &mut ClusterSt| drain_boundaries(st, None));
    // Seed the lazy chain with arrival 0; each arrival schedules its
    // successor.
    let first = {
        let st = sim.state_mut();
        st.arrival_span = Some(arrival_span);
        st.drain_span = Some(drain_span);
        if st.remaining > 0 {
            st.remaining -= 1;
            let at = st.arrivals.next_arrival();
            let deadline = st.deadliner.next(at);
            let vseq = st.next_vseq;
            st.next_vseq += 1;
            st.arrival_pending = Some((
                0,
                Req {
                    at,
                    admitted: at,
                    deadline,
                },
                vseq,
            ));
            Some(at)
        } else {
            None
        }
    };
    let first_arrival = first.unwrap_or(SimTime::ZERO);
    if let Some(at) = first {
        sim.schedule_span_at(at, arrival_span);
    }
    sim.run_until(SimTime::from_secs(f64::MAX));
    let fired = sim.events_fired();
    let mut st = sim.run_checked()?;
    if let (Some(out), Some(collected)) = (trace_out, st.trace.take()) {
        *out = collected;
    }
    // `events` is a logical count (arrivals + batch/step completions)
    // so reports compare byte-for-byte across granularities; in
    // per-step mode every logical event is its own queue event, and
    // the two tallies must agree exactly.
    debug_assert!(st.granularity == StepGranularity::Coalesced || st.events == fired);
    let events = st.events;
    // Hand the advanced process back: successive cluster runs continue
    // the arrival stream exactly as successive `take` calls would.
    *arrivals = st.arrivals.clone();

    let makespan = st.last_completion.max(first_arrival) - first_arrival;
    let mut audit = st.audit;
    let mut per_pipeline = Vec::with_capacity(n);
    let mut util_sum = 0.0;
    let mut served = 0u64;
    let mut rejected = 0u64;
    let mut expired = 0u64;
    for (p, pipe) in st.pipes.iter().enumerate() {
        let utilization = busy_fraction(&mut audit, &format!("pipe{p}"), pipe.busy, makespan);
        util_sum += utilization;
        served += pipe.served;
        rejected += pipe.rejected;
        expired += pipe.expired;
        per_pipeline.push(PipelineStats {
            config: pipe.model,
            served: pipe.served,
            rejected: pipe.rejected,
            expired: pipe.expired,
            busy: pipe.busy,
            batches: pipe.batches,
            utilization,
        });
    }
    // Every admitted request completes, so the throughput base and
    // the queue-delay sample count must agree whatever the admission
    // policy sheds.
    debug_assert_eq!(served, st.queue_delay.count());
    let secs = makespan.as_secs().max(f64::MIN_POSITIVE);
    let tokens = served * workload.gen_len as u64;
    let tokens_met = st.met * workload.gen_len as u64;
    Ok(ClusterReport {
        served,
        rejected,
        expired,
        slo_violations: st.slo_violations,
        met: st.met,
        events,
        makespan,
        queue_delay: st.queue_delay,
        e2e_latency: st.e2e,
        batch_sizes: st.batch_sizes,
        utilization: util_sum / n as f64,
        tokens_per_s: tokens as f64 / secs,
        tokens_per_s_met: tokens_met as f64 / secs,
        attribution: st.attribution,
        per_pipeline,
        audit: audit.finish_if_active(),
    })
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::policy::Policy;
    use crate::system::SystemConfig;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;

    fn server(placement: PlacementKind, batch: u32) -> Server {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(placement)
            .with_compression(true)
            .with_batch_size(batch);
        Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let mut p = PoissonArrivals::new(10.0, 7);
        let times = p.take(4000);
        let span = times.last().unwrap().as_secs();
        let rate = 4000.0 / span;
        assert!((rate - 10.0).abs() < 0.6, "rate {rate}");
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn successive_takes_continue_the_process() {
        // The regression this guards: `take` once reset the clock to
        // zero on every call, so a second draw restarted the process
        // and handed out arrival times from the past.
        let mut split = PoissonArrivals::new(2.0, 13);
        let mut a = split.take(5);
        a.extend(split.take(5));
        let whole = PoissonArrivals::new(2.0, 13).take(10);
        assert_eq!(a, whole);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "arrivals must be strictly increasing across take calls: {a:?}"
        );
    }

    #[test]
    fn light_load_rarely_queues() {
        let s = server(PlacementKind::AllCpu, 8);
        // Mean inter-arrival (2000 s) >> service (~135 s): queueing is
        // the exception (short exponential gaps), not the rule.
        let mut arrivals = PoissonArrivals::new(1.0 / 2000.0, 1);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 12).unwrap();
        let service_ms = r.makespan.as_millis() / 12.0;
        assert!(
            r.mean_queue_delay_ms() < service_ms * 0.10,
            "queue {} vs service {service_ms}",
            r.mean_queue_delay_ms()
        );
        assert!(r.utilization < 0.25, "utilization {}", r.utilization);
        let singles = r.batch_sizes.iter().filter(|&&b| b == 1).count();
        assert!(singles * 2 > r.batch_sizes.len());
    }

    #[test]
    fn heavy_load_queues_and_fills_batches() {
        let s = server(PlacementKind::AllCpu, 44);
        // Arrivals far faster than service: batches fill to the cap.
        let mut arrivals = PoissonArrivals::new(5.0, 2);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 132).unwrap();
        assert!(r.batch_sizes.iter().skip(1).any(|&b| b == 44));
        assert!(r.mean_queue_delay_ms() > 1000.0);
        assert!(r.utilization > 0.95);
    }

    #[test]
    fn bigger_batches_sustain_higher_load() {
        // At an arrival rate the batch-8 baseline cannot sustain, the
        // batch-44 All-CPU server keeps end-to-end latency bounded.
        let ws = WorkloadSpec::paper_default();
        let lambda = 0.15; // req/s
        let n = 120;
        let small = run_online(
            &server(PlacementKind::Baseline, 8),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        let large = run_online(
            &server(PlacementKind::AllCpu, 44),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        assert!(
            large.e2e_percentile_ms(95.0) < small.e2e_percentile_ms(95.0) / 2.0,
            "p95 {} vs {}",
            large.e2e_percentile_ms(95.0),
            small.e2e_percentile_ms(95.0)
        );
        assert!(large.tokens_per_s > small.tokens_per_s * 0.9);
    }

    #[test]
    fn event_driven_variant_matches_the_loop() {
        // Two independent implementations of the same queueing
        // semantics: the hand-rolled loop and the simcore event
        // engine. They must agree on every statistic.
        let ws = WorkloadSpec::paper_default();
        for (placement, batch, lambda) in [
            (PlacementKind::AllCpu, 44u32, 0.15f64),
            (PlacementKind::Baseline, 8, 0.05),
            (PlacementKind::Helm, 4, 0.02),
        ] {
            let s = server(placement, batch);
            let a = run_online(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            let b = run_online_des(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            assert_eq!(a.batch_sizes, b.batch_sizes, "{placement} batches");
            assert!(
                (a.makespan.as_secs() - b.makespan.as_secs()).abs() < 1e-9,
                "{placement} makespan"
            );
            assert!(
                (a.mean_queue_delay_ms() - b.mean_queue_delay_ms()).abs() < 1e-6,
                "{placement} queue delay"
            );
            assert!(
                (a.e2e_percentile_ms(95.0) - b.e2e_percentile_ms(95.0)).abs() < 1e-6,
                "{placement} p95"
            );
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let s = server(PlacementKind::Helm, 4);
        let mut arrivals = PoissonArrivals::new(0.05, 9);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 20).unwrap();
        assert_eq!(r.served, 20);
        let batched: u32 = r.batch_sizes.iter().sum();
        assert_eq!(batched as usize, 20);
        assert_eq!(r.queue_delay.count(), 20);
        assert_eq!(r.e2e_latency.count(), 20);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn service_model_interpolates_between_calibration_points() {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let m = ServiceModel::calibrate(&s, &ws).unwrap();
        assert_eq!(m.max_batch(), 8);
        assert_eq!(m.gen_len(), ws.gen_len);
        // Totals at the calibration points match the reports.
        let full = s.run(&ws).unwrap();
        assert_eq!(m.total(8), full.total_time);
        // Interpolation is monotone between the points.
        assert!(m.total(1) <= m.total(4) && m.total(4) <= m.total(8));
        // The split is consistent with the total at both calibration
        // points: total ≈ ttft + (gen_len-1) * mean tbt.
        for b in [1u32, 8] {
            let rebuilt =
                m.prefill(b).as_secs() + (ws.gen_len - 1) as f64 * m.decode_step(b).as_secs();
            let total = m.total(b).as_secs();
            assert!(
                (rebuilt - total).abs() / total < 0.05,
                "batch {b}: split {rebuilt} vs total {total}"
            );
        }
    }

    #[test]
    fn single_pipeline_cluster_is_bit_identical_to_run_online() {
        // The acceptance bar for the cluster path: with one pipeline,
        // round-robin dispatch, and continuous batching off, every
        // statistic reproduces the hand-rolled loop exactly — same
        // floats, not merely close.
        let ws = WorkloadSpec::paper_default();
        for (placement, batch, lambda) in [
            (PlacementKind::Baseline, 8u32, 0.05f64),
            (PlacementKind::Helm, 4, 0.02),
            (PlacementKind::AllCpu, 44, 0.15),
        ] {
            let s = server(placement, batch);
            let loop_r = run_online(&s, &ws, &mut PoissonArrivals::new(lambda, 17), 50).unwrap();
            let cluster = run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(lambda, 17),
                50,
                ClusterSpec::new(1),
            )
            .unwrap();
            assert_eq!(cluster.batch_sizes, loop_r.batch_sizes, "{placement}");
            assert_eq!(
                cluster.makespan.as_secs().to_bits(),
                loop_r.makespan.as_secs().to_bits(),
                "{placement} makespan"
            );
            assert_eq!(
                cluster.queue_delay.samples(),
                loop_r.queue_delay.samples(),
                "{placement} queue delays"
            );
            assert_eq!(
                cluster.e2e_latency.percentile(95.0).unwrap().to_bits(),
                loop_r.e2e_latency.percentile(95.0).unwrap().to_bits(),
                "{placement} p95"
            );
            assert_eq!(
                cluster.utilization.to_bits(),
                loop_r.utilization.to_bits(),
                "{placement} utilization"
            );
        }
    }

    #[test]
    fn jsq_tracks_load_where_round_robin_is_blind() {
        // With identical replicas and smooth Poisson traffic the two
        // dispatchers perform comparably, but they are genuinely
        // different policies: round-robin splits by arrival parity
        // while JSQ reacts to transient imbalance, and neither loses
        // a request doing so.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let mk = |sched| {
            run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(0.08, 23),
                80,
                ClusterSpec::new(2).with_scheduler(sched),
            )
            .unwrap()
        };
        let rr = mk(SchedulerKind::RoundRobin);
        let jsq = mk(SchedulerKind::JoinShortestQueue);
        assert_eq!(rr.served, 80);
        assert_eq!(jsq.served, 80);
        // Round-robin alternates, so its per-pipeline split is exact.
        assert!(rr.per_pipeline.iter().all(|p| p.served == 40));
        // The dispatch decisions differ observably...
        assert_ne!(rr.batch_sizes, jsq.batch_sizes);
        // ...without JSQ giving up meaningful queueing performance.
        assert!(
            jsq.queue_delay.mean() <= rr.queue_delay.mean() * 1.25,
            "jsq {} vs rr {}",
            jsq.queue_delay.mean(),
            rr.queue_delay.mean()
        );
    }

    #[test]
    fn more_pipelines_absorb_a_saturating_rate() {
        // A λ that saturates one All-CPU pipeline is comfortably
        // absorbed by four: p95 latency collapses and throughput
        // scales with the replica count.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let lambda = 0.10;
        let one = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 5),
            80,
            ClusterSpec::new(1),
        )
        .unwrap();
        let four = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 5),
            80,
            ClusterSpec::new(4).with_scheduler(SchedulerKind::JoinShortestQueue),
        )
        .unwrap();
        assert!(one.utilization > 0.95, "N=1 util {}", one.utilization);
        assert!(
            four.e2e_percentile_ms(95.0) < one.e2e_percentile_ms(95.0) / 2.0,
            "p95 {} vs {}",
            four.e2e_percentile_ms(95.0),
            one.e2e_percentile_ms(95.0)
        );
        assert!(four.tokens_per_s > one.tokens_per_s * 1.5);
        assert_eq!(four.per_pipeline.len(), 4);
        let per_pipe_served: u64 = four.per_pipeline.iter().map(|p| p.served).sum();
        assert_eq!(per_pipe_served, 80);
    }

    #[test]
    fn continuous_batching_admits_mid_flight() {
        // Run-to-completion makes a late arrival wait out the whole
        // in-flight batch; continuous batching admits it at the next
        // step boundary, so its queueing delay collapses.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        // Moderate load: the pipeline is often mid-batch when a new
        // request lands, but no standing backlog builds up (at
        // saturation both modes are backlog-dominated and the
        // admission granularity stops mattering).
        let lambda = 1.0 / 300.0;
        let spec = ClusterSpec::new(1);
        let rtc = run_cluster(&s, &ws, &mut PoissonArrivals::new(lambda, 31), 40, spec).unwrap();
        let cont = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 31),
            40,
            spec.with_continuous(true),
        )
        .unwrap();
        assert_eq!(cont.served, 40);
        assert!(
            cont.queue_delay.mean() < rtc.queue_delay.mean() * 0.25,
            "continuous queue {} vs rtc {}",
            cont.queue_delay.mean(),
            rtc.queue_delay.mean()
        );
        // Every request still completes, and the audit balances.
        if let Some(audit) = &cont.audit {
            assert!(audit.is_clean(), "audit: {audit}");
            assert_eq!(audit.completed_with_prefix("requests:"), 40);
        }
    }

    #[test]
    fn cluster_audit_conserves_requests() {
        let s = server(PlacementKind::Helm, 4);
        let ws = WorkloadSpec::paper_default();
        simaudit::force_enable();
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.05, 41),
            30,
            ClusterSpec::new(3).with_scheduler(SchedulerKind::JoinShortestQueue),
        )
        .unwrap();
        let audit = r.audit.expect("auditing forced on");
        assert!(audit.is_clean(), "audit: {audit}");
        assert_eq!(audit.completed_with_prefix("requests:"), 30);
        assert_eq!(r.served, 30);
        assert_eq!(r.e2e_latency.count(), 30);
    }

    #[test]
    fn service_model_clamps_out_of_range_batches() {
        // Regression: `lerp` computed `batch - 1` unguarded — a u32
        // underflow for batch 0 (debug panic, release garbage) — and
        // silently extrapolated past the calibrated max batch.
        let s = server(PlacementKind::AllCpu, 8);
        let m = ServiceModel::calibrate(&s, &WorkloadSpec::paper_default()).unwrap();
        assert_eq!(m.total(0), m.total(1));
        assert_eq!(m.prefill(0), m.prefill(1));
        assert_eq!(m.decode_step(0), m.decode_step(1));
        assert_eq!(m.total(100), m.total(8));
        assert_eq!(m.prefill(100), m.prefill(8));
        assert_eq!(m.decode_step(100), m.decode_step(8));
        // In-range queries are untouched by the clamp.
        assert!(m.total(1) < m.total(8));
    }

    #[test]
    fn busy_overrun_is_a_finding_not_a_clamp() {
        // Regression: per-pipeline utilization was `.min(1.0)`-clamped,
        // silently masking over-accounted busy time. The raw ratio must
        // come through, and the overrun must surface as an audit
        // violation.
        let mut audit = Auditor::new();
        let util = busy_fraction(
            &mut audit,
            "pipe0",
            SimDuration::from_secs(6.0),
            SimDuration::from_secs(5.0),
        );
        assert!((util - 1.2).abs() < 1e-12, "want the raw ratio, got {util}");
        let report = audit.finish();
        assert!(!report.is_clean(), "busy > makespan must be a finding");
        // A healthy ratio stays finding-free.
        let mut audit = Auditor::new();
        let util = busy_fraction(
            &mut audit,
            "pipe0",
            SimDuration::from_secs(4.0),
            SimDuration::from_secs(5.0),
        );
        assert!((util - 0.8).abs() < 1e-12);
        assert!(audit.finish().is_clean());
    }

    #[test]
    fn throughput_counts_served_not_offered() {
        // Regression: tokens_per_s was computed from the offered
        // request count, overstating throughput the moment admission
        // control rejects anything.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.5, 47),
            60,
            ClusterSpec::new(1).with_admission(AdmissionPolicy::QueueCap(4)),
        )
        .unwrap();
        assert!(r.rejected > 0, "saturating load must trip the queue cap");
        assert_eq!(r.served + r.rejected, 60);
        assert_eq!(r.queue_delay.count(), r.served);
        assert_eq!(r.e2e_latency.count(), r.served);
        let from_served = (r.served * ws.gen_len as u64) as f64 / r.makespan.as_secs();
        assert_eq!(r.tokens_per_s.to_bits(), from_served.to_bits());
        let from_offered = (60 * ws.gen_len) as f64 / r.makespan.as_secs();
        assert!(r.tokens_per_s < from_offered);
    }

    #[test]
    fn fixed_slo_splits_met_from_violated() {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        // λ nearly twice the batch-8 capacity (~0.058 req/s) with an
        // SLO between the unloaded e2e (~137 s) and the saturated
        // tail: early requests meet it, backlogged ones violate it.
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.1, 51),
            40,
            ClusterSpec::new(1).with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(300.0))),
        )
        .unwrap();
        assert_eq!(r.served, 40);
        assert_eq!(r.met + r.slo_violations, r.served);
        assert!(
            r.met > 0 && r.slo_violations > 0,
            "met {} violated {}",
            r.met,
            r.slo_violations
        );
        let goodput = (r.met * ws.gen_len as u64) as f64 / r.makespan.as_secs();
        assert_eq!(r.tokens_per_s_met.to_bits(), goodput.to_bits());
        assert!(r.tokens_per_s_met < r.tokens_per_s);
        assert!(r.slo_attainment() < 1.0 && r.slo_attainment() > 0.0);
    }

    #[test]
    fn queue_cap_rejections_balance_the_ledger() {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        simaudit::force_enable();
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.5, 61),
            50,
            ClusterSpec::new(2)
                .with_scheduler(SchedulerKind::JoinShortestQueue)
                .with_admission(AdmissionPolicy::QueueCap(3)),
        )
        .unwrap();
        assert!(r.rejected > 0);
        assert_eq!(r.served + r.rejected, 50);
        let audit = r.audit.expect("auditing forced on");
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(audit.enqueued_with_prefix("requests:"), 50);
        assert_eq!(
            audit.completed_with_prefix("requests:") + audit.abandoned_with_prefix("requests:"),
            50
        );
        let per_pipe_rejected: u64 = r.per_pipeline.iter().map(|p| p.rejected).sum();
        assert_eq!(per_pipe_rejected, r.rejected);
    }

    #[test]
    fn deadline_aware_sheds_infeasible_requests() {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        simaudit::force_enable();
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.2, 53),
            50,
            ClusterSpec::new(1)
                .with_scheduler(SchedulerKind::DeadlineAware)
                .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(300.0))),
        )
        .unwrap();
        assert!(r.expired > 0, "saturating load must shed expiries");
        assert_eq!(r.rejected, 0, "admission is accept-all here");
        assert_eq!(r.served + r.expired, 50);
        assert_eq!(r.queue_delay.count(), r.served);
        let audit = r.audit.expect("auditing forced on");
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(audit.enqueued_with_prefix("requests:"), 50);
        assert_eq!(
            audit.completed_with_prefix("requests:") + audit.abandoned_with_prefix("requests:"),
            50
        );
    }

    #[test]
    fn deadline_feasible_admission_beats_accept_all_on_attainment() {
        // Rejecting provably-hopeless requests at arrival cannot hurt
        // SLO attainment: the requests it sheds were lost anyway, and
        // the ones it keeps see shorter queues.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let slo = DeadlineSpec::Fixed(SimDuration::from_secs(400.0));
        let base = ClusterSpec::new(1)
            .with_scheduler(SchedulerKind::LeastFinishTime)
            .with_deadlines(slo);
        let accept = run_cluster(&s, &ws, &mut PoissonArrivals::new(0.2, 67), 50, base).unwrap();
        let feasible = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.2, 67),
            50,
            base.with_admission(AdmissionPolicy::DeadlineFeasible),
        )
        .unwrap();
        assert!(feasible.rejected > 0, "saturation must trigger rejections");
        assert_eq!(feasible.served + feasible.rejected, 50);
        assert!(
            feasible.met >= accept.met,
            "feasible {} vs accept-all {}",
            feasible.met,
            accept.met
        );
        assert!(feasible.slo_violations <= accept.slo_violations);
    }

    #[test]
    fn deadline_aware_queue_is_edf_ordered() {
        let mut st = ClusterSt {
            pipes: vec![Pipe::new(0)],
            models: Vec::new(),
            continuous: false,
            scheduler: SchedulerKind::DeadlineAware,
            admission: AdmissionPolicy::AcceptAll,
            record: RecordMode::Full,
            queue_delay: LatencyStats::full(),
            e2e: LatencyStats::full(),
            batch_sizes: Vec::new(),
            last_completion: SimTime::ZERO,
            slo_violations: 0,
            met: 0,
            attribution: Attribution::default(),
            trace: None,
            audit: Auditor::capture(),
            arrivals: PoissonArrivals::new(1.0, 0),
            deadliner: DeadlineAssigner::new(DeadlineSpec::None),
            remaining: 0,
            member_pool: Vec::new(),
            channels: vec![req_channel(0)],
            granularity: StepGranularity::default(),
            next_vseq: 0,
            events: 0,
            arrival_pending: None,
            arrival_span: None,
            drain_span: None,
        };
        let t = SimTime::from_secs;
        let req = |at: f64, d: Option<f64>| Req {
            at: t(at),
            admitted: t(at),
            deadline: d.map(t),
        };
        push_request(&mut st, 0, req(0.0, None));
        push_request(&mut st, 0, req(1.0, Some(50.0)));
        push_request(&mut st, 0, req(2.0, Some(10.0)));
        push_request(&mut st, 0, req(3.0, Some(50.0)));
        let order: Vec<f64> = st.pipes[0].queue.iter().map(|r| r.at.as_secs()).collect();
        // Tightest deadline first, FIFO among equal deadlines,
        // deadline-less requests last.
        assert_eq!(order, vec![2.0, 1.0, 3.0, 0.0]);
    }

    /// Hand-priced service model with exact binary-float durations,
    /// so span boundaries land on exact ticks the epoch edge-case
    /// tests below can collide with deliberately.
    fn toy_model(max_batch: u32) -> ServiceModel {
        ServiceModel {
            max_batch,
            gen_len: 2,
            t1: 10.0,
            tn: 16.0,
            ttft1: 2.0,
            ttftn: 4.0,
            tbt1: 1.0,
            tbtn: 2.0,
            xfer1: 0.5,
            xfern: 0.5,
        }
    }

    fn toy_cluster(granularity: StepGranularity, scheduler: SchedulerKind) -> ClusterSt {
        ClusterSt {
            pipes: vec![Pipe::new(0)],
            models: vec![toy_model(2)],
            continuous: false,
            scheduler,
            admission: AdmissionPolicy::AcceptAll,
            record: RecordMode::Full,
            queue_delay: LatencyStats::full(),
            e2e: LatencyStats::full(),
            batch_sizes: Vec::new(),
            last_completion: SimTime::ZERO,
            slo_violations: 0,
            met: 0,
            attribution: Attribution::default(),
            trace: None,
            audit: Auditor::capture(),
            arrivals: PoissonArrivals::new(1.0, 0),
            deadliner: DeadlineAssigner::new(DeadlineSpec::None),
            remaining: 0,
            member_pool: Vec::new(),
            channels: vec![req_channel(0)],
            granularity,
            next_vseq: 0,
            events: 0,
            arrival_pending: None,
            arrival_span: None,
            drain_span: None,
        }
    }

    #[test]
    fn deadline_expiring_mid_span_sheds_identically_across_granularities() {
        // A request's deadline (t = 5) expires strictly inside an
        // in-flight span ([0, 10]): neither granularity may act on it
        // until the epoch boundary, where DeadlineAware admission
        // sheds it as expired. Both granularities must agree on every
        // counter and balance the audit ledger.
        simaudit::force_enable();
        let run = |granularity| {
            let t = SimTime::from_secs;
            let mut sim = Simulator::new(toy_cluster(granularity, SchedulerKind::DeadlineAware));
            let drain = sim.register_span(|_, st: &mut ClusterSt| drain_boundaries(st, None));
            sim.state_mut().drain_span = Some(drain);
            sim.schedule_at(t(0.0), move |ctx, st: &mut ClusterSt| {
                st.audit.enqueued(&st.channels[0], 1);
                push_request(
                    st,
                    0,
                    Req {
                        at: t(0.0),
                        admitted: t(0.0),
                        deadline: Some(t(100.0)),
                    },
                );
                start_pipe(ctx, st, 0);
            });
            sim.schedule_at(t(1.0), move |ctx, st: &mut ClusterSt| {
                st.audit.enqueued(&st.channels[0], 1);
                push_request(
                    st,
                    0,
                    Req {
                        at: t(1.0),
                        admitted: t(1.0),
                        deadline: Some(t(5.0)),
                    },
                );
                // The span is in flight and outlives the deadline:
                // the shed decision can only happen at its boundary.
                assert!(!st.pipes[0].idle);
                assert!(t(5.0) < st.pipes[0].free_at);
                if st.granularity == StepGranularity::Coalesced {
                    let (at, _) = st.pipes[0].boundary.expect("span armed");
                    ctx.schedule_span_at(at, st.drain_span.expect("drain registered"));
                }
            });
            let st = sim.run_checked().expect("no engine fault");
            assert_eq!(st.pipes[0].served, 1);
            assert_eq!(st.pipes[0].expired, 1);
            assert_eq!(st.met, 1);
            assert_eq!(st.slo_violations, 0);
            let audit = st.audit.finish();
            assert!(audit.is_clean(), "audit:\n{audit}");
            assert_eq!(audit.enqueued_with_prefix("requests:"), 2);
            assert_eq!(audit.completed_with_prefix("requests:"), 1);
            assert_eq!(audit.abandoned_with_prefix("requests:"), 1);
            (st.events, st.e2e.samples().to_vec(), st.batch_sizes)
        };
        assert_eq!(
            run(StepGranularity::PerStep),
            run(StepGranularity::Coalesced)
        );
    }

    #[test]
    fn arrival_on_span_boundary_tick_orders_after_the_completion() {
        // An arrival lands on the exact instant a span completes. The
        // completion was sequenced first (smaller seq at the same
        // time), so in both granularities the batch finishes before
        // the arrival is admitted: the arrival sees an idle pipe and
        // starts its own batch at the boundary tick.
        simaudit::force_enable();
        let run = |granularity| {
            let t = SimTime::from_secs;
            let mut sim =
                Simulator::new(toy_cluster(granularity, SchedulerKind::JoinShortestQueue));
            let drain = sim.register_span(|_, st: &mut ClusterSt| drain_boundaries(st, None));
            sim.state_mut().drain_span = Some(drain);
            sim.schedule_at(t(0.0), move |ctx, st: &mut ClusterSt| {
                st.audit.enqueued(&st.channels[0], 1);
                push_request(
                    st,
                    0,
                    Req {
                        at: t(0.0),
                        admitted: t(0.0),
                        deadline: None,
                    },
                );
                // Arms the span [0, 10] — per-step as a queue event,
                // coalesced as the boundary key (10, vseq 0).
                start_pipe(ctx, st, 0);
                // Mimic the arrival chain for an arrival at exactly
                // t = 10: its vseq is drawn *after* the span was
                // armed, precisely where schedule_next_arrival draws
                // it, so the boundary precedes it in (time, seq)
                // order.
                let vseq = st.next_vseq;
                st.next_vseq += 1;
                ctx.schedule_at(t(10.0), move |ctx, st: &mut ClusterSt| {
                    if st.granularity == StepGranularity::Coalesced {
                        drain_boundaries(st, Some((t(10.0), vseq)));
                    }
                    assert!(
                        st.pipes[0].idle,
                        "the tied completion must order before the arrival"
                    );
                    assert_eq!(st.pipes[0].served, 1);
                    st.audit.enqueued(&st.channels[0], 1);
                    push_request(
                        st,
                        0,
                        Req {
                            at: t(10.0),
                            admitted: t(10.0),
                            deadline: None,
                        },
                    );
                    start_pipe(ctx, st, 0);
                    if st.granularity == StepGranularity::Coalesced {
                        let (at, _) = st.pipes[0].boundary.expect("second span armed");
                        ctx.schedule_span_at(at, st.drain_span.expect("drain registered"));
                    }
                });
            });
            let st = sim.run_checked().expect("no engine fault");
            assert_eq!(st.pipes[0].served, 2);
            assert_eq!(st.last_completion, t(20.0));
            let audit = st.audit.finish();
            assert!(audit.is_clean(), "audit:\n{audit}");
            assert_eq!(audit.completed_with_prefix("requests:"), 2);
            (
                st.events,
                st.batch_sizes,
                st.queue_delay.samples().to_vec(),
                st.e2e.samples().to_vec(),
            )
        };
        let step = run(StepGranularity::PerStep);
        assert_eq!(step.1, vec![1, 1], "two singleton batches");
        assert_eq!(
            step.2,
            vec![0.0, 0.0],
            "no queueing on either side of the tick"
        );
        assert_eq!(step, run(StepGranularity::Coalesced));
    }

    #[test]
    fn boundary_key_equal_to_limit_is_not_drained() {
        // The drain limit is strict: a boundary whose (time, vseq) key
        // *equals* the epoch's key stays parked — exactly as the
        // per-step queue would pop the epoch's own event first.
        simaudit::force_enable();
        let t = SimTime::from_secs;
        let mut st = toy_cluster(StepGranularity::Coalesced, SchedulerKind::JoinShortestQueue);
        st.audit.enqueued(&st.channels[0], 1);
        push_request(
            &mut st,
            0,
            Req {
                at: SimTime::ZERO,
                admitted: SimTime::ZERO,
                deadline: None,
            },
        );
        st.next_vseq = 5;
        arm_boundary(&mut st, 0, SimTime::ZERO);
        assert_eq!(st.pipes[0].boundary, Some((t(10.0), 5)));
        drain_boundaries(&mut st, Some((t(10.0), 5)));
        assert!(
            st.pipes[0].boundary.is_some(),
            "a boundary tied with the limit key must not fire"
        );
        drain_boundaries(&mut st, Some((t(10.0), 6)));
        assert!(st.pipes[0].boundary.is_none());
        assert_eq!(st.pipes[0].served, 1);
        let audit = st.audit.finish();
        assert!(audit.is_clean(), "audit:\n{audit}");
    }

    #[test]
    fn lazy_deadline_assignment_matches_batch() {
        // The streaming assigner must replay the batch assigner's
        // draws exactly — the lazy arrival chain depends on it.
        let specs = [
            DeadlineSpec::None,
            DeadlineSpec::Fixed(SimDuration::from_secs(12.0)),
            DeadlineSpec::Bimodal {
                tight: SimDuration::from_secs(5.0),
                loose: SimDuration::from_secs(60.0),
                tight_fraction: 0.3,
                seed: 9,
            },
        ];
        let times = PoissonArrivals::new(1.0, 4).take(200);
        for spec in specs {
            let batch = spec.assign(&times);
            let mut assigner = DeadlineAssigner::new(spec);
            let lazy: Vec<_> = times.iter().map(|&t| assigner.next(t)).collect();
            assert_eq!(batch, lazy, "{spec:?}");
        }
    }

    #[test]
    fn cluster_runs_continue_the_arrival_process() {
        // The engine draws arrivals lazily from a clone of the
        // caller's process and must hand the advanced clock back —
        // two cluster runs consume the stream exactly like two takes.
        let s = server(PlacementKind::Helm, 4);
        let ws = WorkloadSpec::paper_default();
        let mut a = PoissonArrivals::new(0.05, 77);
        let _ = run_cluster(&s, &ws, &mut a, 10, ClusterSpec::new(1)).unwrap();
        let mut b = PoissonArrivals::new(0.05, 77);
        let _ = b.take(10);
        assert_eq!(a.take(5), b.take(5));
    }

    #[test]
    fn aggregate_mode_matches_full_aggregates() {
        // RecordMode::Aggregate skips the per-request sample vectors;
        // everything it still reports must agree with the Full run —
        // exactly for counts, makespan, utilization, and (below the
        // reservoir capacity) percentiles.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let spec = ClusterSpec::new(2).with_scheduler(SchedulerKind::JoinShortestQueue);
        let full = run_cluster(&s, &ws, &mut PoissonArrivals::new(0.08, 81), 80, spec).unwrap();
        let agg = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.08, 81),
            80,
            spec.with_record(RecordMode::Aggregate),
        )
        .unwrap();
        assert_eq!(agg.served, full.served);
        assert_eq!(agg.events, full.events);
        assert_eq!(agg.queue_delay.count(), full.queue_delay.count());
        assert_eq!(agg.e2e_latency.count(), full.e2e_latency.count());
        assert!(agg.batch_sizes.is_empty(), "aggregate keeps no batch log");
        assert!(!full.batch_sizes.is_empty());
        assert_eq!(
            agg.makespan.as_secs().to_bits(),
            full.makespan.as_secs().to_bits()
        );
        assert_eq!(agg.utilization.to_bits(), full.utilization.to_bits());
        assert_eq!(agg.tokens_per_s.to_bits(), full.tokens_per_s.to_bits());
        // Streaming mean vs compensated-sum mean: same samples, only
        // accumulation order differs.
        let rel = (agg.queue_delay.mean() - full.queue_delay.mean()).abs()
            / full.queue_delay.mean().max(f64::MIN_POSITIVE);
        assert!(rel < 1e-9, "aggregate mean drifted: rel {rel}");
        // 80 samples fit the reservoir, so the percentile is exact.
        assert_eq!(
            agg.e2e_latency.percentile(95.0).unwrap().to_bits(),
            full.e2e_latency.percentile(95.0).unwrap().to_bits()
        );
    }

    #[test]
    fn scheduler_backends_agree_on_cluster_reports() {
        // Calendar queue vs binary heap: one (time, seq) total order,
        // so the whole report — floats included — must match byte for
        // byte in both recording modes.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        for record in [RecordMode::Full, RecordMode::Aggregate] {
            let spec = ClusterSpec::new(2)
                .with_scheduler(SchedulerKind::JoinShortestQueue)
                .with_continuous(true)
                .with_record(record);
            let cal = run_cluster(&s, &ws, &mut PoissonArrivals::new(0.1, 71), 60, spec).unwrap();
            let heap = run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(0.1, 71),
                60,
                spec.with_backend(QueueBackend::Heap),
            )
            .unwrap();
            assert_eq!(cal.events, heap.events, "{record:?}");
            assert_eq!(format!("{cal:?}"), format!("{heap:?}"), "{record:?}");
        }
    }

    #[test]
    fn granularities_agree_on_cluster_reports() {
        // Macro-stepped (coalesced) boundaries replay the per-step
        // queue's (time, seq) total order exactly, so the whole report
        // — floats, sample logs, reservoir draws — must match byte for
        // byte in every mode combination, including the deadline-shed
        // and run-to-completion paths.
        let helm = server(PlacementKind::Helm, 4);
        let allcpu = server(PlacementKind::AllCpu, 44);
        let ws = WorkloadSpec::paper_default();
        for continuous in [false, true] {
            for record in [RecordMode::Full, RecordMode::Aggregate] {
                let spec = ClusterSpec::new(1)
                    .with_scheduler(SchedulerKind::DeadlineAware)
                    .with_deadlines(DeadlineSpec::Fixed(SimDuration::from_secs(400.0)))
                    .with_continuous(continuous)
                    .with_record(record);
                let groups = [(&helm, 1usize), (&allcpu, 2usize)];
                let step = run_cluster_mix(
                    &groups,
                    &ws,
                    &mut PoissonArrivals::new(0.1, 71),
                    60,
                    spec.with_granularity(StepGranularity::PerStep),
                )
                .unwrap();
                let coal = run_cluster_mix(
                    &groups,
                    &ws,
                    &mut PoissonArrivals::new(0.1, 71),
                    60,
                    spec.with_granularity(StepGranularity::Coalesced),
                )
                .unwrap();
                assert_eq!(
                    format!("{step:?}"),
                    format!("{coal:?}"),
                    "continuous={continuous} {record:?}"
                );
            }
        }
    }

    #[test]
    fn granularity_parse_round_trips() {
        for g in [StepGranularity::PerStep, StepGranularity::Coalesced] {
            assert_eq!(g.as_str().parse::<StepGranularity>().unwrap(), g);
            assert_eq!(g.to_string(), g.as_str());
        }
        assert_eq!(
            "macro".parse::<StepGranularity>().unwrap(),
            StepGranularity::Coalesced
        );
        assert_eq!(
            "step".parse::<StepGranularity>().unwrap(),
            StepGranularity::PerStep
        );
        assert!("fine".parse::<StepGranularity>().is_err());
        assert_eq!(StepGranularity::default(), StepGranularity::Coalesced);
    }

    #[test]
    fn mix_cluster_labels_configs_and_conserves() {
        let helm = server(PlacementKind::Helm, 4);
        let allcpu = server(PlacementKind::AllCpu, 44);
        let ws = WorkloadSpec::paper_default();
        simaudit::force_enable();
        let r = run_cluster_mix(
            &[(&helm, 1), (&allcpu, 2)],
            &ws,
            &mut PoissonArrivals::new(0.1, 59),
            60,
            ClusterSpec::new(1).with_scheduler(SchedulerKind::LeastFinishTime),
        )
        .unwrap();
        assert_eq!(r.per_pipeline.len(), 3);
        assert_eq!(r.per_pipeline[0].config, 0);
        assert_eq!(r.per_pipeline[1].config, 1);
        assert_eq!(r.per_pipeline[2].config, 1);
        assert_eq!(r.served, 60);
        let audit = r.audit.expect("auditing forced on");
        assert!(audit.is_clean(), "{audit}");
        assert_eq!(audit.completed_with_prefix("requests:"), 60);
        // Under least-finish-time more than one replica class does
        // real work at this load.
        assert!(
            r.per_pipeline.iter().filter(|p| p.served > 0).count() >= 2,
            "per-pipeline served: {:?}",
            r.per_pipeline.iter().map(|p| p.served).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scheduler_and_admission_parse_round_trip() {
        for s in [
            SchedulerKind::RoundRobin,
            SchedulerKind::JoinShortestQueue,
            SchedulerKind::LeastFinishTime,
            SchedulerKind::DeadlineAware,
        ] {
            assert_eq!(s.as_str().parse::<SchedulerKind>().unwrap(), s);
            assert_eq!(s.to_string(), s.as_str());
        }
        assert_eq!(
            "cap:7".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::QueueCap(7)
        );
        assert_eq!(
            "deadline".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::DeadlineFeasible
        );
        assert_eq!(
            "accept".parse::<AdmissionPolicy>().unwrap(),
            AdmissionPolicy::AcceptAll
        );
        assert_eq!(AdmissionPolicy::QueueCap(7).to_string(), "cap:7");
        assert!("bogus".parse::<AdmissionPolicy>().is_err());
        assert!("cap:x".parse::<AdmissionPolicy>().is_err());
        assert!("nope".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn calibration_cache_runs_once_per_distinct_config() {
        // The regression this guards: `run_cluster_mix` used to
        // recalibrate every group on every call, so a search probing
        // the same templates hundreds of times paid two pipeline runs
        // per group per probe.
        let helm = server(PlacementKind::Helm, 4);
        let allcpu = server(PlacementKind::AllCpu, 44);
        let ws = WorkloadSpec::paper_default();
        let spec = ClusterSpec::new(1).with_scheduler(SchedulerKind::LeastFinishTime);
        let mut cache = CalibrationCache::new();
        // The HeLM config appears in two groups of the same mix, and
        // the whole mix is run three times: still two calibrations.
        for _ in 0..3 {
            let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 1), (&helm, 1)];
            let mut arrivals = PoissonArrivals::new(0.05, 9);
            run_cluster_mix_cached(groups, &ws, &mut arrivals, 10, spec, &mut cache).unwrap();
        }
        assert_eq!(cache.calibrations(), 2);
        assert_eq!(cache.len(), 2);
        // A warm cache changes nothing about the simulation itself:
        // the cached run is bit-identical to the uncached path.
        let groups: &[(&Server, usize)] = &[(&helm, 1), (&allcpu, 1)];
        let cached = run_cluster_mix_cached(
            groups,
            &ws,
            &mut PoissonArrivals::new(0.05, 9),
            20,
            spec,
            &mut cache,
        )
        .unwrap();
        let fresh =
            run_cluster_mix(groups, &ws, &mut PoissonArrivals::new(0.05, 9), 20, spec).unwrap();
        assert_eq!(format!("{cached:?}"), format!("{fresh:?}"));
        assert_eq!(cache.calibrations(), 2, "warm run must not recalibrate");
    }
}
