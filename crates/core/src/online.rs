//! Online (request-level) serving simulation.
//!
//! The paper evaluates steady-state batches; its conclusion frames
//! the real deployment question — "automatically make
//! latency/throughput tradeoffs based on desired quality of service
//! requirements" (§VII). This module provides the missing serving
//! layer: requests arrive continuously (Poisson), queue, and are
//! ground through the pipeline in batches of at most the policy's
//! batch size. Per-request queueing delay and end-to-end latency then
//! expose the QoS consequences of each placement policy: a bigger
//! batch (All-CPU) sustains higher arrival rates, a balanced pipeline
//! (HeLM) serves each batch faster.

use crate::error::HelmError;
use crate::server::Server;
use simcore::rng::SimRng;
use simcore::stats::SeriesStats;
use simcore::time::{SimDuration, SimTime};
use workload::WorkloadSpec;

/// A Poisson arrival process.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_s: f64,
    rng: SimRng,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_s` requests/second, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "invalid arrival rate"
        );
        PoissonArrivals {
            rate_per_s,
            rng: SimRng::from_seed_and_stream(seed, "poisson-arrivals"),
        }
    }

    /// The first `n` arrival instants.
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
                t += -u.ln() / self.rate_per_s;
                SimTime::from_secs(t)
            })
            .collect()
    }
}

/// Per-request and aggregate results of an online run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Requests served.
    pub served: usize,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Queueing delays (arrival → batch start), seconds.
    pub queue_delay: SeriesStats,
    /// End-to-end latencies (arrival → last token), seconds.
    pub e2e_latency: SeriesStats,
    /// Batch sizes actually formed.
    pub batch_sizes: Vec<u32>,
    /// Fraction of the makespan the pipeline was busy.
    pub utilization: f64,
    /// Sustained output-token throughput over the makespan.
    pub tokens_per_s: f64,
}

impl OnlineReport {
    /// Mean queueing delay in milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        SimDuration::from_secs(self.queue_delay.mean()).as_millis()
    }

    /// A latency percentile (end-to-end) in milliseconds.
    pub fn e2e_percentile_ms(&self, p: f64) -> f64 {
        SimDuration::from_secs(self.e2e_latency.percentile(p).unwrap_or(0.0)).as_millis()
    }
}

/// Serves `num_requests` Poisson arrivals through `server`, forming
/// batches of at most the policy's batch size from whatever is queued
/// when the pipeline frees up (run-to-completion batching, FlexGen
/// style — no continuous batching).
///
/// The per-batch service time is interpolated from two pipeline runs
/// (batch 1 and the policy batch) rather than re-simulated per batch,
/// keeping λ-sweeps cheap while preserving the batch-size dependence
/// of prefill.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    let max_batch = server.policy().effective_batch();
    // Calibrate service times at the batch extremes.
    let full = server.run(workload)?;
    let single = if max_batch > 1 {
        let one = Server::new(
            server.system().clone(),
            server.model().clone(),
            server
                .policy()
                .clone()
                .with_batch_size(1)
                .with_gpu_batches(1),
        )?;
        one.run(workload)?
    } else {
        full.clone()
    };
    let service_time = |batch: u32| -> SimDuration {
        if max_batch <= 1 {
            return full.total_time;
        }
        // Linear interpolation in batch between the two calibrated
        // totals (decode is batch-flat; prefill grows with batch).
        let t1 = single.total_time.as_secs();
        let tn = full.total_time.as_secs();
        let frac = f64::from(batch - 1) / f64::from(max_batch - 1);
        SimDuration::from_secs(t1 + frac * (tn - t1))
    };

    let times = arrivals.take(num_requests);
    let mut queue_delay = SeriesStats::new();
    let mut e2e = SeriesStats::new();
    let mut batch_sizes = Vec::new();
    let mut busy = SimDuration::ZERO;

    let mut next = 0usize;
    let mut pipeline_free = SimTime::ZERO;
    let mut last_completion = SimTime::ZERO;
    while next < times.len() {
        // The batch starts when the pipeline is free and at least one
        // request has arrived.
        let start = pipeline_free.max(times[next]);
        // Everyone who has arrived by then joins, up to the cap.
        let mut batch = 0u32;
        while next < times.len() && times[next] <= start && batch < max_batch {
            queue_delay.add((start - times[next]).as_secs());
            batch += 1;
            next += 1;
        }
        let service = service_time(batch);
        let done = start + service;
        // All requests in the batch finish together (static batch).
        for i in 0..batch as usize {
            e2e.add((done - times[next - batch as usize + i]).as_secs());
        }
        busy += service;
        batch_sizes.push(batch);
        pipeline_free = done;
        last_completion = done;
    }

    let first_arrival = times.first().copied().unwrap_or(SimTime::ZERO);
    let makespan = last_completion.max(first_arrival) - first_arrival;
    let tokens = num_requests as u64 * workload.gen_len as u64;
    Ok(OnlineReport {
        served: num_requests,
        makespan,
        queue_delay,
        e2e_latency: e2e,
        batch_sizes,
        utilization: if makespan > SimDuration::ZERO {
            (busy / makespan).min(1.0)
        } else {
            0.0
        },
        tokens_per_s: tokens as f64 / makespan.as_secs().max(f64::MIN_POSITIVE),
    })
}

/// Event-driven variant of [`run_online`], built on
/// [`simcore::Simulator`]: arrivals and batch completions are
/// scheduled events rather than a hand-rolled loop. Semantically
/// identical (the test suite cross-validates the two); useful as the
/// extension point for richer serving policies (deadlines,
/// preemption, multiple pipelines).
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online_des(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    use simcore::engine::{Context, Simulator};
    use std::collections::VecDeque;

    let max_batch = server.policy().effective_batch();
    let full = server.run(workload)?;
    let single = if max_batch > 1 {
        Server::new(
            server.system().clone(),
            server.model().clone(),
            server
                .policy()
                .clone()
                .with_batch_size(1)
                .with_gpu_batches(1),
        )?
        .run(workload)?
    } else {
        full.clone()
    };
    let t1 = single.total_time.as_secs();
    let tn = full.total_time.as_secs();

    struct St {
        queue: VecDeque<SimTime>,
        idle: bool,
        max_batch: u32,
        t1: f64,
        tn: f64,
        queue_delay: SeriesStats,
        e2e: SeriesStats,
        batch_sizes: Vec<u32>,
        busy: SimDuration,
        last_completion: SimTime,
    }

    fn service(st: &St, batch: u32) -> SimDuration {
        if st.max_batch <= 1 {
            return SimDuration::from_secs(st.tn);
        }
        let frac = f64::from(batch - 1) / f64::from(st.max_batch - 1);
        SimDuration::from_secs(st.t1 + frac * (st.tn - st.t1))
    }

    fn start_batch(ctx: &mut Context<St>, st: &mut St) {
        debug_assert!(st.idle && !st.queue.is_empty());
        st.idle = false;
        let now = ctx.now();
        let mut members = Vec::new();
        while members.len() < st.max_batch as usize {
            match st.queue.pop_front() {
                Some(at) if at <= now => {
                    st.queue_delay.add((now - at).as_secs());
                    members.push(at);
                }
                Some(at) => {
                    st.queue.push_front(at);
                    break;
                }
                None => break,
            }
        }
        let batch = members.len() as u32;
        st.batch_sizes.push(batch);
        let dur = service(st, batch);
        st.busy += dur;
        ctx.schedule_in(dur, move |ctx, st: &mut St| {
            let done = ctx.now();
            for at in &members {
                st.e2e.add((done - *at).as_secs());
            }
            st.last_completion = done;
            st.idle = true;
            if !st.queue.is_empty() {
                start_batch(ctx, st);
            }
        });
    }

    let times = arrivals.take(num_requests);
    let first_arrival = times.first().copied().unwrap_or(SimTime::ZERO);
    let mut sim = Simulator::new(St {
        queue: VecDeque::new(),
        idle: true,
        max_batch,
        t1,
        tn,
        queue_delay: SeriesStats::new(),
        e2e: SeriesStats::new(),
        batch_sizes: Vec::new(),
        busy: SimDuration::ZERO,
        last_completion: SimTime::ZERO,
    });
    for &at in &times {
        sim.schedule_at(at, move |ctx, st: &mut St| {
            st.queue.push_back(at);
            if st.idle {
                start_batch(ctx, st);
            }
        });
    }
    let st = sim.run();
    let makespan = st.last_completion.max(first_arrival) - first_arrival;
    let tokens = num_requests as u64 * workload.gen_len as u64;
    Ok(OnlineReport {
        served: num_requests,
        makespan,
        queue_delay: st.queue_delay,
        e2e_latency: st.e2e,
        batch_sizes: st.batch_sizes,
        utilization: if makespan > SimDuration::ZERO {
            (st.busy / makespan).min(1.0)
        } else {
            0.0
        },
        tokens_per_s: tokens as f64 / makespan.as_secs().max(f64::MIN_POSITIVE),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::policy::Policy;
    use crate::system::SystemConfig;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;

    fn server(placement: PlacementKind, batch: u32) -> Server {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(placement)
            .with_compression(true)
            .with_batch_size(batch);
        Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let mut p = PoissonArrivals::new(10.0, 7);
        let times = p.take(4000);
        let span = times.last().unwrap().as_secs();
        let rate = 4000.0 / span;
        assert!((rate - 10.0).abs() < 0.6, "rate {rate}");
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn light_load_rarely_queues() {
        let s = server(PlacementKind::AllCpu, 8);
        // Mean inter-arrival (2000 s) >> service (~135 s): queueing is
        // the exception (short exponential gaps), not the rule.
        let mut arrivals = PoissonArrivals::new(1.0 / 2000.0, 1);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 12).unwrap();
        let service_ms = r.makespan.as_millis() / 12.0;
        assert!(
            r.mean_queue_delay_ms() < service_ms * 0.10,
            "queue {} vs service {service_ms}",
            r.mean_queue_delay_ms()
        );
        assert!(r.utilization < 0.25, "utilization {}", r.utilization);
        let singles = r.batch_sizes.iter().filter(|&&b| b == 1).count();
        assert!(singles * 2 > r.batch_sizes.len());
    }

    #[test]
    fn heavy_load_queues_and_fills_batches() {
        let s = server(PlacementKind::AllCpu, 44);
        // Arrivals far faster than service: batches fill to the cap.
        let mut arrivals = PoissonArrivals::new(5.0, 2);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 132).unwrap();
        assert!(r.batch_sizes.iter().skip(1).any(|&b| b == 44));
        assert!(r.mean_queue_delay_ms() > 1000.0);
        assert!(r.utilization > 0.95);
    }

    #[test]
    fn bigger_batches_sustain_higher_load() {
        // At an arrival rate the batch-8 baseline cannot sustain, the
        // batch-44 All-CPU server keeps end-to-end latency bounded.
        let ws = WorkloadSpec::paper_default();
        let lambda = 0.15; // req/s
        let n = 120;
        let small = run_online(
            &server(PlacementKind::Baseline, 8),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        let large = run_online(
            &server(PlacementKind::AllCpu, 44),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        assert!(
            large.e2e_percentile_ms(95.0) < small.e2e_percentile_ms(95.0) / 2.0,
            "p95 {} vs {}",
            large.e2e_percentile_ms(95.0),
            small.e2e_percentile_ms(95.0)
        );
        assert!(large.tokens_per_s > small.tokens_per_s * 0.9);
    }

    #[test]
    fn event_driven_variant_matches_the_loop() {
        // Two independent implementations of the same queueing
        // semantics: the hand-rolled loop and the simcore event
        // engine. They must agree on every statistic.
        let ws = WorkloadSpec::paper_default();
        for (placement, batch, lambda) in [
            (PlacementKind::AllCpu, 44u32, 0.15f64),
            (PlacementKind::Baseline, 8, 0.05),
            (PlacementKind::Helm, 4, 0.02),
        ] {
            let s = server(placement, batch);
            let a = run_online(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            let b = run_online_des(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            assert_eq!(a.batch_sizes, b.batch_sizes, "{placement} batches");
            assert!(
                (a.makespan.as_secs() - b.makespan.as_secs()).abs() < 1e-9,
                "{placement} makespan"
            );
            assert!(
                (a.mean_queue_delay_ms() - b.mean_queue_delay_ms()).abs() < 1e-6,
                "{placement} queue delay"
            );
            assert!(
                (a.e2e_percentile_ms(95.0) - b.e2e_percentile_ms(95.0)).abs() < 1e-6,
                "{placement} p95"
            );
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let s = server(PlacementKind::Helm, 4);
        let mut arrivals = PoissonArrivals::new(0.05, 9);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 20).unwrap();
        assert_eq!(r.served, 20);
        let batched: u32 = r.batch_sizes.iter().sum();
        assert_eq!(batched as usize, 20);
        assert_eq!(r.queue_delay.count(), 20);
        assert_eq!(r.e2e_latency.count(), 20);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }
}
