//! Online (request-level) serving simulation.
//!
//! The paper evaluates steady-state batches; its conclusion frames
//! the real deployment question — "automatically make
//! latency/throughput tradeoffs based on desired quality of service
//! requirements" (§VII). This module provides the missing serving
//! layer: requests arrive continuously (Poisson), queue, and are
//! ground through the pipeline in batches of at most the policy's
//! batch size. Per-request queueing delay and end-to-end latency then
//! expose the QoS consequences of each placement policy: a bigger
//! batch (All-CPU) sustains higher arrival rates, a balanced pipeline
//! (HeLM) serves each batch faster.
//!
//! Two serving granularities are modelled:
//!
//! * **Run-to-completion** ([`run_online`], and [`run_cluster`] with
//!   [`ClusterSpec::continuous`] off): FlexGen-style static batches —
//!   whoever is queued when the pipeline frees up is ground through
//!   the full prompt+generate pass together.
//! * **Continuous batching** ([`ClusterSpec::continuous`]): Orca-style
//!   iteration-level scheduling — waiting requests are admitted at
//!   decode-step boundaries, so a newcomer no longer waits out the
//!   whole in-flight batch. Service times come from the same
//!   [`ServiceModel`], split into per-batch prefill and per-step
//!   decode costs calibrated from two pipeline runs.
//!
//! [`run_cluster`] generalizes both to `N` independent pipelines fed
//! by a pluggable dispatcher ([`SchedulerKind`]) and wires the
//! [`simaudit`] conservation auditor through the serving path: every
//! arrival is ledgered against its pipeline, every completion balances
//! the ledger, and per-pipeline busy time is checked against the
//! cluster makespan.

use crate::error::HelmError;
use crate::server::Server;
use simaudit::{AuditReport, Auditor};
use simcore::engine::{Context, Simulator};
use simcore::rng::SimRng;
use simcore::stats::SeriesStats;
use simcore::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use workload::WorkloadSpec;

/// A Poisson arrival process.
///
/// The clock is part of the process state: successive [`take`] calls
/// continue where the previous one stopped, so arrival instants are
/// strictly increasing across calls.
///
/// [`take`]: PoissonArrivals::take
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_s: f64,
    rng: SimRng,
    t: f64,
}

impl PoissonArrivals {
    /// Arrivals at `rate_per_s` requests/second, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn new(rate_per_s: f64, seed: u64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "invalid arrival rate"
        );
        PoissonArrivals {
            rate_per_s,
            rng: SimRng::from_seed_and_stream(seed, "poisson-arrivals"),
            t: 0.0,
        }
    }

    /// The next `n` arrival instants.
    ///
    /// The process resumes from the last drawn instant rather than
    /// restarting at zero, so `take(2)` twice draws the same four
    /// arrivals as `take(4)` once.
    pub fn take(&mut self, n: usize) -> Vec<SimTime> {
        (0..n)
            .map(|_| {
                let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
                self.t += -u.ln() / self.rate_per_s;
                SimTime::from_secs(self.t)
            })
            .collect()
    }
}

/// Per-batch service times calibrated from two pipeline runs.
///
/// The pipeline is run once at batch 1 and once at the policy batch;
/// every other batch size is linearly interpolated between the two
/// (decode is batch-flat on an out-of-core pipeline, prefill grows
/// with batch). Beyond the run-to-completion total the model keeps
/// the prefill/decode split — time-to-first-token and mean
/// time-between-tokens at each calibration point — which is what
/// continuous batching needs to price a single decode step.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    max_batch: u32,
    gen_len: usize,
    /// Batch-1 / batch-max run-to-completion totals, seconds.
    t1: f64,
    tn: f64,
    /// Batch-1 / batch-max time-to-first-token, seconds.
    ttft1: f64,
    ttftn: f64,
    /// Batch-1 / batch-max mean decode-step time, seconds.
    tbt1: f64,
    tbtn: f64,
}

impl ServiceModel {
    /// Calibrates the model by running `server`'s pipeline at batch 1
    /// and at the policy's full batch.
    ///
    /// # Errors
    ///
    /// Propagates validation and tier errors from the underlying
    /// [`Server`] runs.
    pub fn calibrate(server: &Server, workload: &WorkloadSpec) -> Result<ServiceModel, HelmError> {
        let max_batch = server.policy().effective_batch();
        // Calibration reads only aggregates (totals, TTFT, mean TBT),
        // so both runs skip per-step record materialization.
        let full = server.run_aggregate(workload)?;
        let single = if max_batch > 1 {
            Server::new(
                server.system().clone(),
                server.model().clone(),
                server
                    .policy()
                    .clone()
                    .with_batch_size(1)
                    .with_gpu_batches(1),
            )?
            .run_aggregate(workload)?
        } else {
            full.clone()
        };
        Ok(ServiceModel {
            max_batch,
            gen_len: workload.gen_len,
            t1: single.total_time.as_secs(),
            tn: full.total_time.as_secs(),
            ttft1: single.ttft.as_secs(),
            ttftn: full.ttft.as_secs(),
            tbt1: single.mean_tbt().as_secs(),
            tbtn: full.mean_tbt().as_secs(),
        })
    }

    /// The batch cap this model was calibrated for.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// Output tokens per request in the calibration workload.
    pub fn gen_len(&self) -> usize {
        self.gen_len
    }

    fn lerp(&self, batch: u32, lo: f64, hi: f64) -> f64 {
        let frac = f64::from(batch - 1) / f64::from(self.max_batch - 1);
        lo + frac * (hi - lo)
    }

    /// Run-to-completion service time for a batch of `batch`.
    pub fn total(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.tn);
        }
        SimDuration::from_secs(self.lerp(batch, self.t1, self.tn))
    }

    /// Prefill time for `batch` prompts entering together (their
    /// first output token is produced by this pass).
    pub fn prefill(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.ttftn);
        }
        SimDuration::from_secs(self.lerp(batch, self.ttft1, self.ttftn))
    }

    /// One decode step over an active set of `batch` requests (one
    /// output token each).
    pub fn decode_step(&self, batch: u32) -> SimDuration {
        if self.max_batch <= 1 {
            return SimDuration::from_secs(self.tbtn);
        }
        SimDuration::from_secs(self.lerp(batch, self.tbt1, self.tbtn))
    }
}

/// How a cluster spreads arriving requests over its pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Arrival `i` goes to pipeline `i mod N`, load-blind.
    RoundRobin,
    /// Each arrival joins the pipeline with the fewest queued plus
    /// in-flight requests (ties broken by lowest index).
    JoinShortestQueue,
}

impl SchedulerKind {
    /// Canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::JoinShortestQueue => "jsq",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(SchedulerKind::RoundRobin),
            "jsq" | "join-shortest-queue" => Ok(SchedulerKind::JoinShortestQueue),
            other => Err(format!("unknown scheduler '{other}' (expected rr or jsq)")),
        }
    }
}

/// Shape of a serving cluster: how many pipelines, how requests are
/// dispatched to them, and at what granularity batches admit work.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of independent pipeline replicas.
    pub pipelines: usize,
    /// Dispatch policy for arriving requests.
    pub scheduler: SchedulerKind,
    /// Admit requests at decode-step boundaries (continuous batching)
    /// instead of run-to-completion batches.
    pub continuous: bool,
}

impl ClusterSpec {
    /// `pipelines` replicas, round-robin dispatch, run-to-completion
    /// batching.
    ///
    /// # Panics
    ///
    /// Panics if `pipelines` is zero.
    pub fn new(pipelines: usize) -> Self {
        assert!(pipelines >= 1, "a cluster needs at least one pipeline");
        ClusterSpec {
            pipelines,
            scheduler: SchedulerKind::RoundRobin,
            continuous: false,
        }
    }

    /// Replaces the dispatch policy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables or disables continuous batching.
    #[must_use]
    pub fn with_continuous(mut self, continuous: bool) -> Self {
        self.continuous = continuous;
        self
    }
}

/// Per-pipeline accounting from a cluster run.
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// Requests completed on this pipeline.
    pub served: usize,
    /// Total time this pipeline spent serving.
    pub busy: SimDuration,
    /// Batches (run-to-completion) or steps (continuous) executed.
    pub batches: usize,
    /// `busy` as a fraction of the cluster makespan.
    pub utilization: f64,
}

/// Aggregate and per-pipeline results of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Requests served across all pipelines.
    pub served: usize,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Queueing delays (arrival → batch/step admission), seconds.
    pub queue_delay: SeriesStats,
    /// End-to-end latencies (arrival → last token), seconds.
    pub e2e_latency: SeriesStats,
    /// Batch (or active-set) sizes in execution order, interleaved
    /// across pipelines.
    pub batch_sizes: Vec<u32>,
    /// Mean per-pipeline busy fraction of the makespan.
    pub utilization: f64,
    /// Sustained output-token throughput over the makespan.
    pub tokens_per_s: f64,
    /// Per-pipeline breakdown, indexed by pipeline.
    pub per_pipeline: Vec<PipelineStats>,
    /// Conservation audit, when auditing is enabled (debug builds or
    /// [`simaudit::force_enable`]).
    pub audit: Option<AuditReport>,
}

impl ClusterReport {
    /// Mean queueing delay in milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        SimDuration::from_secs(self.queue_delay.mean()).as_millis()
    }

    /// A latency percentile (end-to-end) in milliseconds.
    pub fn e2e_percentile_ms(&self, p: f64) -> f64 {
        SimDuration::from_secs(self.e2e_latency.percentile(p).unwrap_or(0.0)).as_millis()
    }
}

/// Per-request and aggregate results of an online run.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// Requests served.
    pub served: usize,
    /// Wall-clock span from first arrival to last completion.
    pub makespan: SimDuration,
    /// Queueing delays (arrival → batch start), seconds.
    pub queue_delay: SeriesStats,
    /// End-to-end latencies (arrival → last token), seconds.
    pub e2e_latency: SeriesStats,
    /// Batch sizes actually formed.
    pub batch_sizes: Vec<u32>,
    /// Fraction of the makespan the pipeline was busy.
    pub utilization: f64,
    /// Sustained output-token throughput over the makespan.
    pub tokens_per_s: f64,
}

impl OnlineReport {
    /// Mean queueing delay in milliseconds.
    pub fn mean_queue_delay_ms(&self) -> f64 {
        SimDuration::from_secs(self.queue_delay.mean()).as_millis()
    }

    /// A latency percentile (end-to-end) in milliseconds.
    pub fn e2e_percentile_ms(&self, p: f64) -> f64 {
        SimDuration::from_secs(self.e2e_latency.percentile(p).unwrap_or(0.0)).as_millis()
    }
}

/// Serves `num_requests` Poisson arrivals through `server`, forming
/// batches of at most the policy's batch size from whatever is queued
/// when the pipeline frees up (run-to-completion batching, FlexGen
/// style — no continuous batching).
///
/// The per-batch service time comes from a [`ServiceModel`]
/// interpolated between two pipeline runs (batch 1 and the policy
/// batch) rather than re-simulated per batch, keeping λ-sweeps cheap
/// while preserving the batch-size dependence of prefill.
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    let model = ServiceModel::calibrate(server, workload)?;
    let max_batch = model.max_batch();

    let times = arrivals.take(num_requests);
    let mut queue_delay = SeriesStats::new();
    let mut e2e = SeriesStats::new();
    let mut batch_sizes = Vec::new();
    let mut busy = SimDuration::ZERO;

    let mut next = 0usize;
    let mut pipeline_free = SimTime::ZERO;
    let mut last_completion = SimTime::ZERO;
    while next < times.len() {
        // The batch starts when the pipeline is free and at least one
        // request has arrived.
        let start = pipeline_free.max(times[next]);
        // Everyone who has arrived by then joins, up to the cap.
        let mut batch = 0u32;
        while next < times.len() && times[next] <= start && batch < max_batch {
            queue_delay.add((start - times[next]).as_secs());
            batch += 1;
            next += 1;
        }
        let service = model.total(batch);
        let done = start + service;
        // All requests in the batch finish together (static batch).
        for i in 0..batch as usize {
            e2e.add((done - times[next - batch as usize + i]).as_secs());
        }
        busy += service;
        batch_sizes.push(batch);
        pipeline_free = done;
        last_completion = done;
    }

    let first_arrival = times.first().copied().unwrap_or(SimTime::ZERO);
    let makespan = last_completion.max(first_arrival) - first_arrival;
    let tokens = num_requests as u64 * workload.gen_len as u64;
    Ok(OnlineReport {
        served: num_requests,
        makespan,
        queue_delay,
        e2e_latency: e2e,
        batch_sizes,
        utilization: if makespan > SimDuration::ZERO {
            (busy / makespan).min(1.0)
        } else {
            0.0
        },
        tokens_per_s: tokens as f64 / makespan.as_secs().max(f64::MIN_POSITIVE),
    })
}

/// Event-driven variant of [`run_online`]: a thin wrapper over
/// [`run_cluster`] with a single pipeline, round-robin dispatch, and
/// run-to-completion batching, which reproduces the hand-rolled loop
/// bit for bit (the test suite cross-validates the two).
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_online_des(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
) -> Result<OnlineReport, HelmError> {
    let r = run_cluster(
        server,
        workload,
        arrivals,
        num_requests,
        ClusterSpec::new(1),
    )?;
    Ok(OnlineReport {
        served: r.served,
        makespan: r.makespan,
        queue_delay: r.queue_delay,
        e2e_latency: r.e2e_latency,
        batch_sizes: r.batch_sizes,
        utilization: r.utilization,
        tokens_per_s: r.tokens_per_s,
    })
}

/// One pipeline replica's live state inside the cluster simulation.
struct Pipe {
    /// Arrival instants waiting for admission, in arrival order.
    queue: VecDeque<SimTime>,
    /// Whether the pipeline is between batches/steps.
    idle: bool,
    /// In-flight request count (run-to-completion mode).
    in_flight: usize,
    /// Active set: (arrival instant, output tokens still owed).
    /// Continuous mode only.
    active: Vec<(SimTime, usize)>,
    busy: SimDuration,
    served: usize,
    batches: usize,
}

impl Pipe {
    fn new() -> Self {
        Pipe {
            queue: VecDeque::new(),
            idle: true,
            in_flight: 0,
            active: Vec::new(),
            busy: SimDuration::ZERO,
            served: 0,
            batches: 0,
        }
    }

    /// Queued plus in-flight requests — the JSQ load signal.
    fn load(&self) -> usize {
        self.queue.len() + self.in_flight + self.active.len()
    }
}

struct ClusterSt {
    pipes: Vec<Pipe>,
    model: ServiceModel,
    continuous: bool,
    queue_delay: SeriesStats,
    e2e: SeriesStats,
    batch_sizes: Vec<u32>,
    last_completion: SimTime,
    audit: Auditor,
}

fn req_channel(p: usize) -> String {
    format!("requests:pipe{p}")
}

/// Kicks `p` when it is idle with work queued: one run-to-completion
/// batch or one continuous step, depending on the mode.
fn start_pipe(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, p: usize) {
    if st.continuous {
        step_pipe(ctx, st, p);
    } else {
        batch_pipe(ctx, st, p);
    }
}

/// Run-to-completion: whoever is queued joins, up to the cap, and the
/// whole batch occupies the pipeline for its full service time.
fn batch_pipe(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, p: usize) {
    debug_assert!(st.pipes[p].idle && !st.pipes[p].queue.is_empty());
    st.pipes[p].idle = false;
    let now = ctx.now();
    let mut members = Vec::new();
    while members.len() < st.model.max_batch() as usize {
        match st.pipes[p].queue.pop_front() {
            Some(at) if at <= now => {
                st.queue_delay.add((now - at).as_secs());
                members.push(at);
            }
            Some(at) => {
                st.pipes[p].queue.push_front(at);
                break;
            }
            None => break,
        }
    }
    let batch = members.len() as u32;
    st.batch_sizes.push(batch);
    st.pipes[p].in_flight = members.len();
    st.pipes[p].batches += 1;
    let dur = st.model.total(batch);
    st.pipes[p].busy += dur;
    ctx.schedule_in(dur, move |ctx, st: &mut ClusterSt| {
        let done = ctx.now();
        st.audit.observe_time("cluster", done);
        for at in &members {
            st.e2e.add((done - *at).as_secs());
        }
        st.audit.completed(&req_channel(p), members.len() as u64);
        st.pipes[p].served += members.len();
        st.pipes[p].in_flight = 0;
        st.last_completion = done;
        st.pipes[p].idle = true;
        if !st.pipes[p].queue.is_empty() {
            batch_pipe(ctx, st, p);
        }
    });
}

/// Continuous batching: admit whoever is queued into the active set
/// (up to the cap), run one iteration — prefill for the newcomers,
/// one decode step for requests already past prefill — and hand every
/// active request one output token at the step boundary.
fn step_pipe(ctx: &mut Context<ClusterSt>, st: &mut ClusterSt, p: usize) {
    debug_assert!(st.pipes[p].idle);
    st.pipes[p].idle = false;
    let now = ctx.now();
    let continuing = st.pipes[p].active.len() as u32;
    let mut admitted = 0u32;
    while st.pipes[p].active.len() < st.model.max_batch() as usize {
        match st.pipes[p].queue.pop_front() {
            Some(at) if at <= now => {
                st.queue_delay.add((now - at).as_secs());
                st.pipes[p].active.push((at, st.model.gen_len()));
                admitted += 1;
            }
            Some(at) => {
                st.pipes[p].queue.push_front(at);
                break;
            }
            None => break,
        }
    }
    let batch = st.pipes[p].active.len() as u32;
    debug_assert!(batch > 0);
    st.batch_sizes.push(batch);
    st.pipes[p].batches += 1;
    // The newcomers' first token comes out of their prefill pass; the
    // continuing requests each decode one token alongside it.
    let mut dur = SimDuration::ZERO;
    if admitted > 0 {
        dur += st.model.prefill(admitted);
    }
    if continuing > 0 {
        dur += st.model.decode_step(continuing);
    }
    st.pipes[p].busy += dur;
    ctx.schedule_in(dur, move |ctx, st: &mut ClusterSt| {
        let done = ctx.now();
        st.audit.observe_time("cluster", done);
        let active = std::mem::take(&mut st.pipes[p].active);
        let mut still = Vec::with_capacity(active.len());
        let mut finished = 0u64;
        for (at, owed) in active {
            if owed <= 1 {
                st.e2e.add((done - at).as_secs());
                finished += 1;
            } else {
                still.push((at, owed - 1));
            }
        }
        st.pipes[p].active = still;
        st.pipes[p].served += finished as usize;
        if finished > 0 {
            st.audit.completed(&req_channel(p), finished);
            st.last_completion = done;
        }
        st.pipes[p].idle = true;
        if !st.pipes[p].active.is_empty() || !st.pipes[p].queue.is_empty() {
            step_pipe(ctx, st, p);
        }
    });
}

/// Serves `num_requests` Poisson arrivals through a cluster of
/// `spec.pipelines` independent replicas of `server`'s pipeline,
/// dispatched by `spec.scheduler` and batched at the granularity
/// `spec.continuous` selects.
///
/// With one pipeline, round-robin dispatch, and continuous batching
/// off this reproduces [`run_online`]'s statistics bit for bit; the
/// extra pipelines, JSQ dispatch, and step-granularity admission are
/// strict generalizations on the same [`ServiceModel`].
///
/// Request conservation and per-pipeline busy time are tracked with a
/// [`simaudit::Auditor`]; the resulting report (when auditing is
/// active) is attached to the returned [`ClusterReport`].
///
/// # Errors
///
/// Propagates batch validation from the underlying [`Server`].
pub fn run_cluster(
    server: &Server,
    workload: &WorkloadSpec,
    arrivals: &mut PoissonArrivals,
    num_requests: usize,
    spec: ClusterSpec,
) -> Result<ClusterReport, HelmError> {
    let model = ServiceModel::calibrate(server, workload)?;
    let n = spec.pipelines.max(1);

    let times = arrivals.take(num_requests);
    let first_arrival = times.first().copied().unwrap_or(SimTime::ZERO);
    let mut sim = Simulator::new(ClusterSt {
        pipes: (0..n).map(|_| Pipe::new()).collect(),
        model,
        continuous: spec.continuous,
        queue_delay: SeriesStats::new(),
        e2e: SeriesStats::new(),
        batch_sizes: Vec::new(),
        last_completion: SimTime::ZERO,
        audit: Auditor::capture(),
    });
    let scheduler = spec.scheduler;
    for (i, &at) in times.iter().enumerate() {
        sim.schedule_at(at, move |ctx, st: &mut ClusterSt| {
            let p = match scheduler {
                SchedulerKind::RoundRobin => i % st.pipes.len(),
                SchedulerKind::JoinShortestQueue => st
                    .pipes
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, pipe)| pipe.load())
                    .map_or(0, |(idx, _)| idx),
            };
            st.audit.observe_time("cluster", ctx.now());
            st.audit.enqueued(&req_channel(p), 1);
            st.pipes[p].queue.push_back(at);
            if st.pipes[p].idle {
                start_pipe(ctx, st, p);
            }
        });
    }
    let st = sim.run();

    let makespan = st.last_completion.max(first_arrival) - first_arrival;
    let mut audit = st.audit;
    let mut per_pipeline = Vec::with_capacity(n);
    let mut util_sum = 0.0;
    let mut served = 0usize;
    for (p, pipe) in st.pipes.iter().enumerate() {
        audit.check_busy_time(&format!("pipe{p}"), pipe.busy, makespan);
        let utilization = if makespan > SimDuration::ZERO {
            (pipe.busy / makespan).min(1.0)
        } else {
            0.0
        };
        util_sum += utilization;
        served += pipe.served;
        per_pipeline.push(PipelineStats {
            served: pipe.served,
            busy: pipe.busy,
            batches: pipe.batches,
            utilization,
        });
    }
    let tokens = num_requests as u64 * workload.gen_len as u64;
    Ok(ClusterReport {
        served,
        makespan,
        queue_delay: st.queue_delay,
        e2e_latency: st.e2e,
        batch_sizes: st.batch_sizes,
        utilization: util_sum / n as f64,
        tokens_per_s: tokens as f64 / makespan.as_secs().max(f64::MIN_POSITIVE),
        per_pipeline,
        audit: audit.finish_if_active(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementKind;
    use crate::policy::Policy;
    use crate::system::SystemConfig;
    use hetmem::HostMemoryConfig;
    use llm::ModelConfig;

    fn server(placement: PlacementKind, batch: u32) -> Server {
        let model = ModelConfig::opt_175b();
        let policy = Policy::paper_default(&model, hetmem::MemoryConfigKind::NvDram)
            .with_placement(placement)
            .with_compression(true)
            .with_batch_size(batch);
        Server::new(
            SystemConfig::paper_platform(HostMemoryConfig::nvdram()),
            model,
            policy,
        )
        .unwrap()
    }

    #[test]
    fn poisson_arrivals_have_the_right_rate() {
        let mut p = PoissonArrivals::new(10.0, 7);
        let times = p.take(4000);
        let span = times.last().unwrap().as_secs();
        let rate = 4000.0 / span;
        assert!((rate - 10.0).abs() < 0.6, "rate {rate}");
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn successive_takes_continue_the_process() {
        // The regression this guards: `take` once reset the clock to
        // zero on every call, so a second draw restarted the process
        // and handed out arrival times from the past.
        let mut split = PoissonArrivals::new(2.0, 13);
        let mut a = split.take(5);
        a.extend(split.take(5));
        let whole = PoissonArrivals::new(2.0, 13).take(10);
        assert_eq!(a, whole);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "arrivals must be strictly increasing across take calls: {a:?}"
        );
    }

    #[test]
    fn light_load_rarely_queues() {
        let s = server(PlacementKind::AllCpu, 8);
        // Mean inter-arrival (2000 s) >> service (~135 s): queueing is
        // the exception (short exponential gaps), not the rule.
        let mut arrivals = PoissonArrivals::new(1.0 / 2000.0, 1);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 12).unwrap();
        let service_ms = r.makespan.as_millis() / 12.0;
        assert!(
            r.mean_queue_delay_ms() < service_ms * 0.10,
            "queue {} vs service {service_ms}",
            r.mean_queue_delay_ms()
        );
        assert!(r.utilization < 0.25, "utilization {}", r.utilization);
        let singles = r.batch_sizes.iter().filter(|&&b| b == 1).count();
        assert!(singles * 2 > r.batch_sizes.len());
    }

    #[test]
    fn heavy_load_queues_and_fills_batches() {
        let s = server(PlacementKind::AllCpu, 44);
        // Arrivals far faster than service: batches fill to the cap.
        let mut arrivals = PoissonArrivals::new(5.0, 2);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 132).unwrap();
        assert!(r.batch_sizes.iter().skip(1).any(|&b| b == 44));
        assert!(r.mean_queue_delay_ms() > 1000.0);
        assert!(r.utilization > 0.95);
    }

    #[test]
    fn bigger_batches_sustain_higher_load() {
        // At an arrival rate the batch-8 baseline cannot sustain, the
        // batch-44 All-CPU server keeps end-to-end latency bounded.
        let ws = WorkloadSpec::paper_default();
        let lambda = 0.15; // req/s
        let n = 120;
        let small = run_online(
            &server(PlacementKind::Baseline, 8),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        let large = run_online(
            &server(PlacementKind::AllCpu, 44),
            &ws,
            &mut PoissonArrivals::new(lambda, 3),
            n,
        )
        .unwrap();
        assert!(
            large.e2e_percentile_ms(95.0) < small.e2e_percentile_ms(95.0) / 2.0,
            "p95 {} vs {}",
            large.e2e_percentile_ms(95.0),
            small.e2e_percentile_ms(95.0)
        );
        assert!(large.tokens_per_s > small.tokens_per_s * 0.9);
    }

    #[test]
    fn event_driven_variant_matches_the_loop() {
        // Two independent implementations of the same queueing
        // semantics: the hand-rolled loop and the simcore event
        // engine. They must agree on every statistic.
        let ws = WorkloadSpec::paper_default();
        for (placement, batch, lambda) in [
            (PlacementKind::AllCpu, 44u32, 0.15f64),
            (PlacementKind::Baseline, 8, 0.05),
            (PlacementKind::Helm, 4, 0.02),
        ] {
            let s = server(placement, batch);
            let a = run_online(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            let b = run_online_des(&s, &ws, &mut PoissonArrivals::new(lambda, 11), 60).unwrap();
            assert_eq!(a.batch_sizes, b.batch_sizes, "{placement} batches");
            assert!(
                (a.makespan.as_secs() - b.makespan.as_secs()).abs() < 1e-9,
                "{placement} makespan"
            );
            assert!(
                (a.mean_queue_delay_ms() - b.mean_queue_delay_ms()).abs() < 1e-6,
                "{placement} queue delay"
            );
            assert!(
                (a.e2e_percentile_ms(95.0) - b.e2e_percentile_ms(95.0)).abs() < 1e-6,
                "{placement} p95"
            );
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let s = server(PlacementKind::Helm, 4);
        let mut arrivals = PoissonArrivals::new(0.05, 9);
        let r = run_online(&s, &WorkloadSpec::paper_default(), &mut arrivals, 20).unwrap();
        assert_eq!(r.served, 20);
        let batched: u32 = r.batch_sizes.iter().sum();
        assert_eq!(batched as usize, 20);
        assert_eq!(r.queue_delay.count(), 20);
        assert_eq!(r.e2e_latency.count(), 20);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn service_model_interpolates_between_calibration_points() {
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let m = ServiceModel::calibrate(&s, &ws).unwrap();
        assert_eq!(m.max_batch(), 8);
        assert_eq!(m.gen_len(), ws.gen_len);
        // Totals at the calibration points match the reports.
        let full = s.run(&ws).unwrap();
        assert_eq!(m.total(8), full.total_time);
        // Interpolation is monotone between the points.
        assert!(m.total(1) <= m.total(4) && m.total(4) <= m.total(8));
        // The split is consistent with the total at both calibration
        // points: total ≈ ttft + (gen_len-1) * mean tbt.
        for b in [1u32, 8] {
            let rebuilt =
                m.prefill(b).as_secs() + (ws.gen_len - 1) as f64 * m.decode_step(b).as_secs();
            let total = m.total(b).as_secs();
            assert!(
                (rebuilt - total).abs() / total < 0.05,
                "batch {b}: split {rebuilt} vs total {total}"
            );
        }
    }

    #[test]
    fn single_pipeline_cluster_is_bit_identical_to_run_online() {
        // The acceptance bar for the cluster path: with one pipeline,
        // round-robin dispatch, and continuous batching off, every
        // statistic reproduces the hand-rolled loop exactly — same
        // floats, not merely close.
        let ws = WorkloadSpec::paper_default();
        for (placement, batch, lambda) in [
            (PlacementKind::Baseline, 8u32, 0.05f64),
            (PlacementKind::Helm, 4, 0.02),
            (PlacementKind::AllCpu, 44, 0.15),
        ] {
            let s = server(placement, batch);
            let loop_r = run_online(&s, &ws, &mut PoissonArrivals::new(lambda, 17), 50).unwrap();
            let cluster = run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(lambda, 17),
                50,
                ClusterSpec::new(1),
            )
            .unwrap();
            assert_eq!(cluster.batch_sizes, loop_r.batch_sizes, "{placement}");
            assert_eq!(
                cluster.makespan.as_secs().to_bits(),
                loop_r.makespan.as_secs().to_bits(),
                "{placement} makespan"
            );
            assert_eq!(
                cluster.queue_delay.samples(),
                loop_r.queue_delay.samples(),
                "{placement} queue delays"
            );
            assert_eq!(
                cluster.e2e_latency.percentile(95.0).unwrap().to_bits(),
                loop_r.e2e_latency.percentile(95.0).unwrap().to_bits(),
                "{placement} p95"
            );
            assert_eq!(
                cluster.utilization.to_bits(),
                loop_r.utilization.to_bits(),
                "{placement} utilization"
            );
        }
    }

    #[test]
    fn jsq_tracks_load_where_round_robin_is_blind() {
        // With identical replicas and smooth Poisson traffic the two
        // dispatchers perform comparably, but they are genuinely
        // different policies: round-robin splits by arrival parity
        // while JSQ reacts to transient imbalance, and neither loses
        // a request doing so.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let mk = |sched| {
            run_cluster(
                &s,
                &ws,
                &mut PoissonArrivals::new(0.08, 23),
                80,
                ClusterSpec::new(2).with_scheduler(sched),
            )
            .unwrap()
        };
        let rr = mk(SchedulerKind::RoundRobin);
        let jsq = mk(SchedulerKind::JoinShortestQueue);
        assert_eq!(rr.served, 80);
        assert_eq!(jsq.served, 80);
        // Round-robin alternates, so its per-pipeline split is exact.
        assert!(rr.per_pipeline.iter().all(|p| p.served == 40));
        // The dispatch decisions differ observably...
        assert_ne!(rr.batch_sizes, jsq.batch_sizes);
        // ...without JSQ giving up meaningful queueing performance.
        assert!(
            jsq.queue_delay.mean() <= rr.queue_delay.mean() * 1.25,
            "jsq {} vs rr {}",
            jsq.queue_delay.mean(),
            rr.queue_delay.mean()
        );
    }

    #[test]
    fn more_pipelines_absorb_a_saturating_rate() {
        // A λ that saturates one All-CPU pipeline is comfortably
        // absorbed by four: p95 latency collapses and throughput
        // scales with the replica count.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        let lambda = 0.10;
        let one = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 5),
            80,
            ClusterSpec::new(1),
        )
        .unwrap();
        let four = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 5),
            80,
            ClusterSpec::new(4).with_scheduler(SchedulerKind::JoinShortestQueue),
        )
        .unwrap();
        assert!(one.utilization > 0.95, "N=1 util {}", one.utilization);
        assert!(
            four.e2e_percentile_ms(95.0) < one.e2e_percentile_ms(95.0) / 2.0,
            "p95 {} vs {}",
            four.e2e_percentile_ms(95.0),
            one.e2e_percentile_ms(95.0)
        );
        assert!(four.tokens_per_s > one.tokens_per_s * 1.5);
        assert_eq!(four.per_pipeline.len(), 4);
        let per_pipe_served: usize = four.per_pipeline.iter().map(|p| p.served).sum();
        assert_eq!(per_pipe_served, 80);
    }

    #[test]
    fn continuous_batching_admits_mid_flight() {
        // Run-to-completion makes a late arrival wait out the whole
        // in-flight batch; continuous batching admits it at the next
        // step boundary, so its queueing delay collapses.
        let s = server(PlacementKind::AllCpu, 8);
        let ws = WorkloadSpec::paper_default();
        // Moderate load: the pipeline is often mid-batch when a new
        // request lands, but no standing backlog builds up (at
        // saturation both modes are backlog-dominated and the
        // admission granularity stops mattering).
        let lambda = 1.0 / 300.0;
        let spec = ClusterSpec::new(1);
        let rtc = run_cluster(&s, &ws, &mut PoissonArrivals::new(lambda, 31), 40, spec).unwrap();
        let cont = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(lambda, 31),
            40,
            spec.with_continuous(true),
        )
        .unwrap();
        assert_eq!(cont.served, 40);
        assert!(
            cont.queue_delay.mean() < rtc.queue_delay.mean() * 0.25,
            "continuous queue {} vs rtc {}",
            cont.queue_delay.mean(),
            rtc.queue_delay.mean()
        );
        // Every request still completes, and the audit balances.
        if let Some(audit) = &cont.audit {
            assert!(audit.is_clean(), "audit: {audit}");
            assert_eq!(audit.completed_with_prefix("requests:"), 40);
        }
    }

    #[test]
    fn cluster_audit_conserves_requests() {
        let s = server(PlacementKind::Helm, 4);
        let ws = WorkloadSpec::paper_default();
        simaudit::force_enable();
        let r = run_cluster(
            &s,
            &ws,
            &mut PoissonArrivals::new(0.05, 41),
            30,
            ClusterSpec::new(3).with_scheduler(SchedulerKind::JoinShortestQueue),
        )
        .unwrap();
        let audit = r.audit.expect("auditing forced on");
        assert!(audit.is_clean(), "audit: {audit}");
        assert_eq!(audit.completed_with_prefix("requests:"), 30);
        assert_eq!(r.served, 30);
        assert_eq!(r.e2e_latency.count(), 30);
    }
}
