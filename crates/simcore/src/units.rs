//! Shared physical units: byte counts, bandwidths, compute rates, and
//! power densities.
//!
//! Newtypes keep byte counts, bandwidths, and times from being mixed
//! up in the performance models. Conventions follow the paper: decimal
//! units for bandwidth (GB/s = 1e9 bytes/s, as in "32.0 GB/s" PCIe)
//! and for quoted memory sizes, with binary constructors provided for
//! capacity math.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A numeric value that cannot represent the unit it was given.
///
/// Returned by the `try_from_*` constructors on [`ByteSize`],
/// [`Bandwidth`], [`crate::SimTime`], and [`crate::SimDuration`]; the
/// panicking constructors reject the same inputs with an assert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnitError {
    /// Byte size from a negative or non-finite number.
    InvalidByteSize(f64),
    /// Bandwidth that is not finite and positive.
    InvalidBandwidth(f64),
    /// Time value (instant or span, in seconds) that is negative or NaN.
    InvalidTime(f64),
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::InvalidByteSize(v) => write!(f, "invalid byte size: {v}"),
            UnitError::InvalidBandwidth(v) => write!(f, "invalid bandwidth: {v}"),
            UnitError::InvalidTime(v) => write!(f, "invalid time value: {v}s"),
        }
    }
}

impl std::error::Error for UnitError {}

/// A size in bytes.
///
/// # Examples
///
/// ```
/// use simcore::units::ByteSize;
///
/// let a = ByteSize::from_gb(2.0);
/// assert_eq!(a.as_u64(), 2_000_000_000);
/// assert_eq!((a + a).as_gb(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Exact byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Decimal kilobytes (1e3).
    pub fn from_kb(kb: f64) -> Self {
        Self::from_f64(kb * 1e3)
    }

    /// Decimal megabytes (1e6).
    pub fn from_mb(mb: f64) -> Self {
        Self::from_f64(mb * 1e6)
    }

    /// Decimal gigabytes (1e9).
    pub fn from_gb(gb: f64) -> Self {
        Self::from_f64(gb * 1e9)
    }

    /// Binary mebibytes (2^20).
    pub fn from_mib(mib: f64) -> Self {
        Self::from_f64(mib * (1u64 << 20) as f64)
    }

    /// Binary gibibytes (2^30).
    pub fn from_gib(gib: f64) -> Self {
        Self::from_f64(gib * (1u64 << 30) as f64)
    }

    /// Binary tebibytes (2^40).
    pub fn from_tib(tib: f64) -> Self {
        Self::from_f64(tib * (1u64 << 40) as f64)
    }

    /// `const` whole mebibytes, for typed size constants.
    pub const fn from_mib_const(mib: u64) -> Self {
        ByteSize(mib << 20)
    }

    /// `const` whole gibibytes, for typed size constants.
    pub const fn from_gib_const(gib: u64) -> Self {
        ByteSize(gib << 30)
    }

    /// Fallible decimal-gigabyte constructor.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidByteSize`] if `gb` is negative or
    /// not finite.
    pub fn try_from_gb(gb: f64) -> Result<Self, UnitError> {
        Self::try_from_f64(gb * 1e9)
    }

    /// Fallible binary-gibibyte constructor.
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidByteSize`] if `gib` is negative or
    /// not finite.
    pub fn try_from_gib(gib: f64) -> Result<Self, UnitError> {
        Self::try_from_f64(gib * (1u64 << 30) as f64)
    }

    fn try_from_f64(bytes: f64) -> Result<Self, UnitError> {
        if bytes >= 0.0 && bytes.is_finite() {
            Ok(ByteSize(bytes.round() as u64))
        } else {
            Err(UnitError::InvalidByteSize(bytes))
        }
    }

    fn from_f64(bytes: f64) -> Self {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "invalid byte size: {bytes}"
        );
        ByteSize(bytes.round() as u64)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` for rate math.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Decimal gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Decimal megabytes.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Binary gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    /// Binary mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(rhs.0).expect("byte size overflow"))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        *self = *self + rhs;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        assert!(rhs.0 <= self.0, "byte size subtraction underflow");
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.checked_mul(rhs).expect("byte size overflow"))
    }
}

impl Mul<f64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: f64) -> ByteSize {
        ByteSize::from_f64(self.0 as f64 * rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = f64;
    fn div(self, rhs: ByteSize) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> Self {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e9 {
            write!(f, "{:.2} GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.2} MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.2} KB", b / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A data rate in bytes/second.
///
/// # Examples
///
/// ```
/// use simcore::units::{Bandwidth, ByteSize};
///
/// let pcie = Bandwidth::from_gb_per_s(32.0);
/// let t = pcie.time_for(ByteSize::from_gb(16.0));
/// assert_eq!(t.as_secs(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate from decimal GB/s.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn from_gb_per_s(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps > 0.0,
            "invalid bandwidth: {gbps} GB/s"
        );
        Bandwidth(gbps * 1e9)
    }

    /// Creates a rate from bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn from_bytes_per_s(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth: {bps} B/s");
        Bandwidth(bps)
    }

    /// `const` form of [`Bandwidth::from_gb_per_s`], for typed rate
    /// constants (the panic message is unformatted — `const`
    /// evaluation cannot build one).
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`) if the rate is
    /// not finite and positive.
    pub const fn from_gb_per_s_const(gbps: f64) -> Self {
        assert!(gbps.is_finite() && gbps > 0.0, "invalid bandwidth");
        Bandwidth(gbps * 1e9)
    }

    /// Fallible form of [`Bandwidth::from_gb_per_s`].
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidBandwidth`] if the rate is not
    /// finite and positive.
    pub fn try_from_gb_per_s(gbps: f64) -> Result<Self, UnitError> {
        if gbps.is_finite() && gbps > 0.0 {
            Ok(Bandwidth(gbps * 1e9))
        } else {
            Err(UnitError::InvalidBandwidth(gbps))
        }
    }

    /// Fallible form of [`Bandwidth::from_bytes_per_s`].
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidBandwidth`] if the rate is not
    /// finite and positive.
    pub fn try_from_bytes_per_s(bps: f64) -> Result<Self, UnitError> {
        if bps.is_finite() && bps > 0.0 {
            Ok(Bandwidth(bps))
        } else {
            Err(UnitError::InvalidBandwidth(bps))
        }
    }

    /// Rate in bytes/second.
    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    /// Rate in decimal GB/s.
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `bytes` at this rate.
    pub fn time_for(self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs(bytes.as_f64() / self.0)
    }

    /// The smaller (bottleneck) of two rates.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// The larger of two rates.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Scales the rate by `factor` (e.g. an efficiency derating).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale(self, factor: f64) -> Bandwidth {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid scale factor: {factor}"
        );
        Bandwidth(self.0 * factor)
    }

    /// Harmonic composition: the effective rate of moving each byte
    /// through every one of `stages` sequentially (store-and-forward).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn serial(stages: &[Bandwidth]) -> Bandwidth {
        assert!(!stages.is_empty(), "no stages");
        let inv: f64 = stages.iter().map(|b| 1.0 / b.0).sum();
        Bandwidth(1.0 / inv)
    }
}

impl Eq for Bandwidth {}
impl Ord for Bandwidth {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for Bandwidth {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_s())
    }
}

/// A compute rate in floating-point operations per second.
///
/// Keeps the TFLOPS → FLOP/s decimal factor out of roofline code: a
/// device declares its peak as TFLOPS, kernels divide work by a
/// `ComputeRate`.
///
/// ```
/// use simcore::ComputeRate;
///
/// let peak = ComputeRate::from_tflops(312.0);
/// assert_eq!(peak.as_flops_per_s(), 312.0e12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComputeRate(f64);

impl ComputeRate {
    /// Creates a rate from TFLOPS (decimal tera-FLOP/s).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn from_tflops(tflops: f64) -> Self {
        assert!(
            tflops.is_finite() && tflops > 0.0,
            "invalid compute rate: {tflops} TFLOPS"
        );
        ComputeRate(tflops * 1e12)
    }

    /// Rate in FLOP/s.
    pub fn as_flops_per_s(self) -> f64 {
        self.0
    }

    /// Rate in TFLOPS.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Scales the rate by `factor` (e.g. an efficiency derating).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale(self, factor: f64) -> ComputeRate {
        assert!(
            factor.is_finite() && factor > 0.0,
            "invalid scale factor: {factor}"
        );
        ComputeRate(self.0 * factor)
    }
}

impl fmt::Display for ComputeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} TFLOPS", self.as_tflops())
    }
}

/// A background power density in watts per decimal GB of capacity.
///
/// Types the W/GB coefficients of memory technologies (refresh,
/// standby, controller power) so capacity × density conversions go
/// through one audited method instead of ad-hoc scalar products.
///
/// ```
/// use simcore::{ByteSize, PowerDensity};
///
/// let dram = PowerDensity::from_w_per_gb(0.075);
/// assert_eq!(dram.static_watts(ByteSize::from_gb(128.0)), 9.6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerDensity(f64);

impl PowerDensity {
    /// Creates a density from W per decimal GB. `const` so technology
    /// coefficients can be typed constants.
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`) if the density
    /// is not finite and non-negative.
    pub const fn from_w_per_gb(w_per_gb: f64) -> Self {
        assert!(
            w_per_gb.is_finite() && w_per_gb >= 0.0,
            "invalid power density"
        );
        PowerDensity(w_per_gb)
    }

    /// Density in W per decimal GB.
    pub const fn as_w_per_gb(self) -> f64 {
        self.0
    }

    /// Background watts drawn by `capacity` at this density.
    pub fn static_watts(self, capacity: ByteSize) -> f64 {
        capacity.as_gb() * self.0
    }
}

impl Add for PowerDensity {
    type Output = PowerDensity;
    fn add(self, rhs: PowerDensity) -> PowerDensity {
        PowerDensity(self.0 + rhs.0)
    }
}

impl Div<f64> for PowerDensity {
    type Output = PowerDensity;
    fn div(self, rhs: f64) -> PowerDensity {
        assert!(rhs.is_finite() && rhs > 0.0, "invalid divisor: {rhs}");
        PowerDensity(self.0 / rhs)
    }
}

impl Eq for PowerDensity {}
impl Ord for PowerDensity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for PowerDensity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for PowerDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W/GB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_gb(1.0).as_u64(), 1_000_000_000);
        assert_eq!(ByteSize::from_gib(1.0).as_u64(), 1 << 30);
        assert_eq!(ByteSize::from_mb(1.0).as_u64(), 1_000_000);
        assert_eq!(ByteSize::from_mib(1.0).as_u64(), 1 << 20);
        assert_eq!(ByteSize::from_kb(1.0).as_u64(), 1_000);
    }

    #[test]
    fn byte_size_arithmetic() {
        let a = ByteSize::from_bytes(100);
        let b = ByteSize::from_bytes(40);
        assert_eq!(a + b, ByteSize::from_bytes(140));
        assert_eq!(a - b, ByteSize::from_bytes(60));
        assert_eq!(a * 3u64, ByteSize::from_bytes(300));
        assert_eq!(a * 0.5, ByteSize::from_bytes(50));
        assert_eq!(a / b, 2.5);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
    }

    #[test]
    fn byte_size_display_scales() {
        assert_eq!(ByteSize::from_gb(1.5).to_string(), "1.50 GB");
        assert_eq!(ByteSize::from_mb(2.0).to_string(), "2.00 MB");
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512 B");
    }

    #[test]
    fn bandwidth_time_for() {
        let bw = Bandwidth::from_gb_per_s(10.0);
        let t = bw.time_for(ByteSize::from_gb(5.0));
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_bottleneck_and_serial() {
        let a = Bandwidth::from_gb_per_s(10.0);
        let b = Bandwidth::from_gb_per_s(30.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        // serial: 1/(1/10+1/30) = 7.5 GB/s
        assert!((Bandwidth::serial(&[a, b]).as_gb_per_s() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_scale() {
        let a = Bandwidth::from_gb_per_s(10.0).scale(0.8);
        assert!((a.as_gb_per_s() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn byte_size_sub_underflow() {
        let _ = ByteSize::from_bytes(1) - ByteSize::from_bytes(2);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_gb_per_s(0.0);
    }

    #[test]
    fn tib_and_const_constructors() {
        assert_eq!(ByteSize::from_tib(1.0), ByteSize::from_gib(1024.0));
        const CHUNK: ByteSize = ByteSize::from_mib_const(64);
        assert_eq!(CHUNK, ByteSize::from_mib(64.0));
        const BIG: ByteSize = ByteSize::from_gib_const(2);
        assert_eq!(BIG, ByteSize::from_gib(2.0));
        const PCIE: Bandwidth = Bandwidth::from_gb_per_s_const(32.0);
        assert_eq!(PCIE, Bandwidth::from_gb_per_s(32.0));
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(ByteSize::try_from_gb(2.0), Ok(ByteSize::from_gb(2.0)));
        assert_eq!(ByteSize::try_from_gib(1.0), Ok(ByteSize::from_gib(1.0)));
        assert!(matches!(
            ByteSize::try_from_gb(-1.0),
            Err(UnitError::InvalidByteSize(_))
        ));
        assert_eq!(
            Bandwidth::try_from_gb_per_s(10.0),
            Ok(Bandwidth::from_gb_per_s(10.0))
        );
        assert_eq!(
            Bandwidth::try_from_gb_per_s(0.0),
            Err(UnitError::InvalidBandwidth(0.0))
        );
        assert!(Bandwidth::try_from_bytes_per_s(f64::NAN).is_err());
        let msg = UnitError::InvalidBandwidth(-2.0).to_string();
        assert!(msg.contains("invalid bandwidth"));
    }

    #[test]
    fn byte_size_sums() {
        let total: ByteSize = (1..=3).map(ByteSize::from_bytes).sum();
        assert_eq!(total, ByteSize::from_bytes(6));
    }
}
