//! Statistic accumulators.
//!
//! Two flavours:
//!
//! * [`Accumulator`] — streaming count/mean/variance/min/max (Welford).
//! * [`SeriesStats`] — retains all samples; implements the paper's
//!   metric rule of reporting the arithmetic mean *discarding the
//!   first sample* ("to account for cold start effects", §III-C), plus
//!   percentiles.

/// Streaming moments accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simcore::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] { acc.add(x); }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// assert_eq!(acc.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// Sample-retaining statistics with the paper's cold-start rule.
///
/// # Examples
///
/// ```
/// use simcore::SeriesStats;
///
/// let mut s = SeriesStats::new();
/// s.extend([10.0, 2.0, 4.0]); // first sample is the cold-start outlier
/// assert_eq!(s.mean_discard_first(), 3.0);
/// assert_eq!(s.mean(), 16.0 / 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesStats {
    samples: Vec<f64>,
}

impl SeriesStats {
    /// Creates an empty series.
    pub fn new() -> Self {
        SeriesStats {
            samples: Vec::new(),
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Arithmetic mean over all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The paper's metric: arithmetic mean over all samples except the
    /// first. Falls back to the plain mean when fewer than two samples
    /// exist.
    pub fn mean_discard_first(&self) -> f64 {
        if self.samples.len() < 2 {
            return self.mean();
        }
        self.samples[1..].iter().sum::<f64>() / (self.samples.len() - 1) as f64
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }
}

impl Extend<f64> for SeriesStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for SeriesStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        SeriesStats {
            samples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.variance(), 4.0);
        assert_eq!(acc.std_dev(), 2.0);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
        assert_eq!(acc.sum(), 40.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn discard_first_matches_paper_rule() {
        let s: SeriesStats = [100.0, 1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.mean_discard_first(), 2.0);
    }

    #[test]
    fn discard_first_with_single_sample_falls_back() {
        let s: SeriesStats = [42.0].into_iter().collect();
        assert_eq!(s.mean_discard_first(), 42.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s: SeriesStats = (1..=5).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(3.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.percentile(25.0), Some(2.0));
        assert_eq!(s.percentile(62.5), Some(3.5));
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(SeriesStats::new().percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let s: SeriesStats = [1.0].into_iter().collect();
        let _ = s.percentile(101.0);
    }
}
