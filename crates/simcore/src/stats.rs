//! Statistic accumulators.
//!
//! Three flavours:
//!
//! * [`Accumulator`] — streaming count/mean/variance/min/max (Welford).
//! * [`SeriesStats`] — retains all samples; implements the paper's
//!   metric rule of reporting the arithmetic mean *discarding the
//!   first sample* ("to account for cold start effects", §III-C), plus
//!   percentiles. Sums are Neumaier-compensated so a million-sample
//!   series does not drift measurably from the exact mean.
//! * [`Reservoir`] — fixed-memory uniform sample of an unbounded
//!   stream (Vitter's Algorithm R) on a deterministic [`SimRng`],
//!   giving allocation-bounded percentile estimates for
//!   million-request aggregate runs.

use crate::rng::SimRng;

/// Neumaier's improved Kahan–Babuška compensated summation: exact to
/// within one ulp of the true sum for the sample counts the simulator
/// sees, where naive left-to-right `sum()` drifts at 1e6+ samples.
fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0;
    for &x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x;
        } else {
            comp += (x - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Streaming moments accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use simcore::Accumulator;
///
/// let mut acc = Accumulator::new();
/// for x in [1.0, 2.0, 3.0] { acc.add(x); }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// assert_eq!(acc.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// Sample-retaining statistics with the paper's cold-start rule.
///
/// # Examples
///
/// ```
/// use simcore::SeriesStats;
///
/// let mut s = SeriesStats::new();
/// s.extend([10.0, 2.0, 4.0]); // first sample is the cold-start outlier
/// assert_eq!(s.mean_discard_first(), 3.0);
/// assert_eq!(s.mean(), 16.0 / 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesStats {
    samples: Vec<f64>,
}

impl SeriesStats {
    /// Creates an empty series.
    pub fn new() -> Self {
        SeriesStats {
            samples: Vec::new(),
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Arithmetic mean over all samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            neumaier_sum(&self.samples) / self.samples.len() as f64
        }
    }

    /// The paper's metric: arithmetic mean over all samples except the
    /// first. Falls back to the plain mean when fewer than two samples
    /// exist.
    pub fn mean_discard_first(&self) -> f64 {
        if self.samples.len() < 2 {
            return self.mean();
        }
        neumaier_sum(&self.samples[1..]) / (self.samples.len() - 1) as f64
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        neumaier_sum(&self.samples)
    }
}

impl Extend<f64> for SeriesStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for SeriesStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        SeriesStats {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Fixed-memory uniform sample of an unbounded stream (Vitter's
/// Algorithm R) over a deterministic [`SimRng`] stream: after `n ≥
/// capacity` adds, each of the `n` samples is retained with equal
/// probability `capacity / n`, so percentiles over the reservoir are
/// unbiased estimates of the stream's percentiles at O(capacity)
/// memory. Replays are bit-identical for a given seed stream.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
/// use simcore::stats::Reservoir;
///
/// let rng = SimRng::from_seed_and_stream(7, "latency-reservoir");
/// let mut r = Reservoir::new(128, rng);
/// for x in 0..1000 {
///     r.add(f64::from(x));
/// }
/// assert_eq!(r.seen(), 1000);
/// assert_eq!(r.samples().len(), 128);
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<f64>,
    rng: SimRng,
}

impl Reservoir {
    /// Creates an empty reservoir retaining at most `capacity` samples,
    /// drawing replacement indices from `rng`.
    pub fn new(capacity: usize, rng: SimRng) -> Self {
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity),
            rng,
        }
    }

    /// Offers one sample to the reservoir.
    pub fn add(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        // Keep the newcomer with probability capacity/seen by drawing a
        // slot uniformly over everything seen so far.
        let slot = self
            .rng
            .uniform_usize(0, usize::try_from(self.seen - 1).unwrap_or(usize::MAX));
        if slot < self.capacity {
            self.samples[slot] = x;
        }
    }

    /// Total number of samples offered (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained samples, in reservoir order (not sorted).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Linear-interpolated percentile over the retained sample,
    /// `p` in `[0, 100]`; an unbiased estimate of the stream
    /// percentile once the reservoir has cycled.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Reservoir equality compares the observable sample state (capacity,
/// offered count, retained values); the RNG cursor is a replay detail.
impl PartialEq for Reservoir {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.seen == other.seen && self.samples == other.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_moments() {
        let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(acc.mean(), 5.0);
        assert_eq!(acc.variance(), 4.0);
        assert_eq!(acc.std_dev(), 2.0);
        assert_eq!(acc.min(), Some(2.0));
        assert_eq!(acc.max(), Some(9.0));
        assert_eq!(acc.sum(), 40.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    #[test]
    fn discard_first_matches_paper_rule() {
        let s: SeriesStats = [100.0, 1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.mean_discard_first(), 2.0);
    }

    #[test]
    fn discard_first_with_single_sample_falls_back() {
        let s: SeriesStats = [42.0].into_iter().collect();
        assert_eq!(s.mean_discard_first(), 42.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s: SeriesStats = (1..=5).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(3.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.percentile(25.0), Some(2.0));
        assert_eq!(s.percentile(62.5), Some(3.5));
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(SeriesStats::new().percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let s: SeriesStats = [1.0].into_iter().collect();
        let _ = s.percentile(101.0);
    }

    /// A million samples around 1e8 with 2^-20 offsets: every value is
    /// exactly representable and the true sum is computable exactly in
    /// scaled i128, yet the running f64 sum (magnitude ~1e14, ulp
    /// ~2^-6) must round on nearly every addition. The compensated
    /// mean must land within 2 ulp of exact; naive left-to-right
    /// summation drifts measurably further.
    #[test]
    fn compensated_mean_matches_exact_reference_at_1e6() {
        let n: usize = 1_000_000;
        let scale = f64::from(1 << 20);
        let samples: Vec<f64> = (0..n).map(|i| 1e8 + (i % 7) as f64 / scale).collect();
        // Exact sum in units of 2^-20 (each scaled value is an integer
        // needing ~47 bits, exact in f64 and in i128).
        let exact_scaled: i128 = samples.iter().map(|&x| (x * scale) as i128).sum();
        let exact_mean = exact_scaled as f64 / scale / n as f64;

        let s: SeriesStats = samples.iter().copied().collect();
        let err = (s.mean() - exact_mean).abs();
        let tol = 2.0 * exact_mean * f64::EPSILON;
        assert!(err <= tol, "compensated mean off by {err} (> 2 ulp {tol})");
        let naive: f64 = samples.iter().sum::<f64>() / n as f64;
        let naive_err = (naive - exact_mean).abs();
        assert!(
            naive_err > err,
            "naive summation unexpectedly as accurate ({naive_err} vs {err}) — test is vacuous"
        );

        let exact_sum = exact_scaled as f64 / scale;
        let sum_err = (s.sum() - exact_sum).abs();
        assert!(sum_err <= 2.0 * exact_sum * f64::EPSILON);
    }

    /// Welford's streaming moments vs an exact two-pass reference at
    /// n=1e6: mean and variance must agree to fine relative tolerance.
    #[test]
    fn welford_matches_two_pass_reference_at_1e6() {
        let n: usize = 1_000_000;
        // Deterministic pseudo-noise around a large offset — the regime
        // where catastrophic cancellation punishes naive accumulators.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                1e9 + (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let acc: Accumulator = samples.iter().copied().collect();

        let exact_mean = neumaier_sum(&samples) / n as f64;
        let centred: Vec<f64> = samples.iter().map(|&s| (s - exact_mean).powi(2)).collect();
        let exact_var = neumaier_sum(&centred) / n as f64;

        let mean_rel = ((acc.mean() - exact_mean) / exact_mean).abs();
        assert!(mean_rel < 1e-12, "Welford mean drifted: rel err {mean_rel}");
        let var_rel = ((acc.variance() - exact_var) / exact_var).abs();
        assert!(
            var_rel < 1e-6,
            "Welford variance drifted: rel err {var_rel}"
        );
    }

    #[test]
    fn reservoir_below_capacity_retains_everything() {
        let rng = SimRng::from_seed_and_stream(1, "res");
        let mut r = Reservoir::new(10, rng);
        for i in 0..5 {
            r.add(f64::from(i));
        }
        assert_eq!(r.samples(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.percentile(100.0), Some(4.0));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let mk = || {
            let rng = SimRng::from_seed_and_stream(42, "res");
            let mut r = Reservoir::new(64, rng);
            for i in 0..10_000 {
                r.add(f64::from(i));
            }
            r
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same seed must replay the same reservoir");
        assert_eq!(a.samples().len(), 64);
        assert_eq!(a.seen(), 10_000);
    }

    /// With a uniform ramp input, the reservoir's median must estimate
    /// the stream median to within a few percent — i.e. the sample is
    /// genuinely uniform over the stream, not biased to either end.
    #[test]
    fn reservoir_percentiles_track_the_stream() {
        let rng = SimRng::from_seed_and_stream(3, "res");
        let mut r = Reservoir::new(512, rng);
        let n = 100_000;
        for i in 0..n {
            r.add(f64::from(i));
        }
        let median = r.percentile(50.0).unwrap();
        let expected = f64::from(n) / 2.0;
        assert!(
            (median - expected).abs() / expected < 0.15,
            "median estimate {median} too far from {expected}"
        );
    }

    #[test]
    fn zero_capacity_reservoir_is_inert() {
        let rng = SimRng::from_seed_and_stream(5, "res");
        let mut r = Reservoir::new(0, rng);
        r.add(1.0);
        assert_eq!(r.seen(), 1);
        assert!(r.samples().is_empty());
        assert_eq!(r.percentile(50.0), None);
    }
}
