//! Simulated time.
//!
//! Time is represented as `f64` seconds since simulation start, wrapped
//! in newtypes so instants ([`SimTime`]) and spans ([`SimDuration`])
//! cannot be confused. Both are totally ordered via `f64::total_cmp`;
//! constructors reject NaN and negative values, so the ordering always
//! agrees with numeric intuition.

use crate::units::UnitError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock, in seconds since simulation start.
///
/// # Examples
///
/// ```
/// use simcore::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5.0);
/// assert_eq!(t.as_secs(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Always non-negative and finite
/// (infinite durations are represented by [`SimDuration::INFINITY`] for
/// "never happens" sentinels).
///
/// # Examples
///
/// ```
/// use simcore::SimDuration;
///
/// let d = SimDuration::from_micros(1500.0);
/// assert_eq!(d.as_millis(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `secs` seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid sim time: {secs}");
        SimTime(secs)
    }

    /// Fallible form of [`SimTime::from_secs`].
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidTime`] if `secs` is negative or NaN.
    pub fn try_from_secs(secs: f64) -> Result<Self, UnitError> {
        if secs >= 0.0 && !secs.is_nan() {
            Ok(SimTime(secs))
        } else {
            Err(UnitError::InvalidTime(secs))
        }
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);
    /// Sentinel for "never": compares greater than every finite span.
    pub const INFINITY: SimDuration = SimDuration(f64::INFINITY);

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid duration: {secs}");
        SimDuration(secs)
    }

    /// Fallible form of [`SimDuration::from_secs`].
    ///
    /// # Errors
    ///
    /// Returns [`UnitError::InvalidTime`] if `secs` is negative or NaN.
    pub fn try_from_secs(secs: f64) -> Result<Self, UnitError> {
        if secs >= 0.0 && !secs.is_nan() {
            Ok(SimDuration(secs))
        } else {
            Err(UnitError::InvalidTime(secs))
        }
    }

    /// `const` form of [`SimDuration::from_secs`], for typed duration
    /// constants (the panic message is unformatted — `const`
    /// evaluation cannot build one).
    ///
    /// # Panics
    ///
    /// Panics (at compile time when used in a `const`) if `secs` is
    /// negative or NaN.
    pub const fn from_secs_const(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "invalid duration");
        SimDuration(secs)
    }

    /// `const` form of [`SimDuration::from_millis`].
    pub const fn from_millis_const(ms: f64) -> Self {
        Self::from_secs_const(ms * 1e-3)
    }

    /// `const` form of [`SimDuration::from_micros`].
    pub const fn from_micros_const(us: f64) -> Self {
        Self::from_secs_const(us * 1e-6)
    }

    /// `const` form of [`SimDuration::from_nanos`].
    pub const fn from_nanos_const(ns: f64) -> Self {
        Self::from_secs_const(ns * 1e-9)
    }

    /// Creates a span of `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or NaN.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a span of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or NaN.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a span of `ns` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or NaN.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The span in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The span in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Whether this is the [`SimDuration::INFINITY`] sentinel.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "duration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "inf")
        } else if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(1.5);
        let d = SimDuration::from_millis(250.0);
        let t2 = t + d;
        assert_eq!(t2.duration_since(t), d);
        assert_eq!(t2 - t, d);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1.0), SimDuration::from_millis(1e3));
        assert_eq!(SimDuration::from_millis(1.0), SimDuration::from_micros(1e3));
        let a = SimDuration::from_micros(1.0).as_secs();
        let b = SimDuration::from_nanos(1e3).as_secs();
        assert!((a - b).abs() < 1e-18);
    }

    #[test]
    fn ordering_is_total_and_numeric() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO < SimDuration::INFINITY);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn duration_since_rejects_future() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(2.0).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(1.5).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_micros(12.0).to_string(), "12.000us");
        assert_eq!(SimDuration::INFINITY.to_string(), "inf");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(f64::from(i))).sum();
        assert_eq!(total, SimDuration::from_secs(10.0));
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert_eq!(SimTime::try_from_secs(1.0), Ok(SimTime::from_secs(1.0)));
        assert_eq!(
            SimTime::try_from_secs(-1.0),
            Err(UnitError::InvalidTime(-1.0))
        );
        assert_eq!(
            SimDuration::try_from_secs(0.5),
            Ok(SimDuration::from_secs(0.5))
        );
        assert!(SimDuration::try_from_secs(f64::NAN).is_err());
    }

    #[test]
    fn const_constructors_agree_with_runtime_ones() {
        const QUARTER_MS: SimDuration = SimDuration::from_millis_const(0.25);
        const TEN_US: SimDuration = SimDuration::from_micros_const(10.0);
        const SEVENTY_NS: SimDuration = SimDuration::from_nanos_const(70.0);
        assert_eq!(QUARTER_MS, SimDuration::from_millis(0.25));
        assert_eq!(TEN_US, SimDuration::from_micros(10.0));
        assert_eq!(SEVENTY_NS, SimDuration::from_nanos(70.0));
        assert_eq!(
            SimDuration::from_secs_const(2.0),
            SimDuration::from_secs(2.0)
        );
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!(d * 2.0, SimDuration::from_secs(4.0));
        assert_eq!(d / 2.0, SimDuration::from_secs(1.0));
        assert_eq!(d / SimDuration::from_secs(0.5), 4.0);
    }
}
