//! Span substrate for execution traces: tick-quantized instants and
//! depth-encoded span trees.
//!
//! Attribution ("how much of this request was compute vs transfer vs
//! queueing") has to be *exact* — `sum(segments) == end_to_end` as an
//! equality, not a tolerance — and f64 bucket sums cannot deliver
//! that: float addition does not telescope, so summing segment
//! durations drifts away from the difference of the endpoints. The
//! substrate therefore quantizes span *boundaries* (not durations)
//! onto an integer picosecond lattice: a segment is the difference of
//! two converted boundaries, so any partition of `[t0, tn]` into
//! segments sums to `ticks(tn) - ticks(t0)` by telescoping, exactly,
//! in `u64` arithmetic.
//!
//! Picoseconds are the right lattice: the longest simulations in this
//! workspace span ~1e6 simulated seconds (1e18 ps, within `u64`),
//! while the shortest attributed segments are sync overheads of
//! ~0.25 ms (2.5e8 ps) — far coarser than the worst-case f64
//! conversion granularity at that magnitude (~512 ps), so distinct
//! boundaries never collapse.
//!
//! Span trees are stored pre-order with an explicit nesting depth
//! ([`TraceSpan::depth`]) instead of parent pointers: emission is a
//! push per span, and [`validate_nesting`] checks the structural
//! invariants (children contained in their parent, siblings ordered
//! and non-overlapping) with a single stack pass.

use crate::time::{SimDuration, SimTime};

/// Picoseconds per simulated second — the attribution lattice.
pub const TICKS_PER_SEC: f64 = 1e12; // lint: allow(raw-unit-arith): defines the tick lattice the typed units quantize onto

/// Quantizes an absolute instant onto the picosecond lattice.
///
/// Monotone: `a <= b` implies `time_ticks(a) <= time_ticks(b)`, so
/// converted boundaries never reorder against simulated time.
pub fn time_ticks(t: SimTime) -> u64 {
    secs_to_ticks(t.as_secs())
}

/// Quantizes a duration-from-origin onto the picosecond lattice.
pub fn duration_ticks(d: SimDuration) -> u64 {
    secs_to_ticks(d.as_secs())
}

fn secs_to_ticks(secs: f64) -> u64 {
    // `as` saturates (negative -> 0, overflow -> u64::MAX), so even a
    // pathological input cannot wrap the lattice.
    (secs * TICKS_PER_SEC).round() as u64
}

/// One span of a pre-order, depth-encoded span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// What the span covers (`"queue"`, `"service"`, `"decode"`, ...).
    pub name: &'static str,
    /// Nesting depth: 0 is a root, `d + 1` is a child of the nearest
    /// preceding span at depth `d`.
    pub depth: u32,
    /// Start boundary, in ticks ([`TICKS_PER_SEC`]).
    pub start: u64,
    /// End boundary, in ticks; `end >= start`.
    pub end: u64,
}

impl TraceSpan {
    /// Span length in ticks.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is zero-length.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A structural fault in a span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestingError {
    /// Index of the offending span in the pre-order list.
    pub index: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for NestingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "span {}: {}", self.index, self.reason)
    }
}

impl std::error::Error for NestingError {}

/// Checks the pre-order span list for structural soundness: every
/// span has `start <= end`, every non-root span is contained in its
/// parent, and siblings appear in order without overlap (roots
/// included).
///
/// # Errors
///
/// Returns the first [`NestingError`] encountered, in pre-order.
pub fn validate_nesting(spans: &[TraceSpan]) -> Result<(), NestingError> {
    // Open ancestors: (depth, end, cursor) where cursor is the end of
    // the last closed child, i.e. the earliest legal start of the
    // next sibling at depth + 1.
    let mut stack: Vec<(u32, u64, u64)> = Vec::new();
    let mut root_cursor = 0u64;
    for (index, s) in spans.iter().enumerate() {
        let fail = |reason| Err(NestingError { index, reason });
        if s.start > s.end {
            return fail("span ends before it starts");
        }
        while stack.last().is_some_and(|&(d, _, _)| d >= s.depth) {
            stack.pop();
        }
        if s.depth == 0 {
            if s.start < root_cursor {
                return fail("root overlaps the previous root");
            }
            root_cursor = s.end;
        } else {
            let Some(parent) = stack.last_mut() else {
                return fail("orphan span (no ancestor at depth - 1)");
            };
            if parent.0 != s.depth - 1 {
                return fail("orphan span (no ancestor at depth - 1)");
            }
            if s.start < parent.2 {
                return fail("span overlaps its previous sibling");
            }
            if s.start < spans_start_of(parent) || s.end > parent.1 {
                return fail("span escapes its parent");
            }
            parent.2 = s.end;
        }
        stack.push((s.depth, s.end, s.start));
    }
    Ok(())
}

fn spans_start_of(parent: &(u32, u64, u64)) -> u64 {
    // The parent tuple's cursor starts at the parent's own start, so
    // the first child is bounded below by it; afterwards the cursor
    // only grows. Containment below is therefore implied by the
    // sibling check; this helper exists for the first-child case.
    parent.2.min(parent.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, depth: u32, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            name,
            depth,
            start,
            end,
        }
    }

    #[test]
    fn boundary_conversion_telescopes_exactly() {
        // Boundaries at awkward f64 values: segment ticks must sum to
        // the endpoint difference *exactly*, however the conversions
        // round.
        let bounds: Vec<SimTime> = [0.0, 0.1, 0.30000000001, 1.7, 123_456.789, 499_999.999_999]
            .iter()
            .map(|&s| SimTime::from_secs(s))
            .collect();
        let ticks: Vec<u64> = bounds.iter().map(|&t| time_ticks(t)).collect();
        let sum: u64 = ticks.windows(2).map(|w| w[1] - w[0]).sum();
        assert_eq!(sum, ticks[ticks.len() - 1] - ticks[0]);
    }

    #[test]
    fn conversion_is_monotone() {
        let mut last = 0u64;
        for s in [0.0, 1e-13, 2.5e-4, 0.25, 1.0, 1e3, 5e5] {
            let t = time_ticks(SimTime::from_secs(s));
            assert!(t >= last, "ticks reordered at {s}");
            last = t;
        }
    }

    #[test]
    fn negative_and_nan_saturate_to_zero() {
        assert_eq!(secs_to_ticks(-1.0), 0);
        assert_eq!(secs_to_ticks(f64::NAN), 0);
    }

    #[test]
    fn valid_tree_passes() {
        let spans = [
            span("request", 0, 0, 100),
            span("queue", 1, 0, 30),
            span("service", 1, 30, 100),
            span("prefill", 2, 30, 50),
            span("decode", 2, 50, 100),
            span("request", 0, 100, 140),
            span("service", 1, 100, 140),
        ];
        validate_nesting(&spans).unwrap();
    }

    #[test]
    fn inverted_span_rejected() {
        let err = validate_nesting(&[span("x", 0, 10, 5)]).unwrap_err();
        assert!(err.to_string().contains("ends before"));
    }

    #[test]
    fn child_escaping_parent_rejected() {
        let spans = [span("request", 0, 0, 100), span("service", 1, 50, 120)];
        let err = validate_nesting(&spans).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.reason.contains("escapes"));
    }

    #[test]
    fn overlapping_siblings_rejected() {
        let spans = [
            span("request", 0, 0, 100),
            span("queue", 1, 0, 60),
            span("service", 1, 50, 100),
        ];
        let err = validate_nesting(&spans).unwrap_err();
        assert!(err.reason.contains("sibling"));
    }

    #[test]
    fn orphan_depth_rejected() {
        let err = validate_nesting(&[span("deep", 2, 0, 10)]).unwrap_err();
        assert!(err.reason.contains("orphan"));
        let spans = [span("request", 0, 0, 100), span("deep", 2, 0, 10)];
        let err = validate_nesting(&spans).unwrap_err();
        assert!(err.reason.contains("orphan"));
    }

    #[test]
    fn overlapping_roots_rejected() {
        let spans = [span("a", 0, 0, 100), span("b", 0, 50, 150)];
        let err = validate_nesting(&spans).unwrap_err();
        assert!(err.reason.contains("root"));
    }

    #[test]
    fn span_length_helpers() {
        let s = span("x", 0, 10, 25);
        assert_eq!(s.len(), 15);
        assert!(!s.is_empty());
        assert!(span("y", 0, 3, 3).is_empty());
    }
}
