//! Deterministic event queue.
//!
//! Orders entries by `(time, sequence)` so events scheduled for the
//! same instant pop in insertion order. Determinism matters: the whole
//! workspace relies on bit-identical replays for regression tests.
//!
//! Two interchangeable backends implement that total order:
//!
//! * [`QueueBackend::Calendar`] (the default) — a calendar queue
//!   (R. Brown, CACM 1988): events hash into `buckets` by truncated
//!   `time / width`, the pop cursor walks the current "year" and each
//!   bucket keeps its entries `(time, seq)`-sorted. Amortized O(1)
//!   push/pop when the bucket width tracks the mean event spacing,
//!   which a full resize-and-recalibrate pass maintains as the queue
//!   grows and shrinks. This is what lets the DES sustain millions of
//!   scheduled events per run.
//! * [`QueueBackend::Heap`] — the original `BinaryHeap` wrapper,
//!   O(log n) per op. Kept as the reference fallback; the two backends
//!   are proven pop-identical by the tests below and by the
//!   scheduler-equivalence property suite.
//!
//! Because `(time, seq)` is a total order with unique `seq`, *any*
//! correct priority queue yields the same pop sequence — switching
//! backends can never change a simulation result, only its speed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which scheduling structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Bucketed calendar queue — amortized O(1), the default.
    #[default]
    Calendar,
    /// Plain binary heap — O(log n) reference implementation.
    Heap,
}

/// A timestamped FIFO-stable priority queue of events.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Calendar<E>),
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Smallest bucket count; the array doubles/halves between this and
/// whatever the live event population demands.
const MIN_BUCKETS: usize = 4;
/// Resize sample: how many head-of-queue events inform the new width.
const WIDTH_SAMPLE: usize = 64;
/// Classic calendar-queue rule of thumb: a year-day spans about three
/// mean inter-event gaps, so a bucket holds ~1-2 events.
const WIDTH_GAP_FACTOR: f64 = 3.0;

#[derive(Debug)]
struct CalEntry<E> {
    time: SimTime,
    seq: u64,
    /// Precomputed virtual bucket index `trunc(time / width)`. Integer
    /// comparison against the scan cursor sidesteps float boundary
    /// rounding: an entry is "due this day" iff `virt == cursor`,
    /// exactly.
    virt: u64,
    event: E,
}

#[derive(Debug)]
struct Calendar<E> {
    /// `buckets.len()` is a power of two; `virt & mask` indexes it.
    buckets: Vec<VecDeque<CalEntry<E>>>,
    mask: u64,
    /// Reciprocal bucket width (1/seconds): `virt = trunc(t * inv_width)`.
    inv_width: f64,
    /// Lower bound on the `virt` of every pending entry: pushes rewind
    /// it, pops only advance past provably empty virtual days.
    cur_virt: u64,
    count: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: (MIN_BUCKETS as u64) - 1,
            inv_width: 1.0,
            cur_virt: 0,
            count: 0,
        }
    }

    /// Virtual day of `time` under the current width. `SimTime` is
    /// non-negative and never NaN, the `as` cast saturates at
    /// `u64::MAX`, and truncation of `t * inv_width` is weakly monotone
    /// in `t` — so earlier times never map to later days.
    fn virt_of(&self, time: SimTime) -> u64 {
        (time.as_secs() * self.inv_width) as u64
    }

    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let virt = self.virt_of(time);
        let idx = (virt & self.mask) as usize;
        let bucket = &mut self.buckets[idx];
        // Buckets stay (time, seq)-sorted; ties in time share a virt
        // (same width) and therefore a bucket, so seq breaks them here.
        let pos = bucket.partition_point(|e| (e.time, e.seq) < (time, seq));
        bucket.insert(
            pos,
            CalEntry {
                time,
                seq,
                virt,
                event,
            },
        );
        self.cur_virt = self.cur_virt.min(virt);
        self.count += 1;
        if self.count > 2 * self.buckets.len() {
            let doubled = 2 * self.buckets.len();
            self.resize(doubled);
        }
    }

    /// Pops the global `(time, seq)` minimum, or — with a bound — only
    /// if that minimum is at or before `bound`. The scan cursor always
    /// ends on the minimum's virtual day, so a bounded refusal still
    /// pays its scan cost only once.
    fn pop_min(&mut self, bound: Option<SimTime>) -> Option<(SimTime, E)> {
        if self.count == 0 {
            return None;
        }
        // Walk at most one full year from the cursor. Every entry with
        // `virt == cur_virt` lives in bucket `cur_virt & mask` as a
        // sorted prefix, so a front with a later virt proves the whole
        // day empty and the cursor may advance.
        for _ in 0..self.buckets.len() {
            let idx = (self.cur_virt & self.mask) as usize;
            if let Some(front) = self.buckets[idx].front() {
                if front.virt == self.cur_virt {
                    if bound.is_some_and(|b| front.time > b) {
                        return None;
                    }
                    return self.take_front(idx);
                }
            }
            self.cur_virt = self.cur_virt.saturating_add(1);
        }
        // Sparse regime: a whole year was empty. Find the minimum
        // across bucket fronts directly (each front is its bucket's
        // minimum; equal times imply equal virts imply the same bucket,
        // so fronts never tie across buckets) and jump the cursor.
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            if let Some(front) = bucket.front() {
                let key = (front.time, front.seq);
                if best.is_none_or(|(t, s, _)| key < (t, s)) {
                    best = Some((front.time, front.seq, idx));
                }
            }
        }
        let (time, _, idx) = best?;
        if let Some(front) = self.buckets[idx].front() {
            self.cur_virt = front.virt;
        }
        if bound.is_some_and(|b| time > b) {
            return None;
        }
        self.take_front(idx)
    }

    fn take_front(&mut self, idx: usize) -> Option<(SimTime, E)> {
        let entry = self.buckets[idx].pop_front()?;
        self.count -= 1;
        if self.count < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            let halved = self.buckets.len() / 2;
            self.resize(halved);
        }
        Some((entry.time, entry.event))
    }

    /// Next event time without removal: the same scan as [`pop_min`],
    /// minus cursor movement and the pop.
    fn peek_time(&self) -> Option<SimTime> {
        if self.count == 0 {
            return None;
        }
        let mut virt = self.cur_virt;
        for _ in 0..self.buckets.len() {
            let idx = (virt & self.mask) as usize;
            if let Some(front) = self.buckets[idx].front() {
                if front.virt == virt {
                    return Some(front.time);
                }
            }
            virt = virt.saturating_add(1);
        }
        self.buckets
            .iter()
            .filter_map(|b| b.front())
            .map(|front| (front.time, front.seq))
            .min()
            .map(|(time, _)| time)
    }

    /// Rebuilds the bucket array at `new_len` (a power of two),
    /// recalibrating the bucket width to ~[`WIDTH_GAP_FACTOR`] mean
    /// inter-event gaps measured over the [`WIDTH_SAMPLE`] earliest
    /// entries. Sampling from the head keeps one far-future sentinel
    /// (e.g. a horizon timeout) from stretching the width until every
    /// near-term event collapses into one bucket.
    fn resize(&mut self, new_len: usize) {
        let mut all: Vec<CalEntry<E>> = Vec::with_capacity(self.count);
        for bucket in &mut self.buckets {
            all.extend(bucket.drain(..));
        }
        all.sort_unstable_by_key(|a| (a.time, a.seq));

        let sample = &all[..all.len().min(WIDTH_SAMPLE)];
        if sample.len() >= 2 {
            let span = sample[sample.len() - 1].time.as_secs() - sample[0].time.as_secs();
            let gap = span / (sample.len() - 1) as f64;
            let width = WIDTH_GAP_FACTOR * gap;
            if width.is_finite() && width > 0.0 {
                self.inv_width = width.recip();
            }
        }

        self.buckets = (0..new_len).map(|_| VecDeque::new()).collect();
        self.mask = (new_len as u64) - 1;
        self.cur_virt = match all.first() {
            Some(first) => self.virt_of(first.time),
            None => 0,
        };
        // Reinserting in ascending global order keeps every bucket
        // internally sorted with plain push_back.
        for mut entry in all {
            entry.virt = self.virt_of(entry.time);
            let idx = (entry.virt & self.mask) as usize;
            self.buckets[idx].push_back(entry);
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default (calendar) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        let backend = match backend {
            QueueBackend::Heap => Backend::Heap(BinaryHeap::new()),
            QueueBackend::Calendar => Backend::Calendar(Calendar::new()),
        };
        EventQueue { backend, seq: 0 }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            Backend::Heap(_) => QueueBackend::Heap,
            Backend::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Entry { time, seq, event }),
            Backend::Calendar(cal) => cal.push(time, seq, event),
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop().map(|e| (e.time, e.event)),
            Backend::Calendar(cal) => cal.pop_min(None),
        }
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `horizon`; leaves the queue untouched otherwise. One call
    /// replaces the peek-then-pop pair in the executor's hot loop.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap(heap) => {
                if heap.peek().is_some_and(|e| e.time <= horizon) {
                    heap.pop().map(|e| (e.time, e.event))
                } else {
                    None
                }
            }
            Backend::Calendar(cal) => cal.pop_min(Some(horizon)),
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.time),
            Backend::Calendar(cal) => cal.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Calendar(cal) => cal.count,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn backends() -> [QueueBackend; 2] {
        [QueueBackend::Calendar, QueueBackend::Heap]
    }

    #[test]
    fn pops_in_time_order() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for &s in &[3.0, 1.0, 2.0] {
                q.push(t(s), s as u32);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3], "{backend:?}");
        }
    }

    #[test]
    fn ties_are_fifo() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.push(t(1.0), i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn peek_matches_pop() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.push(t(5.0), ());
            q.push(t(4.0), ());
            assert_eq!(q.peek_time(), Some(t(4.0)), "{backend:?}");
            assert_eq!(q.pop().unwrap().0, t(4.0), "{backend:?}");
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<()>::default();
        assert_eq!(q.backend(), QueueBackend::Calendar);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_before_respects_horizon() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.push(t(1.0), "a");
            q.push(t(3.0), "b");
            assert_eq!(q.pop_before(t(2.0)).map(|(_, e)| e), Some("a"));
            assert_eq!(q.pop_before(t(2.0)), None, "{backend:?}");
            assert_eq!(q.len(), 1, "refused pop must not consume");
            assert_eq!(q.pop_before(t(3.0)).map(|(_, e)| e), Some("b"));
            assert!(q.is_empty());
        }
    }

    /// A mixed interleaving of pushes and pops — enough volume to force
    /// several calendar resizes in both directions — must pop in the
    /// exact order the heap backend does.
    #[test]
    fn backends_pop_identically_under_churn() {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        // Deterministic pseudo-random schedule: LCG times, batches of
        // pushes separated by partial drains, plus exact ties and a
        // far-future sentinel.
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut id = 0u32;
        let mut popped_cal = Vec::new();
        let mut popped_heap = Vec::new();
        for round in 0..40 {
            for _ in 0..50 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let secs = (x >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                let time = t(if round % 7 == 0 { secs.floor() } else { secs });
                cal.push(time, id);
                heap.push(time, id);
                id += 1;
            }
            if round == 5 {
                let far = t(f64::MAX);
                cal.push(far, id);
                heap.push(far, id);
                id += 1;
            }
            for _ in 0..30 {
                popped_cal.push(cal.pop());
                popped_heap.push(heap.pop());
            }
        }
        while let Some(p) = cal.pop() {
            popped_cal.push(Some(p));
        }
        while let Some(p) = heap.pop() {
            popped_heap.push(Some(p));
        }
        assert_eq!(popped_cal, popped_heap);
        assert!(cal.is_empty() && heap.is_empty());
    }

    /// The year-scan must hand over to the direct search when the next
    /// event is many empty years ahead, without losing order.
    #[test]
    fn sparse_far_future_events_pop_in_order() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.push(t(0.25), 0u32);
        q.push(t(1e9), 1);
        q.push(t(1e12), 2);
        q.push(t(f64::MAX), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    /// Draining far below the grow threshold must shrink the bucket
    /// array back down and keep popping correctly.
    #[test]
    fn growth_and_shrink_round_trip() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let n = 10_000u32;
        for i in 0..n {
            q.push(t(f64::from(i % 97) * 0.5), i);
        }
        assert_eq!(q.len(), n as usize);
        let mut last = (t(0.0), 0u32);
        let mut seen = 0;
        while let Some((time, e)) = q.pop() {
            if seen > 0 {
                assert!((time, e) > last, "order violated at {seen}");
            }
            last = (time, e);
            seen += 1;
        }
        assert_eq!(seen, n);
    }
}
