//! Deterministic event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders
//! entries by `(time, sequence)` so events scheduled for the same
//! instant pop in insertion order. Determinism matters: the whole
//! workspace relies on bit-identical replays for regression tests.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A timestamped FIFO-stable priority queue of events.
///
/// # Examples
///
/// ```
/// use simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[3.0, 1.0, 2.0] {
            q.push(t(s), s as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(1.0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(t(5.0), ());
        q.push(t(4.0), ());
        assert_eq!(q.peek_time(), Some(t(4.0)));
        assert_eq!(q.pop().unwrap().0, t(4.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<()>::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }
}
