//! Closure-driven discrete-event executor.
//!
//! [`Simulator`] owns a user state `S` and an [`EventQueue`] of
//! entries. Each entry is either a boxed one-shot closure or a *span*
//! — a reusable `FnMut` handler registered up front with
//! [`Simulator::register_span`] and re-armed by id, so recurring
//! activities (arrival processes, coalesced macro-steps) cost zero
//! allocations per firing. Handlers receive a [`Context`] (through
//! which they can read the clock and schedule further events) and
//! `&mut S`. The executor loops until the queue drains or a
//! configured horizon is reached.
//!
//! Structural failures — scheduling into the simulated past, the
//! queue handing back a time before the clock, firing an unregistered
//! span — are recorded as typed [`SimError`] faults instead of
//! panicking: the run stops at the faulting event and
//! [`Simulator::run_checked`] surfaces the error.

use crate::queue::{EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};
use std::fmt;

type BoxedEvent<S> = Box<dyn FnOnce(&mut Context<S>, &mut S)>;
type SpanEvent<S> = Box<dyn FnMut(&mut Context<S>, &mut S)>;

/// Handle to a reusable span handler registered with
/// [`Simulator::register_span`]. Arming it with
/// [`Simulator::schedule_span_at`] / [`Context::schedule_span_at`] /
/// [`Context::reschedule_at`] enqueues the id alone — no per-firing
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// A structural simulation failure.
///
/// These are executor invariants, not domain errors: any of them
/// means an event handler (or the queue itself) broke causality. The
/// executor records the first fault, stops, and surfaces it through
/// [`Simulator::run_checked`] (or a panic in [`Simulator::run`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// An event was scheduled at an instant before the current clock.
    ScheduledIntoPast {
        /// The requested (past) instant.
        at: SimTime,
        /// The clock when the schedule call was made.
        now: SimTime,
    },
    /// The event queue handed back an event timestamped before the
    /// clock — a broken queue-backend invariant.
    ClockWentBackwards {
        /// The popped event's timestamp.
        at: SimTime,
        /// The clock it fell behind.
        now: SimTime,
    },
    /// A span fired whose id was never registered on this simulator.
    UnknownSpan {
        /// The offending handle.
        span: SpanId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduledIntoPast { at, now } => {
                write!(f, "event scheduled into the past: {at} < now {now}")
            }
            SimError::ClockWentBackwards { at, now } => {
                write!(f, "event queue went backwards: {at} < now {now}")
            }
            SimError::UnknownSpan { span } => {
                write!(f, "span {span:?} was never registered on this simulator")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One queue entry: a one-shot closure or a registered span id.
enum Entry<S> {
    Once(BoxedEvent<S>),
    Span(SpanId),
}

/// Scheduling handle passed to every event handler.
///
/// Events cannot touch the executor directly (it is mid-iteration);
/// instead they push follow-up events into the context, which the
/// executor drains after the handler returns. Schedule calls that
/// would break causality record a [`SimError`] fault (absorbed by the
/// executor after the handler returns) rather than panicking.
pub struct Context<S> {
    now: SimTime,
    pending: Vec<(SimTime, Entry<S>)>,
    current_span: Option<SpanId>,
    fault: Option<SimError>,
}

impl<S> fmt::Debug for Context<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .field("current_span", &self.current_span)
            .field("fault", &self.fault)
            .finish()
    }
}

impl<S> Context<S> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Records the first structural fault; later ones are dropped.
    fn record_fault(&mut self, fault: SimError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        self.pending
            .push((self.now + delay, Entry::Once(Box::new(event))));
    }

    /// Schedules `event` at an absolute instant. Scheduling into the
    /// simulated past records a [`SimError::ScheduledIntoPast`] fault
    /// and drops the event; the executor stops after this handler.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        if at < self.now {
            self.record_fault(SimError::ScheduledIntoPast { at, now: self.now });
            return;
        }
        self.pending.push((at, Entry::Once(Box::new(event))));
    }

    /// Arms the registered span `span` at an absolute instant,
    /// allocation-free. Past instants fault as in
    /// [`Context::schedule_at`].
    pub fn schedule_span_at(&mut self, at: SimTime, span: SpanId) {
        if at < self.now {
            self.record_fault(SimError::ScheduledIntoPast { at, now: self.now });
            return;
        }
        self.pending.push((at, Entry::Span(span)));
    }

    /// Re-arms the *currently executing* span at `at` — the
    /// allocation-free way for a recurring activity to continue
    /// itself. Outside a span handler this is a no-op recording an
    /// [`SimError::UnknownSpan`] fault.
    pub fn reschedule_at(&mut self, at: SimTime) {
        match self.current_span {
            Some(span) => self.schedule_span_at(at, span),
            None => self.record_fault(SimError::UnknownSpan {
                span: SpanId(usize::MAX),
            }),
        }
    }
}

/// A discrete-event simulator over user state `S`.
///
/// # Examples
///
/// Count how many events fired:
///
/// ```
/// use simcore::{Simulator, SimDuration};
///
/// let mut sim = Simulator::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1.0), |ctx, n: &mut u32| {
///     *n += 1;
///     ctx.schedule_in(SimDuration::from_secs(1.0), |_, n: &mut u32| *n += 1);
/// });
/// assert_eq!(sim.run(), 2);
/// ```
///
/// Drive a recurring activity through a span — one registration,
/// zero allocations per firing:
///
/// ```
/// use simcore::{SimDuration, SimTime, Simulator};
///
/// let mut sim = Simulator::new(0u32);
/// let tick = sim.register_span(|ctx, n: &mut u32| {
///     *n += 1;
///     if *n < 3 {
///         ctx.reschedule_at(ctx.now() + SimDuration::from_secs(1.0));
///     }
/// });
/// sim.schedule_span_at(SimTime::from_secs(1.0), tick);
/// assert_eq!(sim.run(), 3);
/// ```
pub struct Simulator<S> {
    state: S,
    queue: EventQueue<Entry<S>>,
    spans: Vec<Option<SpanEvent<S>>>,
    now: SimTime,
    fired: u64,
    fault: Option<SimError>,
    /// Recycled follow-up buffer: handed to each event's [`Context`],
    /// drained back after the closure returns. Keeps the hot loop from
    /// allocating one `Vec` per fired event.
    spare: Vec<(SimTime, Entry<S>)>,
}

impl<S: fmt::Debug> fmt::Debug for Simulator<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .field("spans", &self.spans.len())
            .field("fault", &self.fault)
            .field("state", &self.state)
            .finish()
    }
}

impl<S> Simulator<S> {
    /// Creates a simulator owning `state`, with the clock at zero, on
    /// the default (calendar-queue) scheduler.
    pub fn new(state: S) -> Self {
        Self::with_backend(state, QueueBackend::default())
    }

    /// Creates a simulator on an explicit scheduler backend. The
    /// backends share one `(time, seq)` total order, so results are
    /// bit-identical either way; the choice only affects speed.
    pub fn with_backend(state: S, backend: QueueBackend) -> Self {
        Simulator {
            state,
            queue: EventQueue::with_backend(backend),
            spans: Vec::new(),
            now: SimTime::ZERO,
            fired: 0,
            fault: None,
            spare: Vec::new(),
        }
    }

    /// The scheduler backend this simulator runs on.
    pub fn backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far (span firings
    /// included).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// The first structural fault recorded, if any. Once set, further
    /// `run_until` calls are no-ops.
    pub fn fault(&self) -> Option<SimError> {
        self.fault
    }

    /// Registers a reusable span handler and returns its handle. The
    /// handler stays resident for the simulator's lifetime and fires
    /// every time its id is armed — recurring activities pay one
    /// allocation here instead of one per firing.
    pub fn register_span<F>(&mut self, event: F) -> SpanId
    where
        F: FnMut(&mut Context<S>, &mut S) + 'static,
    {
        self.spans.push(Some(Box::new(event)));
        SpanId(self.spans.len() - 1)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        self.queue
            .push(self.now + delay, Entry::Once(Box::new(event)));
    }

    /// Schedules `event` at an absolute instant. Past instants record
    /// a [`SimError::ScheduledIntoPast`] fault and drop the event.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        if at < self.now {
            self.record_fault(SimError::ScheduledIntoPast { at, now: self.now });
            return;
        }
        self.queue.push(at, Entry::Once(Box::new(event)));
    }

    /// Arms the registered span `span` at an absolute instant. Past
    /// instants fault as in [`Simulator::schedule_at`].
    pub fn schedule_span_at(&mut self, at: SimTime, span: SpanId) {
        if at < self.now {
            self.record_fault(SimError::ScheduledIntoPast { at, now: self.now });
            return;
        }
        self.queue.push(at, Entry::Span(span));
    }

    fn record_fault(&mut self, fault: SimError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Runs until the event queue drains, returning the final state.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded a structural [`SimError`] fault;
    /// use [`Simulator::run_checked`] to handle faults as values.
    pub fn run(mut self) -> S {
        self.run_until(SimTime::from_secs(f64::MAX));
        assert!(self.fault.is_none(), "simulation fault: {:?}", self.fault);
        self.state
    }

    /// Runs until the event queue drains and returns the final state,
    /// or the first structural fault recorded along the way.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] fault: an event scheduled into
    /// the past, a queue-order violation, or an unregistered span.
    pub fn run_checked(mut self) -> Result<S, SimError> {
        self.run_until(SimTime::from_secs(f64::MAX));
        match self.fault {
            Some(fault) => Err(fault),
            None => Ok(self.state),
        }
    }

    /// Runs until the queue drains, a structural fault is recorded, or
    /// the next event would fire after `horizon`; the clock never
    /// advances past `horizon`. A faulted simulator stays stopped.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.fault.is_some() {
            return;
        }
        while let Some((time, entry)) = self.queue.pop_before(horizon) {
            // Monotonicity is a structural invariant of the queue
            // backends; a violation is a fault, not a panic.
            if time < self.now {
                self.fault = Some(SimError::ClockWentBackwards {
                    at: time,
                    now: self.now,
                });
                return;
            }
            self.now = time;
            self.fired += 1;
            let mut ctx = Context {
                now: time,
                pending: std::mem::take(&mut self.spare),
                current_span: None,
                fault: None,
            };
            match entry {
                Entry::Once(event) => event(&mut ctx, &mut self.state),
                Entry::Span(span) => match self.spans.get_mut(span.0).and_then(Option::take) {
                    Some(mut event) => {
                        ctx.current_span = Some(span);
                        event(&mut ctx, &mut self.state);
                        self.spans[span.0] = Some(event);
                    }
                    None => ctx.record_fault(SimError::UnknownSpan { span }),
                },
            }
            let fault = ctx.fault;
            let mut pending = ctx.pending;
            for (at, ev) in pending.drain(..) {
                self.queue.push(at, ev);
            }
            self.spare = pending;
            if let Some(fault) = fault {
                self.record_fault(fault);
                return;
            }
        }
    }

    /// Shared access to the state between runs.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the state between runs.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_order_and_chain() {
        let mut sim = Simulator::new(Vec::new());
        sim.schedule_in(SimDuration::from_secs(2.0), |_, log: &mut Vec<u32>| {
            log.push(2);
        });
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, log: &mut Vec<u32>| {
            log.push(1);
            ctx.schedule_in(SimDuration::from_secs(0.5), |_, log: &mut Vec<u32>| {
                log.push(15);
            });
        });
        assert_eq!(sim.run(), vec![1, 15, 2]);
    }

    #[test]
    fn clock_tracks_event_times() {
        let mut sim = Simulator::new(SimTime::ZERO);
        sim.schedule_in(SimDuration::from_secs(3.0), |ctx, seen: &mut SimTime| {
            *seen = ctx.now();
        });
        let seen = sim.run();
        assert_eq!(seen, SimTime::from_secs(3.0));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new(0u32);
        for i in 1..=5 {
            sim.schedule_in(SimDuration::from_secs(f64::from(i)), |_, n: &mut u32| {
                *n += 1;
            });
        }
        sim.run_until(SimTime::from_secs(3.0));
        assert_eq!(*sim.state(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(*sim.state(), 5);
    }

    #[test]
    fn fired_counter_counts() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimDuration::ZERO, |ctx, _| {
            ctx.schedule_in(SimDuration::ZERO, |_, _| {});
        });
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.events_fired(), 2);
    }

    #[test]
    fn scheduling_into_past_is_a_typed_fault() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, n: &mut u32| {
            *n += 1;
            ctx.schedule_at(SimTime::ZERO, |_, n: &mut u32| *n += 100);
            // The faulting event is dropped and the run stops after
            // this handler; later follow-ups never fire either.
            ctx.schedule_in(SimDuration::from_secs(1.0), |_, n: &mut u32| *n += 10);
        });
        let err = sim.run_checked().unwrap_err();
        assert_eq!(
            err,
            SimError::ScheduledIntoPast {
                at: SimTime::ZERO,
                now: SimTime::from_secs(1.0),
            }
        );
        assert!(err.to_string().contains("into the past"));
    }

    #[test]
    fn faulted_simulator_stays_stopped() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, _| {
            ctx.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.schedule_in(SimDuration::from_secs(2.0), |_, n: &mut u32| *n += 1);
        sim.run_until(SimTime::from_secs(10.0));
        assert!(matches!(
            sim.fault(),
            Some(SimError::ScheduledIntoPast { .. })
        ));
        sim.run_until(SimTime::from_secs(20.0));
        assert_eq!(*sim.state(), 0, "events after the fault must not fire");
    }

    #[test]
    #[should_panic(expected = "simulation fault")]
    fn run_panics_on_fault() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, _| {
            ctx.schedule_at(SimTime::ZERO, |_, _| {});
        });
        let () = sim.run();
    }

    #[test]
    fn span_rearms_without_allocation() {
        let mut sim = Simulator::new(Vec::new());
        let tick = sim.register_span(|ctx, log: &mut Vec<f64>| {
            log.push(ctx.now().as_secs());
            if log.len() < 4 {
                ctx.reschedule_at(ctx.now() + SimDuration::from_secs(0.5));
            }
        });
        sim.schedule_span_at(SimTime::from_secs(1.0), tick);
        assert_eq!(sim.run(), vec![1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn spans_interleave_with_one_shot_events_in_queue_order() {
        let mut sim = Simulator::new(Vec::new());
        let span = sim.register_span(|_, log: &mut Vec<&str>| log.push("span"));
        sim.schedule_span_at(SimTime::from_secs(1.0), span);
        sim.schedule_at(SimTime::from_secs(1.0), |_, log: &mut Vec<&str>| {
            log.push("once");
        });
        sim.schedule_span_at(SimTime::from_secs(2.0), span);
        // Equal timestamps preserve schedule order; the span fires
        // once per arming.
        assert_eq!(sim.run(), vec!["span", "once", "span"]);
    }

    #[test]
    fn span_events_count_toward_fired() {
        let mut sim = Simulator::new(());
        let span = sim.register_span(|_, ()| {});
        sim.schedule_span_at(SimTime::from_secs(1.0), span);
        sim.schedule_span_at(SimTime::from_secs(2.0), span);
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(sim.events_fired(), 2);
    }

    #[test]
    fn unregistered_span_is_a_typed_fault() {
        let mut other = Simulator::new(());
        let _ = other.register_span(|_, ()| {});
        let foreign = other.register_span(|_, ()| {});

        let mut sim = Simulator::new(());
        sim.schedule_span_at(SimTime::from_secs(1.0), foreign);
        let err = sim.run_checked().unwrap_err();
        assert!(matches!(err, SimError::UnknownSpan { .. }));
    }

    #[test]
    fn reschedule_outside_a_span_is_a_typed_fault() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, _| {
            ctx.reschedule_at(SimTime::from_secs(2.0));
        });
        let err = sim.run_checked().unwrap_err();
        assert!(matches!(err, SimError::UnknownSpan { .. }));
    }
}
