//! Closure-driven discrete-event executor.
//!
//! [`Simulator`] owns a user state `S` and an [`EventQueue`] of boxed
//! closures. Each closure receives a [`Context`] (through which it can
//! read the clock and schedule further events) and `&mut S`. The
//! executor loops until the queue drains or a configured horizon is
//! reached.

use crate::queue::{EventQueue, QueueBackend};
use crate::time::{SimDuration, SimTime};

type BoxedEvent<S> = Box<dyn FnOnce(&mut Context<S>, &mut S)>;

/// Scheduling handle passed to every event closure.
///
/// Events cannot touch the executor directly (it is mid-iteration);
/// instead they push follow-up events into the context, which the
/// executor drains after the closure returns.
pub struct Context<S> {
    now: SimTime,
    pending: Vec<(SimTime, BoxedEvent<S>)>,
}

impl<S> std::fmt::Debug for Context<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<S> Context<S> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        self.pending.push((self.now + delay, Box::new(event)));
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        self.pending.push((at, Box::new(event)));
    }
}

/// A discrete-event simulator over user state `S`.
///
/// # Examples
///
/// Count how many events fired:
///
/// ```
/// use simcore::{Simulator, SimDuration};
///
/// let mut sim = Simulator::new(0u32);
/// sim.schedule_in(SimDuration::from_secs(1.0), |ctx, n: &mut u32| {
///     *n += 1;
///     ctx.schedule_in(SimDuration::from_secs(1.0), |_, n: &mut u32| *n += 1);
/// });
/// assert_eq!(sim.run(), 2);
/// ```
pub struct Simulator<S> {
    state: Option<S>,
    queue: EventQueue<BoxedEvent<S>>,
    now: SimTime,
    fired: u64,
    /// Recycled follow-up buffer: handed to each event's [`Context`],
    /// drained back after the closure returns. Keeps the hot loop from
    /// allocating one `Vec` per fired event.
    spare: Vec<(SimTime, BoxedEvent<S>)>,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Simulator<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("fired", &self.fired)
            .field("state", &self.state)
            .finish()
    }
}

impl<S> Simulator<S> {
    /// Creates a simulator owning `state`, with the clock at zero, on
    /// the default (calendar-queue) scheduler.
    pub fn new(state: S) -> Self {
        Self::with_backend(state, QueueBackend::default())
    }

    /// Creates a simulator on an explicit scheduler backend. The
    /// backends share one `(time, seq)` total order, so results are
    /// bit-identical either way; the choice only affects speed.
    pub fn with_backend(state: S, backend: QueueBackend) -> Self {
        Simulator {
            state: Some(state),
            queue: EventQueue::with_backend(backend),
            now: SimTime::ZERO,
            fired: 0,
            spare: Vec::new(),
        }
    }

    /// The scheduler backend this simulator runs on.
    pub fn backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        self.queue.push(self.now + delay, Box::new(event));
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at<F>(&mut self, at: SimTime, event: F)
    where
        F: FnOnce(&mut Context<S>, &mut S) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, Box::new(event));
    }

    /// Runs until the event queue drains, returning the final state.
    pub fn run(mut self) -> S {
        self.run_until(SimTime::from_secs(f64::MAX));
        self.state.take().expect("state present")
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`; the clock never advances past `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((time, event)) = self.queue.pop_before(horizon) {
            // Monotonicity is a structural invariant of the queue; the
            // audit switch extends the check to release builds.
            if crate::audit::enabled() {
                assert!(time >= self.now, "event queue went backwards");
            }
            self.now = time;
            self.fired += 1;
            let mut ctx = Context {
                now: time,
                pending: std::mem::take(&mut self.spare),
            };
            let state = self.state.as_mut().expect("state present");
            event(&mut ctx, state);
            let mut pending = ctx.pending;
            for (at, ev) in pending.drain(..) {
                self.queue.push(at, ev);
            }
            self.spare = pending;
        }
    }

    /// Shared access to the state between runs.
    pub fn state(&self) -> &S {
        self.state.as_ref().expect("state present")
    }

    /// Exclusive access to the state between runs.
    pub fn state_mut(&mut self) -> &mut S {
        self.state.as_mut().expect("state present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_order_and_chain() {
        let mut sim = Simulator::new(Vec::new());
        sim.schedule_in(SimDuration::from_secs(2.0), |_, log: &mut Vec<u32>| {
            log.push(2);
        });
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, log: &mut Vec<u32>| {
            log.push(1);
            ctx.schedule_in(SimDuration::from_secs(0.5), |_, log: &mut Vec<u32>| {
                log.push(15);
            });
        });
        assert_eq!(sim.run(), vec![1, 15, 2]);
    }

    #[test]
    fn clock_tracks_event_times() {
        let mut sim = Simulator::new(SimTime::ZERO);
        sim.schedule_in(SimDuration::from_secs(3.0), |ctx, seen: &mut SimTime| {
            *seen = ctx.now();
        });
        let seen = sim.run();
        assert_eq!(seen, SimTime::from_secs(3.0));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulator::new(0u32);
        for i in 1..=5 {
            sim.schedule_in(SimDuration::from_secs(f64::from(i)), |_, n: &mut u32| {
                *n += 1;
            });
        }
        sim.run_until(SimTime::from_secs(3.0));
        assert_eq!(*sim.state(), 3);
        assert_eq!(sim.now(), SimTime::from_secs(3.0));
        sim.run_until(SimTime::from_secs(10.0));
        assert_eq!(*sim.state(), 5);
    }

    #[test]
    fn fired_counter_counts() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimDuration::ZERO, |ctx, _| {
            ctx.schedule_in(SimDuration::ZERO, |_, _| {});
        });
        sim.run_until(SimTime::from_secs(1.0));
        assert_eq!(sim.events_fired(), 2);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new(());
        sim.schedule_in(SimDuration::from_secs(1.0), |ctx, _| {
            ctx.schedule_at(SimTime::ZERO, |_, _| {});
        });
        sim.run_until(SimTime::from_secs(2.0));
    }
}
