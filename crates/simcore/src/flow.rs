//! Processor-sharing model of a bandwidth-limited resource.
//!
//! A [`FlowScheduler`] models a link (PCIe, a memory channel, a DMA
//! engine) with a fixed capacity in bytes/second. Any number of flows
//! may be active at once; capacity is divided among them in proportion
//! to their weights (plain processor sharing when all weights are 1).
//!
//! The model is *analytic*: instead of ticking, the scheduler
//! recomputes each flow's remaining bytes whenever the set of active
//! flows changes, and can always report the next completion instant.
//! The discrete-event executor uses that instant to schedule the
//! completion event.

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;
use std::collections::BTreeMap;

/// Identifier of an active flow within one [`FlowScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining_bytes: f64,
    weight: f64,
}

/// A shared link dividing `capacity` bytes/second among active flows.
///
/// # Examples
///
/// Two equal flows share the link, so each takes twice as long:
///
/// ```
/// use simcore::units::Bandwidth;
/// use simcore::{FlowScheduler, SimTime};
///
/// let mut link = FlowScheduler::new(Bandwidth::from_bytes_per_s(100.0));
/// let t0 = SimTime::ZERO;
/// let a = link.start(t0, 100.0, 1.0);
/// let b = link.start(t0, 100.0, 1.0);
/// let (t1, first) = link.next_completion(t0).unwrap();
/// assert_eq!(t1.as_secs(), 2.0); // each gets 50 B/s
/// link.complete(t1, first);
/// let (t2, _) = link.next_completion(t1).unwrap();
/// assert_eq!(t2.as_secs(), 2.0); // b finished simultaneously
/// # let _ = (a, b);
/// ```
#[derive(Debug)]
pub struct FlowScheduler {
    capacity_bps: f64,
    // BTreeMap, not HashMap: iteration order reaches the f64 weight
    // sums below, and hash order would make them run-dependent.
    flows: BTreeMap<FlowId, Flow>,
    last_update: SimTime,
    next_id: u64,
    total_bytes_done: f64,
}

impl FlowScheduler {
    /// Creates a scheduler for a link with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not finite and positive.
    pub fn new(capacity: Bandwidth) -> Self {
        let capacity_bps = capacity.as_bytes_per_s();
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "invalid capacity: {capacity_bps}"
        );
        FlowScheduler {
            capacity_bps,
            flows: BTreeMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
            total_bytes_done: 0.0,
        }
    }

    /// Link capacity in bytes/second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully drained through the link so far (progress of
    /// still-active flows is included as of the last update).
    pub fn total_bytes_done(&self) -> f64 {
        self.total_bytes_done
    }

    /// Starts a new flow of `bytes` at `now` with the given `weight`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative/NaN, `weight` is not positive, or
    /// `now` precedes a previous update.
    // lint: allow(untyped-unit-fn): fluid-flow model — fractional byte counts are meaningful, so `bytes` stays f64
    pub fn start(&mut self, now: SimTime, bytes: f64, weight: f64) -> FlowId {
        assert!(bytes >= 0.0 && !bytes.is_nan(), "invalid bytes: {bytes}");
        assert!(weight > 0.0 && weight.is_finite(), "invalid weight");
        self.advance_to(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                remaining_bytes: bytes,
                weight,
            },
        );
        id
    }

    /// The instant at which the next flow (the one with least
    /// remaining service) will finish, together with its id; `None`
    /// when idle. Does not mutate progress.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, FlowId)> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_update);
        let elapsed = (now - self.last_update).as_secs();
        let total_weight: f64 = self.flows.values().map(|f| f.weight).sum();
        let mut best: Option<(f64, FlowId)> = None;
        for (&id, flow) in &self.flows {
            let share = self.capacity_bps * flow.weight / total_weight;
            let progressed = (share * elapsed).min(flow.remaining_bytes);
            let remaining = flow.remaining_bytes - progressed;
            let finish_in = remaining / share;
            let candidate = (finish_in, id);
            best = Some(match best {
                None => candidate,
                Some(b) if candidate.0 < b.0 || (candidate.0 == b.0 && candidate.1 < b.1) => {
                    candidate
                }
                Some(b) => b,
            });
        }
        let (finish_in, id) = best.expect("non-empty"); // lint: allow(no-panic): loop above ran over a non-empty map, so `best` is set
        Some((now + SimDuration::from_secs(finish_in.max(0.0)), id))
    }

    /// Declares `id` complete at `now`, removing it.
    ///
    /// The caller obtains `now` from [`FlowScheduler::next_completion`];
    /// completing a flow early simply forfeits its remaining bytes
    /// (used to model cancellation).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not active.
    pub fn complete(&mut self, now: SimTime, id: FlowId) {
        self.advance_to(now);
        let flow = self.flows.remove(&id).expect("unknown flow id"); // lint: allow(no-panic): structural invariant — ids are issued by this scheduler itself
                                                                     // Any residue (from cancellation or float fuzz) is forfeited.
        self.total_bytes_done += flow.remaining_bytes.max(0.0);
    }

    /// Remaining bytes of an active flow as of `now` (read-only probe).
    pub fn remaining_bytes(&self, now: SimTime, id: FlowId) -> Option<f64> {
        let flow = self.flows.get(&id)?;
        let elapsed = (now - self.last_update).as_secs();
        let total_weight: f64 = self.flows.values().map(|f| f.weight).sum();
        let share = self.capacity_bps * flow.weight / total_weight;
        Some((flow.remaining_bytes - share * elapsed).max(0.0))
    }

    /// Advances internal progress accounting to `now`.
    fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "flow scheduler time went backwards"
        );
        let elapsed = (now - self.last_update).as_secs();
        self.last_update = now;
        if elapsed == 0.0 || self.flows.is_empty() {
            return;
        }
        let total_weight: f64 = self.flows.values().map(|f| f.weight).sum();
        for flow in self.flows.values_mut() {
            let share = self.capacity_bps * flow.weight / total_weight;
            let progressed = (share * elapsed).min(flow.remaining_bytes);
            flow.remaining_bytes -= progressed;
            self.total_bytes_done += progressed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn bps(b: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_s(b)
    }

    #[test]
    fn single_flow_runs_at_full_capacity() {
        let mut link = FlowScheduler::new(bps(1e9)); // 1 GB/s
        let id = link.start(SimTime::ZERO, 5e8, 1.0);
        let (done, got) = link.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(got, id);
        assert!((done.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn staggered_flows_share_fairly() {
        // Flow A: 100 B starting at t=0. Flow B: 100 B starting at t=0.5
        // on a 100 B/s link. A runs alone for 0.5 s (50 B), then shares
        // at 50 B/s for its remaining 50 B -> finishes at 1.5 s. B then
        // runs alone: 50 B remain at 1.5 s -> finishes at 2.0 s.
        let mut link = FlowScheduler::new(bps(100.0));
        let a = link.start(t(0.0), 100.0, 1.0);
        let b = link.start(t(0.5), 100.0, 1.0);
        let (ta, fa) = link.next_completion(t(0.5)).unwrap();
        assert_eq!(fa, a);
        assert!((ta.as_secs() - 1.5).abs() < 1e-12);
        link.complete(ta, a);
        let (tb, fb) = link.next_completion(ta).unwrap();
        assert_eq!(fb, b);
        assert!((tb.as_secs() - 2.0).abs() < 1e-12);
        link.complete(tb, b);
        assert_eq!(link.active_flows(), 0);
        assert!((link.total_bytes_done() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn weights_bias_shares() {
        // Weight-3 vs weight-1 on a 100 B/s link: shares are 75/25.
        let mut link = FlowScheduler::new(bps(100.0));
        let heavy = link.start(t(0.0), 75.0, 3.0);
        let _light = link.start(t(0.0), 75.0, 1.0);
        let (th, fh) = link.next_completion(t(0.0)).unwrap();
        assert_eq!(fh, heavy);
        assert!((th.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_bytes_probe() {
        let mut link = FlowScheduler::new(bps(100.0));
        let id = link.start(t(0.0), 100.0, 1.0);
        assert!((link.remaining_bytes(t(0.25), id).unwrap() - 75.0).abs() < 1e-12);
        assert_eq!(link.remaining_bytes(t(0.0), FlowId(999)), None);
    }

    #[test]
    fn idle_link_reports_none() {
        let link = FlowScheduler::new(bps(1.0));
        assert!(link.next_completion(SimTime::ZERO).is_none());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = FlowScheduler::new(bps(100.0));
        let id = link.start(t(1.0), 0.0, 1.0);
        let (done, got) = link.next_completion(t(1.0)).unwrap();
        assert_eq!(got, id);
        assert_eq!(done, t(1.0));
    }

    #[test]
    #[should_panic(expected = "unknown flow id")]
    fn completing_unknown_flow_panics() {
        let mut link = FlowScheduler::new(bps(1.0));
        link.complete(SimTime::ZERO, FlowId(7));
    }
}
