//! Deterministic, splittable random-number helpers.
//!
//! Every stochastic element of the simulator (workload lengths, jitter
//! models) draws from a [`SimRng`] derived from a master seed plus a
//! stream label, so independent subsystems can be reordered without
//! perturbing each other's draws and whole runs replay bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG stream.
///
/// # Examples
///
/// ```
/// use simcore::rng::SimRng;
///
/// let mut a = SimRng::from_seed_and_stream(42, "workload");
/// let mut b = SimRng::from_seed_and_stream(42, "workload");
/// assert_eq!(a.next_f64(), b.next_f64());
/// let mut c = SimRng::from_seed_and_stream(42, "jitter");
/// assert_ne!(a.next_f64(), c.next_f64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Derives a stream from a master `seed` and a `stream` label.
    pub fn from_seed_and_stream(seed: u64, stream: &str) -> Self {
        // FNV-1a over the label, mixed with the seed; cheap, stable,
        // and well-distributed enough to decorrelate streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in stream.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(seed ^ h),
        }
    }

    /// Splits off an independent child stream.
    pub fn split(&mut self, label: &str) -> SimRng {
        let child_seed: u64 = self.inner.gen();
        SimRng::from_seed_and_stream(child_seed, label)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Normal sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_replays() {
        let mut a = SimRng::from_seed_and_stream(7, "x");
        let mut b = SimRng::from_seed_and_stream(7, "x");
        for _ in 0..32 {
            assert_eq!(a.next_f64(), b.next_f64());
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let mut a = SimRng::from_seed_and_stream(7, "x");
        let mut b = SimRng::from_seed_and_stream(7, "y");
        let same = (0..32).filter(|_| a.next_f64() == b.next_f64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_deterministic() {
        let mut parent1 = SimRng::from_seed_and_stream(9, "p");
        let mut parent2 = SimRng::from_seed_and_stream(9, "p");
        let mut c1 = parent1.split("child");
        let mut c2 = parent2.split("child");
        assert_eq!(c1.next_f64(), c2.next_f64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::from_seed_and_stream(1, "u");
        for _ in 0..1000 {
            let v = rng.uniform_usize(3, 9);
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn normal_has_roughly_right_mean() {
        let mut rng = SimRng::from_seed_and_stream(1, "n");
        let mean: f64 = (0..10_000).map(|_| rng.normal(5.0, 2.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 5.0).abs() < 0.1, "mean drifted: {mean}");
    }
}
