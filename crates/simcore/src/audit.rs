//! Global switch for runtime invariant auditing.
//!
//! The flag lives here, at the bottom of the crate graph, so the
//! engine and every layer above it (links, executors, the `simaudit`
//! crate) can consult one switch without a dependency cycle. Auditing
//! is on by default in debug builds and off in release builds unless
//! forced (the CLI's `--audit` flag).

use std::sync::atomic::{AtomicBool, Ordering};

static FORCED: AtomicBool = AtomicBool::new(false);

/// Whether invariant auditing is active: always in debug builds,
/// in release builds only after [`force_enable`].
pub fn enabled() -> bool {
    cfg!(debug_assertions) || FORCED.load(Ordering::Relaxed)
}

/// Turns auditing on for the rest of the process regardless of build
/// profile (the CLI's `--audit` flag).
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// Whether auditing was explicitly forced on (as opposed to being a
/// debug-build default).
pub fn is_forced() -> bool {
    FORCED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_builds_audit_by_default() {
        // The test suite runs under debug_assertions.
        assert!(enabled());
    }

    #[test]
    fn forcing_is_sticky_and_observable() {
        force_enable();
        assert!(is_forced());
        assert!(enabled());
    }
}
