//! # simcore — discrete-event simulation engine
//!
//! Foundation crate for the `helmsim` workspace. It provides the
//! building blocks every other crate in the workspace composes into the
//! full out-of-core LLM inference simulator:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated wall-clock time with
//!   total ordering and convenient unit constructors.
//! * [`EventQueue`] — a deterministic priority queue of timestamped
//!   events (FIFO among equal timestamps).
//! * [`Simulator`] — a closure-driven discrete-event executor.
//! * [`FlowScheduler`] — an analytic processor-sharing model of a
//!   bandwidth-limited resource (a PCIe link, a memory channel) serving
//!   concurrent flows.
//! * [`stats`] — statistic accumulators implementing the paper's
//!   "arithmetic mean discarding the first sample" metric rule.
//! * [`rng`] — deterministic, splittable random-number helpers.
//!
//! # Examples
//!
//! Run two events in timestamp order:
//!
//! ```
//! use simcore::{Simulator, SimDuration};
//!
//! let mut sim = Simulator::new(Vec::<&str>::new());
//! sim.schedule_in(SimDuration::from_millis(2.0), |_, log: &mut Vec<&str>| log.push("second"));
//! sim.schedule_in(SimDuration::from_millis(1.0), |_, log: &mut Vec<&str>| log.push("first"));
//! let log = sim.run();
//! assert_eq!(log, vec!["first", "second"]);
//! ```

pub mod audit;
pub mod engine;
pub mod flow;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use engine::{SimError, Simulator, SpanId};
pub use flow::{FlowId, FlowScheduler};
pub use queue::{EventQueue, QueueBackend};
pub use stats::{Accumulator, Reservoir, SeriesStats};
pub use time::{SimDuration, SimTime};
pub use trace::{NestingError, TraceSpan};
pub use units::{Bandwidth, ByteSize, ComputeRate, PowerDensity, UnitError};
