//! Item-level parse pass over the token stream.
//!
//! [`parse`] turns a [`Lexed`] file into a [`ParsedFile`]: the raw
//! tokens plus the syntactic *context* the rules need —
//!
//! * which token ranges are test code (`#[cfg(test)]` items and
//!   `#[test]` functions),
//! * which token ranges are operator-impl bodies (`impl Add for …`
//!   and friends, where panicking on violated arithmetic invariants
//!   is the only option — the trait cannot return `Result`),
//! * every `fn` item (name, visibility, parameter names and types),
//! * every `const` item (name and type),
//! * every waiver comment (`// lint: allow(<rule>): <justification>`).
//!
//! This is deliberately not a full Rust parser: it recognizes exactly
//! the item shapes the rules consume, and degrades to "no context"
//! (rather than failing) on anything it does not understand.

use crate::lexer::{Lexed, TokKind, Token};

/// Traits whose impl bodies are exempt from `no-panic`: operator and
/// aggregation traits with fixed signatures that cannot surface a
/// `Result`, so a violated structural invariant can only panic.
const OP_TRAITS: &[&str] = &[
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Rem",
    "Neg",
    "Not",
    "AddAssign",
    "SubAssign",
    "MulAssign",
    "DivAssign",
    "RemAssign",
    "Shl",
    "Shr",
    "ShlAssign",
    "ShrAssign",
    "BitAnd",
    "BitOr",
    "BitXor",
    "BitAndAssign",
    "BitOrAssign",
    "BitXorAssign",
    "Index",
    "IndexMut",
    "Deref",
    "DerefMut",
    "Sum",
    "Product",
    "Ord",
    "PartialOrd",
];

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (the identifier before the `:`).
    pub name: String,
    /// `Some(type)` when the declared type is a single bare numeric
    /// token (`f64`, `u64`, …); `None` for any richer type.
    pub bare_numeric: Option<String>,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (currently read only by unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub name: String,
    /// Whether the item is `pub` (plain `pub` only — `pub(crate)` and
    /// narrower do not cross the crate boundary and do not count).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword (for context queries).
    pub tok: usize,
    /// Parameters, in order; `self` receivers are skipped.
    pub params: Vec<Param>,
}

/// One `const` item.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// Const name.
    pub name: String,
    /// `Some(type)` when the declared type is a single bare numeric
    /// token; `None` otherwise.
    pub bare_numeric: Option<String>,
    /// 1-based line of the `const` keyword.
    pub line: usize,
    /// Token index of the `const` keyword.
    pub tok: usize,
}

/// One waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule the waiver suppresses.
    pub rule: String,
    /// 1-based source line the waiver applies to (the comment's own
    /// line for a trailing comment, the next code line otherwise).
    pub target_line: usize,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// Required free-text justification.
    pub justification: String,
}

/// A parsed file: tokens plus syntactic context.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// The token stream the rules scan.
    pub tokens: Vec<Token>,
    /// Inclusive token-index ranges of test code.
    pub test_ranges: Vec<(usize, usize)>,
    /// Inclusive token-index ranges of operator-impl bodies.
    pub op_impl_ranges: Vec<(usize, usize)>,
    /// All `fn` items.
    pub fns: Vec<FnItem>,
    /// All `const` items.
    pub consts: Vec<ConstItem>,
    /// All well-formed waiver comments.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver comments, as human-readable errors.
    pub waiver_errors: Vec<String>,
}

impl ParsedFile {
    /// Whether token `idx` sits inside test code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| (s..=e).contains(&idx))
    }

    /// Whether token `idx` sits inside an operator-impl body.
    pub fn in_op_impl(&self, idx: usize) -> bool {
        self.op_impl_ranges
            .iter()
            .any(|&(s, e)| (s..=e).contains(&idx))
    }
}

/// Parses a lexed file into items and context ranges.
pub fn parse(lexed: &Lexed, known_rules: &[&str]) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile {
        tokens: toks.clone(),
        ..ParsedFile::default()
    };
    collect_test_ranges(toks, &mut out.test_ranges);
    collect_op_impls(toks, &mut out.op_impl_ranges);
    collect_fns(toks, &mut out.fns);
    collect_consts(toks, &mut out.consts);
    collect_waivers(lexed, known_rules, &mut out.waivers, &mut out.waiver_errors);
    out
}

/// Skips a balanced `<…>` group starting at `toks[i] == '<'`; returns
/// the index past the closing `>`. `->` arrows inside do not close
/// the group.
fn skip_angles(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            let arrow = i > 0 && toks[i - 1].is_punct('-') && toks[i - 1].off + 1 == toks[i].off;
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// Finds the matching `}` for the `{` at `toks[open]`; returns its
/// index (or the last token on unbalanced input).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Records token ranges of `#[cfg(test)]` items and `#[test]` fns.
fn collect_test_ranges(toks: &[Token], out: &mut Vec<(usize, usize)>) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let is_cfg_test = toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 6).is_some_and(|t| t.is_punct(']'));
        let is_test_attr = toks.get(i + 2).is_some_and(|t| t.is_ident("test"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test && !is_test_attr {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + if is_cfg_test { 7 } else { 4 };
        // The gated item runs to its body's close brace, or to a `;`
        // for brace-less items (`#[cfg(test)] mod external;`).
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            j += 1;
        }
        let end = if j < toks.len() && toks[j].is_punct('{') {
            matching_brace(toks, j)
        } else {
            j.min(toks.len().saturating_sub(1))
        };
        out.push((start, end));
        i = end + 1;
    }
}

/// Records body token ranges of operator-trait impls.
fn collect_op_impls(toks: &[Token], out: &mut Vec<(usize, usize)>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        // Walk the (possible) trait path up to `for`; an opening
        // brace first means an inherent impl.
        let mut last_ident: Option<&str> = None;
        let mut trait_name: Option<&str> = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_ident("for") {
                trait_name = last_ident;
                break;
            }
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                j = skip_angles(toks, j);
                continue;
            }
            if t.kind == TokKind::Ident {
                last_ident = Some(&t.text);
            }
            j += 1;
        }
        if trait_name.is_some_and(|n| OP_TRAITS.contains(&n)) {
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            if j < toks.len() {
                let end = matching_brace(toks, j);
                out.push((j, end));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Whether the `fn` at `toks[i]` is preceded by a plain `pub`
/// (qualifiers like `const`/`async`/`unsafe`/`extern "C"` may sit in
/// between; `pub(crate)` and narrower do not count).
fn fn_is_pub(toks: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        let qualifier = t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.kind == TokKind::Str;
        if qualifier {
            continue;
        }
        return t.is_ident("pub");
    }
    false
}

/// Records every `fn` item with its visibility and parameters.
fn collect_fns(toks: &[Token], out: &mut Vec<FnItem>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        // `fn(` is a function-pointer type, not an item.
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(toks, j);
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            is_pub: fn_is_pub(toks, i),
            line: toks[i].line,
            tok: i,
            params: parse_params(toks, j),
        });
    }
}

/// Bare numeric type tokens `untyped-unit-fn` / `untyped-unit-const`
/// care about.
const BARE_NUMERIC_TYPES: &[&str] = &["f64", "f32", "u64", "u32", "u128", "usize", "i64", "i32"];

/// Parses the parameter list whose `(` is at `toks[open]`.
fn parse_params(toks: &[Token], open: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut paren = 0usize;
    let mut angle = 0usize;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if paren == 1
            && angle == 0
            && t.kind == TokKind::Ident
            && t.text != "self"
            && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `name: Type` at the top level of the list (a lone `:`
            // — `::` is a path inside a type, not a binding).
            let ty = toks.get(j + 2);
            let after = toks.get(j + 3);
            let bare = ty
                .filter(|t| {
                    t.kind == TokKind::Ident && BARE_NUMERIC_TYPES.contains(&t.text.as_str())
                })
                .filter(|_| after.is_some_and(|a| a.is_punct(',') || a.is_punct(')')))
                .map(|t| t.text.clone());
            params.push(Param {
                name: t.text.clone(),
                bare_numeric: bare,
            });
            j += 2;
            continue;
        }
        j += 1;
    }
    params
}

/// Records every `const NAME: Type` item (const generics and
/// `const fn` never match the `name:` shape with a unit suffix).
fn collect_consts(toks: &[Token], out: &mut Vec<ConstItem>) {
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        let ty = toks.get(i + 3);
        let after = toks.get(i + 4);
        let bare = ty
            .filter(|t| t.kind == TokKind::Ident && BARE_NUMERIC_TYPES.contains(&t.text.as_str()))
            .filter(|_| after.is_some_and(|a| a.is_punct('=') || a.is_punct(';')))
            .map(|t| t.text.clone());
        out.push(ConstItem {
            name: name_tok.text.clone(),
            bare_numeric: bare,
            line: toks[i].line,
            tok: i,
        });
    }
}

/// Parses waiver comments (`lint: allow(<rule>): <justification>`).
fn collect_waivers(
    lexed: &Lexed,
    known_rules: &[&str],
    out: &mut Vec<Waiver>,
    errors: &mut Vec<String>,
) {
    for c in &lexed.comments {
        let text = c.text.trim_start_matches('/').trim();
        if !text.starts_with("lint:") {
            continue;
        }
        let rest = text["lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            errors.push(format!(
                "line {}: malformed waiver `{}` — expected `lint: allow(<rule>): <justification>`",
                c.line, text
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(format!(
                "line {}: waiver is missing `)` after the rule name",
                c.line
            ));
            continue;
        };
        let rule = rest[..close].trim();
        if !known_rules.contains(&rule) {
            errors.push(format!(
                "line {}: waiver names unknown rule `{rule}` (known: {})",
                c.line,
                known_rules.join(", ")
            ));
            continue;
        }
        let tail = rest[close + 1..].trim_start();
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if justification.is_empty() {
            errors.push(format!(
                "line {}: waiver for `{rule}` has no justification — add `: <why>`",
                c.line
            ));
            continue;
        }
        // A trailing comment waives its own line; a standalone
        // comment waives the next code line.
        let trailing = lexed
            .tokens
            .iter()
            .any(|t| t.line == c.line && t.off < c.off);
        let target_line = if trailing {
            c.line
        } else {
            lexed
                .tokens
                .iter()
                .find(|t| t.off > c.off)
                .map_or(c.line, |t| t.line)
        };
        out.push(Waiver {
            rule: rule.to_owned(),
            target_line,
            comment_line: c.line,
            justification: justification.to_owned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::rules::RULES;

    fn parsed(src: &str) -> ParsedFile {
        parse(&tokenize(src), RULES)
    }

    #[test]
    fn finds_cfg_test_and_test_fn_ranges() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n}\n#[test]\nfn standalone() {}\nfn tail() {}";
        let p = parsed(src);
        assert_eq!(p.test_ranges.len(), 2);
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        let tail = p.fns.iter().find(|f| f.name == "tail").unwrap();
        let standalone = p.fns.iter().find(|f| f.name == "standalone").unwrap();
        assert!(p.in_test(helper.tok));
        assert!(p.in_test(standalone.tok));
        assert!(!p.in_test(tail.tok));
    }

    #[test]
    fn finds_operator_impl_bodies() {
        let src = "impl Add for B { fn add(self, o: B) -> B { panic!() } }\n\
                   impl Mul<u64> for B { fn mul(self, r: u64) -> B { todo!() } }\n\
                   impl B { fn plain(&self) {} }\n\
                   impl Display for B { fn fmt(&self) {} }";
        let p = parsed(src);
        assert_eq!(p.op_impl_ranges.len(), 2);
        let add = p.fns.iter().find(|f| f.name == "add").unwrap();
        let mul = p.fns.iter().find(|f| f.name == "mul").unwrap();
        let plain = p.fns.iter().find(|f| f.name == "plain").unwrap();
        let fmt = p.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert!(p.in_op_impl(add.tok));
        assert!(p.in_op_impl(mul.tok));
        assert!(!p.in_op_impl(plain.tok));
        assert!(!p.in_op_impl(fmt.tok));
    }

    #[test]
    fn generic_impl_headers_parse() {
        let src = "impl<'a, T: Fn() -> f64> AddAssign<&'a T> for W<T> { fn add_assign(&mut self, o: &'a T) { x.unwrap(); } }";
        let p = parsed(src);
        assert_eq!(p.op_impl_ranges.len(), 1);
    }

    #[test]
    fn fn_visibility_and_params() {
        let src = "pub fn a(bytes: f64, size: ByteSize) {}\n\
                   pub(crate) fn b(secs: f64) {}\n\
                   fn c(ns: u64) {}\n\
                   pub const unsafe fn d(kv_bytes: u64) {}";
        let p = parsed(src);
        let a = p.fns.iter().find(|f| f.name == "a").unwrap();
        assert!(a.is_pub);
        assert_eq!(a.params.len(), 2);
        assert_eq!(a.params[0].name, "bytes");
        assert_eq!(a.params[0].bare_numeric.as_deref(), Some("f64"));
        assert_eq!(a.params[1].bare_numeric, None);
        assert!(!p.fns.iter().find(|f| f.name == "b").unwrap().is_pub);
        assert!(!p.fns.iter().find(|f| f.name == "c").unwrap().is_pub);
        assert!(p.fns.iter().find(|f| f.name == "d").unwrap().is_pub);
    }

    #[test]
    fn params_with_generic_types_do_not_confuse_the_split() {
        let src = "pub fn f(map: BTreeMap<String, Vec<f64>>, rate_bps: f64) {}";
        let p = parsed(src);
        let f = &p.fns[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "map");
        assert_eq!(f.params[0].bare_numeric, None);
        assert_eq!(f.params[1].bare_numeric.as_deref(), Some("f64"));
    }

    #[test]
    fn consts_record_bare_types() {
        let src = "pub const A_MS: f64 = 1.0;\npub const B_MS: SimDuration = SimDuration::ZERO;";
        let p = parsed(src);
        assert_eq!(p.consts.len(), 2);
        assert_eq!(p.consts[0].bare_numeric.as_deref(), Some("f64"));
        assert_eq!(p.consts[1].bare_numeric, None);
    }

    #[test]
    fn waiver_trailing_and_standalone_targets() {
        let src = "let a = x.unwrap(); // lint: allow(no-panic): invariant: id issued here\n\
                   // lint: allow(wall-clock-in-sim): stats are wall-clock by definition\n\
                   let started = Instant::now();";
        let p = parsed(src);
        assert_eq!(p.waiver_errors, Vec::<String>::new());
        assert_eq!(p.waivers.len(), 2);
        assert_eq!(p.waivers[0].rule, "no-panic");
        assert_eq!(p.waivers[0].target_line, 1);
        assert_eq!(p.waivers[0].justification, "invariant: id issued here");
        assert_eq!(p.waivers[1].rule, "wall-clock-in-sim");
        assert_eq!(p.waivers[1].target_line, 3);
    }

    #[test]
    fn malformed_waivers_are_errors() {
        let src = "// lint: allow(no-panic)\n// lint: allow(bogus-rule): x\n// lint: deny(no-panic): x\nfn f() {}";
        let p = parsed(src);
        assert!(p.waivers.is_empty());
        assert_eq!(p.waiver_errors.len(), 3);
        assert!(p.waiver_errors[0].contains("no justification"));
        assert!(p.waiver_errors[1].contains("unknown rule"));
        assert!(p.waiver_errors[2].contains("malformed waiver"));
    }
}
