//! The original 3-rule lexer scanner, kept verbatim.
//!
//! The multi-pass engine in [`crate::rules`] replaced this scanner,
//! but it stays in-tree as an oracle: a workspace self-check test
//! asserts that for the three original rules (`raw-unit-arith`,
//! `no-panic`, `untyped-unit-const`) the token-based pass reports
//! exactly the findings this substring scanner reports, file by file
//! and line by line. A divergence means one of the two mis-lexed
//! something, which is precisely the bug class the self-check exists
//! to catch.

use crate::lexer;
use crate::rules::Finding;

const UNIT_FACTORS: &[&str] = &["1e3", "1e6", "1e9", "1e12", "1024.0"];
const UNIT_SHIFTS: &[&str] = &["<< 20", "<< 30"];
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];
const UNIT_SUFFIXES: &[&str] = &[
    "_MS", "_SECS", "_US", "_NS", "_BYTES", "_KB", "_MB", "_GB", "_KIB", "_MIB", "_GIB", "_GBPS",
    "_BPS",
];
const BARE_NUMERIC_TYPES: &[&str] = &["f64", "f32", "u64", "u32", "u128", "usize", "i64", "i32"];

/// Files where raw unit factors are the point: the conversion layer.
const UNIT_HOME_FILES: &[&str] = &["units.rs", "time.rs"];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All start offsets of `pat` in `chars`.
fn find_all(chars: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    if p.is_empty() || p.len() > chars.len() {
        return Vec::new();
    }
    (0..=chars.len() - p.len())
        .filter(|&i| chars[i..i + p.len()] == p[..])
        .collect()
}

/// Scans one file's source with the original substring rules,
/// returning every hit of the three seed rules.
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let blanked = lexer::blank_noncode(source);
    let chars: Vec<char> = blanked.chars().collect();
    let test_spans = lexer::cfg_test_spans(&blanked);
    let in_test = |idx: usize| test_spans.iter().any(|&(s, e)| (s..=e).contains(&idx));
    let line_of = |idx: usize| 1 + chars[..idx].iter().filter(|&&c| c == '\n').count();
    let basename = rel_path.rsplit('/').next().unwrap_or(rel_path);

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, idx: usize| {
        findings.push(Finding {
            rule,
            file: rel_path.to_owned(),
            line: line_of(idx),
            exempt: None,
        });
    };

    // raw-unit-arith: unit factors with identifier boundaries on both
    // sides (so `21e3`, `1e30`, `0.1e3` never match).
    if !UNIT_HOME_FILES.contains(&basename) {
        for pat in UNIT_FACTORS {
            let plen = pat.chars().count();
            for idx in find_all(&chars, pat) {
                let prev_ok = idx == 0 || (!is_ident_char(chars[idx - 1]) && chars[idx - 1] != '.');
                let next_ok =
                    !matches!(chars.get(idx + plen), Some(&c) if is_ident_char(c) || c == '.');
                if prev_ok && next_ok && !in_test(idx) {
                    push("raw-unit-arith", idx);
                }
            }
        }
        for pat in UNIT_SHIFTS {
            for idx in find_all(&chars, pat) {
                let after = chars.get(idx + pat.chars().count());
                if !matches!(after, Some(&c) if c.is_ascii_digit()) && !in_test(idx) {
                    push("raw-unit-arith", idx);
                }
            }
        }
    }

    // no-panic: explicit aborts in library code.
    for pat in PANIC_TOKENS {
        for idx in find_all(&chars, pat) {
            let macro_like = !pat.starts_with('.');
            if macro_like && idx > 0 && is_ident_char(chars[idx - 1]) {
                continue;
            }
            if !in_test(idx) {
                push("no-panic", idx);
            }
        }
    }

    // untyped-unit-const: `const NAME_<UNIT>: <bare numeric>`.
    for idx in find_all(&chars, "const ") {
        if idx > 0 && is_ident_char(chars[idx - 1]) {
            continue;
        }
        if in_test(idx) {
            continue;
        }
        let mut j = idx + "const ".chars().count();
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        let name_start = j;
        while matches!(chars.get(j), Some(&c) if is_ident_char(c)) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        if !UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        if chars.get(j) != Some(&':') {
            continue;
        }
        j += 1;
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        let ty_start = j;
        while matches!(chars.get(j), Some(&c) if is_ident_char(c)) {
            j += 1;
        }
        let ty: String = chars[ty_start..j].iter().collect();
        if BARE_NUMERIC_TYPES.contains(&ty.as_str()) {
            push("untyped-unit-const", idx);
        }
    }

    findings.sort_by_key(|f| (f.rule, f.line));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_panics() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\") }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&found), vec!["no-panic", "no-panic"]);
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_are_exempt() {
        let src = "// calls .unwrap() and panic!()\nfn f() -> &'static str { \"1e9 .unwrap()\" }\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_raw_unit_factors_with_boundaries() {
        let src = "fn f(gb: f64) -> f64 { gb * 1e9 }\nfn g() -> f64 { 21e3 + 1e30 + 0.1e3 }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "raw-unit-arith");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unit_home_files_may_convert() {
        let src = "pub fn from_gb(gb: f64) -> u64 { (gb * 1e9) as u64 }\n";
        assert!(scan_file("crates/simcore/src/units.rs", src).is_empty());
        assert_eq!(scan_file("crates/other/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn flags_binary_shifts_but_not_other_shifts() {
        let src = "fn f(x: u64) -> u64 { (1u64 << 20) + (x << 7) + (x << 203) }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn flags_untyped_unit_consts_only() {
        let src = "pub const SYNC_MS: f64 = 0.25;\npub const GOOD_MS: SimDuration = SimDuration::ZERO;\npub const COUNT: u64 = 3;\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "untyped-unit-const");
        assert_eq!(found[0].line, 1);
    }
}
