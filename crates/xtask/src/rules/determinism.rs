//! Determinism rules: `nondeterministic-iteration`,
//! `wall-clock-in-sim`, `unordered-float-reduce`.
//!
//! These guard the invariants the repo's reproducibility proofs rest
//! on: the autoplace winner is bit-identical at any thread count and
//! the cost-table evaluator is bitwise-equal to the seed — but only
//! as long as no hash-order, wall-clock, or scheduling-order value
//! leaks into simulation results.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;

/// Crates whose code paths feed simulated results: hash-order
/// iteration there can reach f64 accumulation, report ordering, or
/// event scheduling.
pub const SIM_CRATES: &[&str] = &[
    "simcore", "hetmem", "xfer", "gpusim", "llm", "workload", "core",
];

/// Crates allowed to read the wall clock (the bench harness measures
/// real elapsed time; xtask is tooling).
pub const WALL_CLOCK_CRATES: &[&str] = &["bench", "xtask"];

/// Rayon-style parallel iterator sources.
const PAR_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
    "par_chunks_mut",
    "par_drain",
    "par_windows",
];

/// Order-sensitive reduction adapters: float addition is not
/// associative, so these must not terminate a parallel chain.
const REDUCERS: &[&str] = &[
    "sum",
    "product",
    "fold",
    "fold_with",
    "reduce",
    "reduce_with",
];

/// `nondeterministic-iteration`: `HashMap`/`HashSet` anywhere in a
/// simulation crate. Hash iteration order is randomized per process;
/// `BTreeMap`/`BTreeSet` (or sorted key extraction) give the same
/// API with a deterministic order. Any hit needs a fix or a waiver
/// arguing order never escapes.
pub fn nondeterministic_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !SIM_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (i, t) in ctx.parsed.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.parsed.in_test(i)
        {
            out.push(ctx.finding("nondeterministic-iteration", t.line));
        }
    }
}

/// `wall-clock-in-sim`: `Instant`/`SystemTime` outside the bench
/// harness. Simulated time lives in `SimTime`; wall-clock reads in
/// sim code are either a bug or deliberate run-metadata (the
/// `SearchStats.wall_ms` case), which takes a waiver.
pub fn wall_clock_in_sim(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if WALL_CLOCK_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for (i, t) in ctx.parsed.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !ctx.parsed.in_test(i)
        {
            out.push(ctx.finding("wall-clock-in-sim", t.line));
        }
    }
}

/// `unordered-float-reduce`: a parallel iterator chain ending in an
/// order-sensitive reduction (`sum`, `fold`, `reduce`, …). Reduction
/// tree shape varies with thread count and work stealing, so f64
/// results differ run to run; route through the deterministic
/// fixed-chunk reduction in `autoplace/engine.rs` instead
/// (`par_iter().map(…).collect()` then a sequential fold).
pub fn unordered_float_reduce(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.parsed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !PAR_SOURCES.contains(&t.text.as_str())
            || ctx.parsed.in_test(i)
        {
            continue;
        }
        // Walk the rest of the expression this chain lives in: stop
        // at `;` or `,` at chain depth, or when the enclosing group
        // closes.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                depth += 1;
            } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if depth == 0 && (u.is_punct(';') || u.is_punct(',')) {
                break;
            } else if depth == 0
                && u.is_punct('.')
                && toks.get(j + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident && REDUCERS.contains(&n.text.as_str())
                })
            {
                out.push(ctx.finding("unordered-float-reduce", toks[j + 1].line));
            }
            j += 1;
        }
    }
}
