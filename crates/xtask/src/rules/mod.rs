//! The rule catalogue of the multi-pass lint.
//!
//! Every rule consumes a [`FileCtx`] — the parsed file plus its
//! workspace coordinates — and emits [`Finding`]s. Rules never apply
//! waivers themselves; they only *mark* findings that are
//! auto-exempt by syntactic context (e.g. `no-panic` inside an
//! operator impl). The driver in [`crate::lint`] applies waiver
//! comments and the allowlist on top.
//!
//! | rule | guards against |
//! |------|----------------|
//! | `raw-unit-arith` | magic unit factors (`1e9`, `1024.0`, `<< 20`) outside the conversion layer |
//! | `no-panic` | `.unwrap()`/`.expect`/`panic!` in library code |
//! | `untyped-unit-const` | unit-suffixed consts with bare numeric types |
//! | `nondeterministic-iteration` | `HashMap`/`HashSet` in simulation crates |
//! | `wall-clock-in-sim` | `Instant`/`SystemTime` next to simulated time |
//! | `unordered-float-reduce` | parallel f64 reductions outside the deterministic chunked path |
//! | `untyped-unit-fn` | public fns taking raw numerics named like units |

pub mod determinism;
pub mod panics;
pub mod units;

use crate::parse::ParsedFile;

/// Every rule the engine knows, in report order.
pub const RULES: &[&str] = &[
    "raw-unit-arith",
    "no-panic",
    "untyped-unit-const",
    "nondeterministic-iteration",
    "wall-clock-in-sim",
    "unordered-float-reduce",
    "untyped-unit-fn",
];

/// One rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// `Some(reason)` when syntactic context auto-exempts the hit
    /// (it is reported but not counted against the allowlist).
    pub exempt: Option<&'static str>,
}

/// A parsed file plus its workspace coordinates.
pub struct FileCtx<'a> {
    /// Workspace-relative path (`crates/<name>/src/...`).
    pub rel_path: &'a str,
    /// Crate name extracted from the path.
    pub crate_name: &'a str,
    /// File basename.
    pub basename: &'a str,
    /// The parse-pass output.
    pub parsed: &'a ParsedFile,
}

impl FileCtx<'_> {
    /// Emits a finding at `line` for `rule`.
    pub fn finding(&self, rule: &'static str, line: usize) -> Finding {
        Finding {
            rule,
            file: self.rel_path.to_owned(),
            line,
            exempt: None,
        }
    }
}

/// Runs every rule over one file, returning findings sorted by
/// (rule, line) — the same order the legacy scanner used.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    units::raw_unit_arith(ctx, &mut findings);
    panics::no_panic(ctx, &mut findings);
    units::untyped_unit_const(ctx, &mut findings);
    determinism::nondeterministic_iteration(ctx, &mut findings);
    determinism::wall_clock_in_sim(ctx, &mut findings);
    determinism::unordered_float_reduce(ctx, &mut findings);
    units::untyped_unit_fn(ctx, &mut findings);
    findings.sort_by_key(|f| (f.rule, f.line));
    findings
}
