//! Panic-hygiene rule: `no-panic`.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;

/// Macros that abort.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// `no-panic`: `.unwrap()`, `.expect(…)`, `panic!`, `todo!`,
/// `unimplemented!` in library code. Context-aware: hits inside
/// operator-trait impl bodies are auto-exempt — those traits cannot
/// return `Result`, so a violated arithmetic invariant (e.g.
/// `ByteSize` overflow inside `Add`) can only panic, and forcing an
/// allowlist entry for each would teach people to ignore the list.
pub fn no_panic(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.parsed.tokens;
    let mut hit = |i: usize, line: usize| {
        if ctx.parsed.in_test(i) {
            return;
        }
        let mut f = ctx.finding("no-panic", line);
        if ctx.parsed.in_op_impl(i) {
            f.exempt = Some("operator-impl");
        }
        out.push(f);
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('.') {
            let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            let open = toks.get(i + 2).is_some_and(|n| n.is_punct('('));
            let unwrap_call =
                name.text == "unwrap" && open && toks.get(i + 3).is_some_and(|n| n.is_punct(')'));
            let expect_call = name.text == "expect" && open;
            if unwrap_call || expect_call {
                hit(i, t.line);
            }
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            hit(i, t.line);
        }
    }
}
