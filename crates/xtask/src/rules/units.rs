//! Unit-soundness rules: `raw-unit-arith`, `untyped-unit-const`,
//! `untyped-unit-fn`.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;

/// Files where raw unit factors are the point: the conversion layer.
pub const UNIT_HOME_FILES: &[&str] = &["units.rs", "time.rs"];

/// Crates whose public APIs traffic in physical quantities and must
/// use the typed unit structs (`ByteSize`, `Bandwidth`, `SimTime`,
/// `SimDuration`) rather than raw numerics.
pub const UNIT_CRATES: &[&str] = &["simcore", "hetmem", "xfer", "gpusim", "llm", "core"];

const UNIT_FACTORS: &[&str] = &["1e3", "1e6", "1e9", "1e12", "1024.0"];
const UNIT_SUFFIXES: &[&str] = &[
    "_MS", "_SECS", "_US", "_NS", "_BYTES", "_KB", "_MB", "_GB", "_KIB", "_MIB", "_GIB", "_GBPS",
    "_BPS",
];

/// Parameter-name vocabulary that marks a raw numeric as carrying a
/// physical unit. Matched against `_`-separated name segments.
const UNIT_VOCAB: &[&str] = &[
    "bytes", "byte", "bps", "kbps", "mbps", "gbps", "kb", "mb", "gb", "tb", "kib", "mib", "gib",
    "tib", "sec", "secs", "ms", "us", "ns", "millis", "micros", "nanos", "flops", "gflops",
    "tflops", "hz", "khz", "mhz", "ghz", "watts", "joules",
];

/// `raw-unit-arith`: bare decimal/binary unit factors outside the
/// conversion layer. Token-level: a factor is a hit only when it is
/// a whole numeric token (so `21e3`, `1e30`, `1e9f64` never match)
/// not glued to a `.` (float parts and method calls on literals).
pub fn raw_unit_arith(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if UNIT_HOME_FILES.contains(&ctx.basename) {
        return;
    }
    let toks = &ctx.parsed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.parsed.in_test(i) {
            continue;
        }
        if t.kind == TokKind::Number && UNIT_FACTORS.contains(&t.text.as_str()) {
            let glued_prev = i > 0 && toks[i - 1].is_punct('.') && toks[i - 1].off + 1 == t.off;
            let glued_next = toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('.') && t.off + t.text.chars().count() == n.off);
            if !glued_prev && !glued_next {
                out.push(ctx.finding("raw-unit-arith", t.line));
            }
        }
        // `<< 20` / `<< 30`: two adjacent `<` then the bare number.
        if t.is_punct('<')
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('<') && n.off == t.off + 1)
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Number && (n.text == "20" || n.text == "30"))
        {
            out.push(ctx.finding("raw-unit-arith", t.line));
        }
    }
}

/// `untyped-unit-const`: `const NAME_<UNIT>: <bare numeric>` — unit
/// constants must carry a `SimDuration`/`ByteSize`/`Bandwidth` type.
pub fn untyped_unit_const(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for c in &ctx.parsed.consts {
        if ctx.parsed.in_test(c.tok) || c.bare_numeric.is_none() {
            continue;
        }
        if UNIT_SUFFIXES.iter().any(|s| c.name.ends_with(s)) {
            out.push(ctx.finding("untyped-unit-const", c.line));
        }
    }
}

/// Whether a parameter name speaks the unit vocabulary.
fn name_is_unit_like(name: &str) -> bool {
    name.split('_')
        .any(|seg| UNIT_VOCAB.contains(&seg.to_ascii_lowercase().as_str()))
}

/// `untyped-unit-fn`: public fns in unit-bearing crates whose raw
/// `f64`/`u64` parameters are named like physical quantities must
/// take the typed unit structs instead. One finding per offending
/// fn, anchored at the `fn` line (so one waiver covers a signature
/// however rustfmt wraps it).
pub fn untyped_unit_fn(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !UNIT_CRATES.contains(&ctx.crate_name) || UNIT_HOME_FILES.contains(&ctx.basename) {
        return;
    }
    for f in &ctx.parsed.fns {
        if !f.is_pub || ctx.parsed.in_test(f.tok) {
            continue;
        }
        let offending = f
            .params
            .iter()
            .any(|p| p.bare_numeric.is_some() && name_is_unit_like(&p.name));
        if offending {
            out.push(ctx.finding("untyped-unit-fn", f.line));
        }
    }
}
