//! Rendering of lint results: human text and machine JSON.
//!
//! The JSON form (`cargo xtask lint --format json`) is what CI
//! archives as a build artifact; its shape is versioned and
//! hand-rolled (xtask takes no dependencies, matching the
//! vendored-rayon precedent).

use crate::rules::{Finding, RULES};
use std::fmt::Write as _;

/// One waived finding with the waiver's justification.
#[derive(Debug, Clone)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The waiver comment's justification text.
    pub justification: String,
}

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Active violations, counted against the allowlist.
    pub findings: Vec<Finding>,
    /// Findings suppressed by in-source waiver comments.
    pub waived: Vec<Waived>,
    /// Findings auto-exempted by syntactic context.
    pub auto_exempt: Vec<Finding>,
    /// Ratchet / waiver errors; non-empty means the lint failed.
    pub errors: Vec<String>,
    /// Allowlist entry count.
    pub allow_entries: usize,
    /// Findings covered by allowlist budgets.
    pub budgeted: usize,
}

impl LintReport {
    /// Whether the run passed.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Renders the human-readable form (errors to the front).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            let _ = writeln!(out, "{e}");
        }
        if !self.errors.is_empty() {
            let _ = writeln!(
                out,
                "\nlint failed. Fix the violations (preferred), add a \
                 `// lint: allow(<rule>): <why>` waiver, or update budgets in \
                 lint-allowlist.txt with a justification comment per entry."
            );
            return out;
        }
        let _ = write!(
            out,
            "lint clean: {} rule(s), {} waived, {} auto-exempt",
            RULES.len(),
            self.waived.len(),
            self.auto_exempt.len()
        );
        if self.allow_entries == 0 {
            let _ = writeln!(out, ", empty allowlist");
        } else {
            let _ = writeln!(
                out,
                ", {} budgeted finding(s) across {} allowlist entr{}",
                self.budgeted,
                self.allow_entries,
                if self.allow_entries == 1 { "y" } else { "ies" }
            );
        }
        out
    }

    /// Renders the versioned JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(
            out,
            "  \"status\": \"{}\",",
            if self.is_clean() { "clean" } else { "failed" }
        );
        let rules: Vec<String> = RULES.iter().map(|r| json_str(r)).collect();
        let _ = writeln!(out, "  \"rules\": [{}],", rules.join(", "));
        let _ = writeln!(
            out,
            "  \"allowlist\": {{ \"entries\": {}, \"budgeted_findings\": {} }},",
            self.allow_entries, self.budgeted
        );
        write_finding_array(&mut out, "findings", &self.findings, |_| None);
        out.push_str(",\n");
        let _ = write!(out, "  \"waived\": [");
        for (i, w) in self.waived.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            write_one(
                &mut out,
                &w.finding,
                Some(("justification", &w.justification)),
            );
        }
        out.push_str(if self.waived.is_empty() { "]" } else { "\n  ]" });
        out.push_str(",\n");
        write_finding_array(&mut out, "auto_exempt", &self.auto_exempt, |f| {
            f.exempt.map(|r| ("reason", r))
        });
        out.push_str(",\n");
        let errs: Vec<String> = self.errors.iter().map(|e| json_str(e)).collect();
        if errs.is_empty() {
            let _ = writeln!(out, "  \"errors\": []");
        } else {
            let _ = writeln!(out, "  \"errors\": [\n    {}\n  ]", errs.join(",\n    "));
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_one(out: &mut String, f: &Finding, extra: Option<(&str, &str)>) {
    let _ = write!(
        out,
        "    {{ \"rule\": {}, \"file\": {}, \"line\": {}",
        json_str(f.rule),
        json_str(&f.file),
        f.line
    );
    if let Some((key, val)) = extra {
        let _ = write!(out, ", \"{key}\": {}", json_str(val));
    }
    out.push_str(" }");
}

fn write_finding_array<'a>(
    out: &mut String,
    key: &str,
    findings: &'a [Finding],
    extra: impl Fn(&'a Finding) -> Option<(&'a str, &'a str)>,
) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        write_one(out, f, extra(f));
    }
    if findings.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, line: usize) -> Finding {
        Finding {
            rule,
            file: "crates/demo/src/lib.rs".into(),
            line,
            exempt: None,
        }
    }

    #[test]
    fn clean_report_renders_text_and_json() {
        let rep = LintReport {
            findings: vec![finding("no-panic", 3)],
            allow_entries: 1,
            budgeted: 1,
            ..LintReport::default()
        };
        assert!(rep.is_clean());
        let text = rep.to_text();
        assert!(text.contains("lint clean"));
        let json = rep.to_json();
        assert!(json.contains("\"status\": \"clean\""));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"line\": 3"));
    }

    #[test]
    fn errors_flip_status_and_escape() {
        let rep = LintReport {
            errors: vec!["bad \"thing\"\nhappened".into()],
            ..LintReport::default()
        };
        assert!(!rep.is_clean());
        assert!(rep.to_text().contains("lint failed"));
        let json = rep.to_json();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("bad \\\"thing\\\"\\nhappened"));
    }

    #[test]
    fn waived_and_exempt_sections_carry_annotations() {
        let mut exempted = finding("no-panic", 9);
        exempted.exempt = Some("operator-impl");
        let rep = LintReport {
            waived: vec![Waived {
                finding: finding("wall-clock-in-sim", 5),
                justification: "stats are wall-clock".into(),
            }],
            auto_exempt: vec![exempted],
            ..LintReport::default()
        };
        let json = rep.to_json();
        assert!(json.contains("\"justification\": \"stats are wall-clock\""));
        assert!(json.contains("\"reason\": \"operator-impl\""));
    }
}
