//! The lint driver: scan, waive, ratchet, report.
//!
//! The pipeline per file is lex ([`crate::lexer`]) → parse
//! ([`crate::parse`]) → rules ([`crate::rules`]); this module walks
//! `crates/*/src`, applies waiver comments and the ratcheted
//! allowlist on top of the raw findings, and renders the result
//! ([`crate::report`]) as text or JSON.
//!
//! Suppression has three distinct layers, weakest claim first:
//!
//! 1. **auto-exempt** — syntactic context proves the rule does not
//!    apply (panics inside operator impls, test code). No
//!    annotation needed; reported in JSON for transparency.
//! 2. **waivers** — `// lint: allow(<rule>): <justification>` on (or
//!    directly above) the offending line. For single sites where the
//!    rule is right in general but wrong here; the justification is
//!    mandatory and an unused waiver fails the lint, so waivers
//!    cannot outlive the code they excuse.
//! 3. **allowlist** — `lint-allowlist.txt` budgets per `(rule,
//!    file)`, for legacy clusters too large to waive line by line.
//!    The budget only ratchets down.

use crate::allowlist::{self, Allowlist, FindingLines};
use crate::lexer;
use crate::parse::{self, Waiver};
use crate::report::{LintReport, Waived};
use crate::rules::{self, Finding, RULES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Output format for the lint report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable text (the default).
    Text,
    /// Versioned machine-readable JSON (archived by CI).
    Json,
}

/// Everything the multi-pass scan produced for one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// All rule hits, including auto-exempt ones, pre-waiver.
    pub findings: Vec<Finding>,
    /// Well-formed waiver comments.
    pub waivers: Vec<Waiver>,
    /// Malformed waiver comments (each fails the lint).
    pub waiver_errors: Vec<String>,
}

/// Runs lex → parse → all rules over one file's source.
pub fn scan_file(rel_path: &str, source: &str) -> FileScan {
    let lexed = lexer::tokenize(source);
    let parsed = parse::parse(&lexed, RULES);
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let ctx = rules::FileCtx {
        rel_path,
        crate_name,
        basename: rel_path.rsplit('/').next().unwrap_or(rel_path),
        parsed: &parsed,
    };
    FileScan {
        findings: rules::run_all(&ctx),
        waivers: parsed.waivers,
        waiver_errors: parsed
            .waiver_errors
            .iter()
            .map(|e| format!("{rel_path}:{e}"))
            .collect(),
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Every `(rel_path, source)` pair in scope: workspace crates' `src/`
/// trees (vendor stubs and the `tests/` package are out of scope).
pub fn workspace_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((rel, source));
    }
    Ok(out)
}

/// Applies the file's waivers to its findings: matching findings move
/// to `waived`, and every waiver must suppress at least one finding.
fn apply_waivers(
    rel_path: &str,
    scan: FileScan,
    report: &mut LintReport,
    active: &mut FindingLines,
) {
    report.errors.extend(scan.waiver_errors);
    let mut used = vec![false; scan.waivers.len()];
    for f in scan.findings {
        if f.exempt.is_some() {
            report.auto_exempt.push(f);
            continue;
        }
        let waiver = scan
            .waivers
            .iter()
            .position(|w| w.rule == f.rule && w.target_line == f.line);
        match waiver {
            Some(i) => {
                used[i] = true;
                report.waived.push(Waived {
                    finding: f,
                    justification: scan.waivers[i].justification.clone(),
                });
            }
            None => {
                active
                    .entry((f.rule.to_owned(), f.file.clone()))
                    .or_default()
                    .push(f.line);
                report.findings.push(f);
            }
        }
    }
    for (i, w) in scan.waivers.iter().enumerate() {
        if !used[i] {
            report.errors.push(format!(
                "{rel_path}:{}: unused waiver for `{}` — the line it targets ({}) has no \
                 such finding; remove the waiver",
                w.comment_line, w.rule, w.target_line
            ));
        }
    }
}

/// Checks active findings against the ratcheted allowlist, appending
/// budget violations to `report.errors`.
fn apply_allowlist(allow: &Allowlist, active: &FindingLines, report: &mut LintReport) {
    report.allow_entries = allow.len();
    for ((rule, file), lines) in active {
        let budget = allow.budget(rule, file);
        let actual = lines.len();
        if actual > budget {
            let shown: Vec<String> = lines.iter().map(|l| format!("{file}:{l}")).collect();
            report.errors.push(format!(
                "{rule}: {file} has {actual} violation(s), allowlist budget is {budget}:\n    {}",
                shown.join("\n    ")
            ));
        } else if actual < budget {
            report.errors.push(format!(
                "{rule}: {file} improved to {actual} violation(s) but the allowlist still \
                 budgets {budget} — lower the budget in {} (ratchet)",
                allowlist::FILE_NAME
            ));
        } else {
            report.budgeted += actual;
        }
    }
    for entry in allow.entries() {
        if !active.contains_key(&(entry.rule.clone(), entry.file.clone())) {
            report.errors.push(format!(
                "{}: stale allowlist entry for {} — the file is clean (or gone); remove the entry",
                entry.rule, entry.file
            ));
        }
    }
}

/// Runs the legacy substring scanner and the token pass over every
/// in-scope file and reports divergences on the three seed rules.
///
/// This is the engine's own regression gate: the original scanner is
/// kept verbatim in [`crate::legacy`] as an oracle, and any
/// disagreement means one of the two mis-lexed real code. Exposed as
/// `cargo xtask lint --self-check` and exercised by a unit test.
pub fn self_check(root: &Path) -> Result<Vec<String>, String> {
    let legacy_rules = ["raw-unit-arith", "no-panic", "untyped-unit-const"];
    let mut divergences = Vec::new();
    for (rel, source) in workspace_sources(root)? {
        let mut old: Vec<(&'static str, usize)> = crate::legacy::scan_file(&rel, &source)
            .iter()
            .map(|f| (f.rule, f.line))
            .collect();
        let mut new: Vec<(&'static str, usize)> = scan_file(&rel, &source)
            .findings
            .iter()
            .filter(|f| legacy_rules.contains(&f.rule))
            .map(|f| (f.rule, f.line))
            .collect();
        old.sort_unstable();
        new.sort_unstable();
        if old != new {
            divergences.push(format!(
                "{rel}: legacy scanner found {old:?}, token pass found {new:?}"
            ));
        }
    }
    Ok(divergences)
}

/// Scans the workspace and builds the full report plus the active
/// `(rule, file) → lines` map (pre-allowlist).
pub fn scan_workspace(root: &Path) -> Result<(LintReport, FindingLines), String> {
    let mut report = LintReport::default();
    let mut active = BTreeMap::new();
    for (rel, source) in workspace_sources(root)? {
        let scan = scan_file(&rel, &source);
        apply_waivers(&rel, scan, &mut report, &mut active);
    }
    Ok((report, active))
}

/// Runs the lint: scan, waive, compare against the allowlist (or
/// refresh it with `update`), render, and return a process exit code.
pub fn run(root: &Path, update: bool, format: Format) -> Result<i32, String> {
    let (mut report, active) = scan_workspace(root)?;
    let allow_path = root.join(allowlist::FILE_NAME);

    if update {
        if !report.errors.is_empty() {
            // Waiver problems must be fixed before counts can be
            // trusted enough to write back.
            eprint!("{}", report.to_text());
            return Ok(1);
        }
        let previous = Allowlist::load(&allow_path)?;
        let updated = previous.rebudget(&active)?;
        updated.save(&allow_path)?;
        println!(
            "wrote {} with {} entr{}",
            allowlist::FILE_NAME,
            updated.len(),
            if updated.len() == 1 { "y" } else { "ies" }
        );
        return Ok(0);
    }

    let allow = Allowlist::load(&allow_path)?;
    apply_allowlist(&allow, &active, &mut report);

    match format {
        Format::Json => print!("{}", report.to_json()),
        Format::Text => {
            if report.is_clean() {
                print!("{}", report.to_text());
            } else {
                eprint!("{}", report.to_text());
            }
        }
    }
    Ok(i32::from(!report.is_clean()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triples(findings: &[Finding]) -> Vec<(&'static str, usize)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    // -- per-rule positive/negative fixtures ------------------------------

    #[test]
    fn no_panic_fixture() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g() { panic!(\"boom\") }\n\
                   fn h(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let scan = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(
            triples(&scan.findings),
            vec![("no-panic", 1), ("no-panic", 2)]
        );
    }

    #[test]
    fn no_panic_auto_exempts_operator_impls() {
        let src = "impl Add for B {\n    fn add(self, o: B) -> B {\n        \
                   B(self.0.checked_add(o.0).expect(\"overflow\"))\n    }\n}\n\
                   fn free() { None::<u8>.expect(\"boom\"); }\n";
        let scan = scan_file("crates/demo/src/lib.rs", src);
        let exempt: Vec<_> = scan
            .findings
            .iter()
            .filter(|f| f.exempt.is_some())
            .collect();
        let live: Vec<_> = scan
            .findings
            .iter()
            .filter(|f| f.exempt.is_none())
            .collect();
        assert_eq!(exempt.len(), 1);
        assert_eq!(exempt[0].exempt, Some("operator-impl"));
        assert_eq!(exempt[0].line, 3);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].line, 6);
    }

    #[test]
    fn raw_unit_arith_fixture() {
        let src = "fn f(gb: f64) -> f64 { gb * 1e9 }\n\
                   fn g() -> f64 { 21e3 + 1e30 + 0.1e3 + 1e9f64 }\n\
                   fn h(x: u64) -> u64 { (1u64 << 20) + (x << 7) }\n";
        let scan = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(
            triples(&scan.findings),
            vec![("raw-unit-arith", 1), ("raw-unit-arith", 3)]
        );
    }

    #[test]
    fn untyped_unit_const_fixture() {
        let src = "pub const SYNC_MS: f64 = 0.25;\n\
                   pub const GOOD_MS: SimDuration = SimDuration::ZERO;\n\
                   pub const COUNT: u64 = 3;\n";
        let scan = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(triples(&scan.findings), vec![("untyped-unit-const", 1)]);
    }

    #[test]
    fn nondeterministic_iteration_fixture() {
        let src = "use std::collections::HashMap;\n\
                   pub struct S { m: HashMap<u32, f64> }\n";
        // Positive: sim crate.
        let scan = scan_file("crates/simcore/src/state.rs", src);
        assert_eq!(
            triples(&scan.findings),
            vec![
                ("nondeterministic-iteration", 1),
                ("nondeterministic-iteration", 2)
            ]
        );
        // Negative: non-sim crate, and BTreeMap anywhere.
        assert!(scan_file("crates/xtask/src/state.rs", src)
            .findings
            .is_empty());
        let btree = "use std::collections::BTreeMap;\npub struct S { m: BTreeMap<u32, f64> }\n";
        assert!(scan_file("crates/simcore/src/state.rs", btree)
            .findings
            .is_empty());
    }

    #[test]
    fn wall_clock_fixture() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let scan = scan_file("crates/core/src/engine.rs", src);
        assert_eq!(
            triples(&scan.findings),
            vec![("wall-clock-in-sim", 1), ("wall-clock-in-sim", 2)]
        );
        // The bench harness may measure real time.
        assert!(scan_file("crates/bench/src/main.rs", src)
            .findings
            .is_empty());
        // Test code may too.
        let test_src = "#[cfg(test)]\nmod tests {\n use std::time::Instant;\n}\n";
        assert!(scan_file("crates/core/src/engine.rs", test_src)
            .findings
            .is_empty());
    }

    #[test]
    fn unordered_float_reduce_fixture() {
        let positive = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum() }\n\
                        fn g(xs: &[f64]) -> f64 {\n    xs.par_iter()\n        \
                        .fold(|| 0.0, |a, b| a + b)\n        .reduce(|| 0.0, |a, b| a + b)\n}\n";
        let scan = scan_file("crates/core/src/math.rs", positive);
        assert_eq!(
            triples(&scan.findings),
            vec![
                ("unordered-float-reduce", 1),
                ("unordered-float-reduce", 4),
                ("unordered-float-reduce", 5)
            ]
        );
        // Negative: collect() is order-preserving, and sequential sum
        // is fine.
        let negative = "fn f(xs: &[f64]) -> Vec<f64> { xs.par_iter().map(|x| x * 2.0).collect() }\n\
                        fn g(xs: &[f64]) -> f64 { xs.iter().sum() }\n\
                        fn h(xs: &[f64]) -> f64 { f(xs, xs.par_iter().count(), ys.iter().sum()) }\n";
        assert!(scan_file("crates/core/src/math.rs", negative)
            .findings
            .is_empty());
    }

    #[test]
    fn untyped_unit_fn_fixture() {
        let src = "pub fn start(bytes: f64, weight: f64) {}\n\
                   pub fn good(bytes: ByteSize, weight: f64) {}\n\
                   fn private(bytes: f64) {}\n\
                   pub(crate) fn scoped(bytes: f64) {}\n";
        let scan = scan_file("crates/xfer/src/link.rs", src);
        assert_eq!(triples(&scan.findings), vec![("untyped-unit-fn", 1)]);
        // Non-unit crates and the conversion layer are out of scope.
        assert!(scan_file("crates/workload/src/gen.rs", src)
            .findings
            .is_empty());
        assert!(scan_file("crates/simcore/src/units.rs", src)
            .findings
            .is_empty());
    }

    // -- waiver plumbing --------------------------------------------------

    #[test]
    fn waivers_suppress_and_unused_waivers_fail() {
        let src = "// lint: allow(wall-clock-in-sim): run metadata is wall-clock\n\
                   use std::time::Instant;\n";
        let scan = scan_file("crates/core/src/engine.rs", src);
        let mut report = LintReport::default();
        let mut active = BTreeMap::new();
        apply_waivers("crates/core/src/engine.rs", scan, &mut report, &mut active);
        assert!(report.errors.is_empty());
        assert_eq!(report.waived.len(), 1);
        assert!(active.is_empty());

        let unused = "// lint: allow(no-panic): nothing here panics\nfn f() {}\n";
        let scan = scan_file("crates/core/src/engine.rs", unused);
        let mut report = LintReport::default();
        let mut active = BTreeMap::new();
        apply_waivers("crates/core/src/engine.rs", scan, &mut report, &mut active);
        assert_eq!(report.errors.len(), 1);
        assert!(report.errors[0].contains("unused waiver"));
    }

    #[test]
    fn waiver_covers_only_its_rule() {
        let src = "// lint: allow(no-panic): registry invariant\n\
                   let t = Instant::now().elapsed().as_secs_f64();\n";
        let scan = scan_file("crates/core/src/engine.rs", src);
        let mut report = LintReport::default();
        let mut active = BTreeMap::new();
        apply_waivers("crates/core/src/engine.rs", scan, &mut report, &mut active);
        // The wall-clock finding is NOT suppressed by a no-panic
        // waiver, and the waiver itself is unused.
        assert_eq!(active.len(), 1);
        assert!(report.errors.iter().any(|e| e.contains("unused waiver")));
    }

    // -- allowlist ratchet ------------------------------------------------

    #[test]
    fn ratchet_flags_over_and_under_budget() {
        let dir = std::env::temp_dir().join("helmsim-xtask-lint-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("allow.txt");
        std::fs::write(&path, "no-panic crates/x/src/lib.rs 2  # legacy\n").expect("write");
        let allow = Allowlist::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        // Over budget.
        let mut active = BTreeMap::new();
        active.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![1, 2, 3],
        );
        let mut report = LintReport::default();
        apply_allowlist(&allow, &active, &mut report);
        assert!(report.errors.iter().any(|e| e.contains("budget is 2")));

        // Under budget (ratchet).
        active.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![1],
        );
        let mut report = LintReport::default();
        apply_allowlist(&allow, &active, &mut report);
        assert!(report.errors.iter().any(|e| e.contains("ratchet")));

        // Stale entry.
        let mut report = LintReport::default();
        apply_allowlist(&allow, &BTreeMap::new(), &mut report);
        assert!(report.errors.iter().any(|e| e.contains("stale")));

        // Exactly on budget.
        active.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![1, 2],
        );
        let mut report = LintReport::default();
        apply_allowlist(&allow, &active, &mut report);
        assert!(report.errors.is_empty());
        assert_eq!(report.budgeted, 2);
    }

    // -- legacy/new agreement self-check ----------------------------------

    /// The three seed rules, re-implemented on tokens, must agree
    /// with the original substring scanner on every file in this
    /// workspace — a divergence means one of the two mis-lexes real
    /// code.
    #[test]
    fn token_pass_agrees_with_legacy_scanner_on_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        assert!(
            !workspace_sources(root).expect("sources").is_empty(),
            "workspace scan found no files"
        );
        let divergences = self_check(root).expect("self-check runs");
        assert_eq!(divergences, Vec::<String>::new());
    }
}
