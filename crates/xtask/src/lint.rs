//! The lint rules and the scan driver.
//!
//! Three rules, all applied to non-test library code in
//! `crates/*/src` (vendor stubs and the `tests/` package are out of
//! scope; `#[cfg(test)]` items are exempt):
//!
//! * `raw-unit-arith` — bare decimal/binary unit factors (`1e3`,
//!   `1e6`, `1e9`, `1e12`, `1024.0`, `<< 20`, `<< 30`) outside
//!   `simcore`'s `units.rs`/`time.rs`, where conversions are supposed
//!   to live. Use `ByteSize`/`Bandwidth`/`SimDuration` constructors
//!   and accessors instead.
//! * `no-panic` — `.unwrap()`, `.expect(...)`, `panic!`, `todo!`,
//!   `unimplemented!` in library code. Return a typed error instead.
//! * `untyped-unit-const` — `const` items whose name carries a unit
//!   suffix (`_MS`, `_BYTES`, `_GB`, ...) but whose type is a bare
//!   numeric. Give them a `SimDuration`/`ByteSize`/`Bandwidth` type.
//!
//! Known violations are budgeted in `lint-allowlist.txt` at the repo
//! root. The budget ratchets: a file exceeding its budget fails the
//! build, and so does a file that *improved* without its budget being
//! lowered, so the allowlist can only shrink.

use crate::allowlist::{self, Allowlist};
use crate::lexer;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
}

const UNIT_FACTORS: &[&str] = &["1e3", "1e6", "1e9", "1e12", "1024.0"];
const UNIT_SHIFTS: &[&str] = &["<< 20", "<< 30"];
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "todo!(",
    "unimplemented!(",
];
const UNIT_SUFFIXES: &[&str] = &[
    "_MS", "_SECS", "_US", "_NS", "_BYTES", "_KB", "_MB", "_GB", "_KIB", "_MIB", "_GIB", "_GBPS",
    "_BPS",
];
const BARE_NUMERIC_TYPES: &[&str] = &["f64", "f32", "u64", "u32", "u128", "usize", "i64", "i32"];

/// Files where raw unit factors are the point: the conversion layer.
const UNIT_HOME_FILES: &[&str] = &["units.rs", "time.rs"];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All start offsets of `pat` in `chars`.
fn find_all(chars: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    if p.is_empty() || p.len() > chars.len() {
        return Vec::new();
    }
    (0..=chars.len() - p.len())
        .filter(|&i| chars[i..i + p.len()] == p[..])
        .collect()
}

/// Scans one file's source, returning every rule hit.
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let blanked = lexer::blank_noncode(source);
    let chars: Vec<char> = blanked.chars().collect();
    let test_spans = lexer::cfg_test_spans(&blanked);
    let in_test = |idx: usize| test_spans.iter().any(|&(s, e)| (s..=e).contains(&idx));
    let line_of = |idx: usize| 1 + chars[..idx].iter().filter(|&&c| c == '\n').count();
    let basename = rel_path.rsplit('/').next().unwrap_or(rel_path);

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, idx: usize| {
        findings.push(Finding {
            rule,
            file: rel_path.to_owned(),
            line: line_of(idx),
        });
    };

    // raw-unit-arith: unit factors with identifier boundaries on both
    // sides (so `21e3`, `1e30`, `0.1e3` never match).
    if !UNIT_HOME_FILES.contains(&basename) {
        for pat in UNIT_FACTORS {
            let plen = pat.chars().count();
            for idx in find_all(&chars, pat) {
                let prev_ok = idx == 0 || (!is_ident_char(chars[idx - 1]) && chars[idx - 1] != '.');
                let next_ok =
                    !matches!(chars.get(idx + plen), Some(&c) if is_ident_char(c) || c == '.');
                if prev_ok && next_ok && !in_test(idx) {
                    push("raw-unit-arith", idx);
                }
            }
        }
        for pat in UNIT_SHIFTS {
            for idx in find_all(&chars, pat) {
                let after = chars.get(idx + pat.chars().count());
                if !matches!(after, Some(&c) if c.is_ascii_digit()) && !in_test(idx) {
                    push("raw-unit-arith", idx);
                }
            }
        }
    }

    // no-panic: explicit aborts in library code.
    for pat in PANIC_TOKENS {
        for idx in find_all(&chars, pat) {
            let macro_like = !pat.starts_with('.');
            if macro_like && idx > 0 && is_ident_char(chars[idx - 1]) {
                continue;
            }
            if !in_test(idx) {
                push("no-panic", idx);
            }
        }
    }

    // untyped-unit-const: `const NAME_<UNIT>: <bare numeric>`.
    for idx in find_all(&chars, "const ") {
        if idx > 0 && is_ident_char(chars[idx - 1]) {
            continue;
        }
        if in_test(idx) {
            continue;
        }
        let mut j = idx + "const ".chars().count();
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        let name_start = j;
        while matches!(chars.get(j), Some(&c) if is_ident_char(c)) {
            j += 1;
        }
        let name: String = chars[name_start..j].iter().collect();
        if !UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        if chars.get(j) != Some(&':') {
            continue;
        }
        j += 1;
        while matches!(chars.get(j), Some(&c) if c.is_whitespace()) {
            j += 1;
        }
        let ty_start = j;
        while matches!(chars.get(j), Some(&c) if is_ident_char(c)) {
            j += 1;
        }
        let ty: String = chars[ty_start..j].iter().collect();
        if BARE_NUMERIC_TYPES.contains(&ty.as_str()) {
            push("untyped-unit-const", idx);
        }
    }

    findings.sort_by_key(|f| (f.rule, f.line));
    findings
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Scans every workspace crate's `src/`, returning findings keyed by
/// `(rule, file)` with the hit lines.
pub fn scan_workspace(root: &Path) -> Result<BTreeMap<(String, String), Vec<usize>>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut by_key: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        for f in scan_file(&rel, &source) {
            by_key
                .entry((f.rule.to_owned(), f.file.clone()))
                .or_default()
                .push(f.line);
        }
    }
    Ok(by_key)
}

/// Runs the lint: scan, compare against the allowlist (or rewrite it
/// with `update`), and return a process exit code.
pub fn run(root: &Path, update: bool) -> Result<i32, String> {
    let found = scan_workspace(root)?;
    let allow_path = root.join(allowlist::FILE_NAME);

    if update {
        let previous = Allowlist::load(&allow_path)?;
        let updated = previous.rebudget(&found);
        updated.save(&allow_path)?;
        println!(
            "wrote {} with {} entr{}",
            allowlist::FILE_NAME,
            updated.len(),
            if updated.len() == 1 { "y" } else { "ies" }
        );
        return Ok(0);
    }

    let allow = Allowlist::load(&allow_path)?;
    let mut errors = String::new();
    let mut allowed_total = 0usize;

    for ((rule, file), lines) in &found {
        let budget = allow.budget(rule, file);
        let actual = lines.len();
        if actual > budget {
            let shown: Vec<String> = lines.iter().map(|l| format!("{file}:{l}")).collect();
            let _ = writeln!(
                errors,
                "{rule}: {file} has {actual} violation(s), allowlist budget is {budget}:\n    {}",
                shown.join("\n    ")
            );
        } else if actual < budget {
            let _ = writeln!(
                errors,
                "{rule}: {file} improved to {actual} violation(s) but the allowlist still \
                 budgets {budget} — lower the budget in {} (ratchet)",
                allowlist::FILE_NAME
            );
        } else {
            allowed_total += actual;
        }
    }
    for entry in allow.entries() {
        if !found.contains_key(&(entry.rule.clone(), entry.file.clone())) {
            let _ = writeln!(
                errors,
                "{}: stale allowlist entry for {} — the file is clean (or gone); remove the entry",
                entry.rule, entry.file
            );
        }
    }

    if errors.is_empty() {
        if allow.is_empty() {
            println!("lint clean: no violations, empty allowlist");
        } else {
            println!(
                "lint clean: {} budgeted finding(s) across {} allowlist entr{}",
                allowed_total,
                allow.len(),
                if allow.len() == 1 { "y" } else { "ies" }
            );
        }
        Ok(0)
    } else {
        eprint!("{errors}");
        eprintln!(
            "\nlint failed. Fix the violations (preferred), or update budgets in {} \
             with a justification comment per entry.",
            allowlist::FILE_NAME
        );
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_panics() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\") }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(rules_of(&found), vec!["no-panic", "no-panic"]);
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_are_exempt() {
        let src = "// calls .unwrap() and panic!()\nfn f() -> &'static str { \"1e9 .unwrap()\" }\n";
        assert!(scan_file("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_raw_unit_factors_with_boundaries() {
        let src = "fn f(gb: f64) -> f64 { gb * 1e9 }\nfn g() -> f64 { 21e3 + 1e30 + 0.1e3 }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "raw-unit-arith");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unit_home_files_may_convert() {
        let src = "pub fn from_gb(gb: f64) -> u64 { (gb * 1e9) as u64 }\n";
        assert!(scan_file("crates/simcore/src/units.rs", src).is_empty());
        assert_eq!(scan_file("crates/other/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn flags_binary_shifts_but_not_other_shifts() {
        let src = "fn f(x: u64) -> u64 { (1u64 << 20) + (x << 7) + (x << 203) }\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn flags_untyped_unit_consts_only() {
        let src = "pub const SYNC_MS: f64 = 0.25;\npub const GOOD_MS: SimDuration = SimDuration::ZERO;\npub const COUNT: u64 = 3;\n";
        let found = scan_file("crates/demo/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "untyped-unit-const");
        assert_eq!(found[0].line, 1);
    }
}
