//! Lexing for the lint pass: a token stream plus the legacy blanker.
//!
//! Two layers share the low-level literal/comment handling:
//!
//! * [`tokenize`] — the real lexer. Produces a [`Token`] stream
//!   (identifiers, numbers, punctuation, string/char literals,
//!   lifetimes) with line/offset information, plus the comment list
//!   (waiver comments live there). The parser ([`crate::parse`]) and
//!   every rule in [`crate::rules`] run on this stream.
//! * [`blank_noncode`] / [`cfg_test_spans`] — the original seed
//!   scanner's view: source with comment and literal *contents*
//!   replaced by spaces, 1:1. Kept verbatim so the legacy scanner
//!   ([`crate::legacy`]) still runs; the workspace self-check asserts
//!   the token-based pass and the legacy pass agree on every finding
//!   of the three original rules.

/// Token classes the lexer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including exponent and type suffix).
    Number,
    /// String literal (plain, raw, byte, byte-raw). Contents dropped.
    Str,
    /// Char or byte-char literal. Contents dropped.
    Char,
    /// Lifetime (or loop label), without the leading quote.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text. Empty for [`TokKind::Str`] and [`TokKind::Char`]
    /// (literal contents never reach the rules).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// Char offset of the token's first character.
    pub off: usize,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// One comment (line or block), with its inner text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Char offset of the comment's first character.
    pub off: usize,
}

/// A tokenized source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is resilient rather than validating: malformed input
/// (unterminated literals, stray punctuation) never fails, it just
/// produces best-effort tokens — the lint must not crash on the code
/// it is criticizing.
pub fn tokenize(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if matches!(b.get(i + 1), Some('/')) => {
                let start = i;
                let start_line = line;
                i += 2;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: b[start + 2..i].iter().collect(),
                    line: start_line,
                    off: start,
                });
            }
            '/' if matches!(b.get(i + 1), Some('*')) => {
                let start = i;
                let start_line = line;
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && matches!(b.get(i + 1), Some('*')) {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && matches!(b.get(i + 1), Some('/')) {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start + 2);
                out.comments.push(Comment {
                    text: b[start + 2..end.min(b.len())].iter().collect(),
                    line: start_line,
                    off: start,
                });
            }
            '"' => {
                let start = i;
                let start_line = line;
                i = skip_string(&b, i, &mut line);
                push(&mut out, TokKind::Str, String::new(), start_line, start);
                let _ = i;
            }
            '\'' => {
                let start = i;
                let start_line = line;
                // Escape form is always a char literal; the 'x' form
                // is a char literal iff a quote closes it one char
                // later; everything else is a lifetime or loop label.
                if matches!(b.get(i + 1), Some('\\')) {
                    i = skip_char_literal(&b, i, &mut line);
                    push(&mut out, TokKind::Char, String::new(), start_line, start);
                } else if matches!(b.get(i + 2), Some('\'')) {
                    if b.get(i + 1) == Some(&'\n') {
                        line += 1;
                    }
                    i += 3;
                    push(&mut out, TokKind::Char, String::new(), start_line, start);
                } else {
                    i += 1;
                    let name_start = i;
                    while matches!(b.get(i), Some(&c) if is_ident_char(c)) {
                        i += 1;
                    }
                    let text: String = b[name_start..i].iter().collect();
                    push(&mut out, TokKind::Lifetime, text, start_line, start);
                }
            }
            'r' if raw_string_at(&b, i) => {
                let start = i;
                let start_line = line;
                i = skip_raw_string(&b, i, &mut line);
                push(&mut out, TokKind::Str, String::new(), start_line, start);
            }
            'b' if matches!(b.get(i + 1), Some('"')) => {
                let start = i;
                let start_line = line;
                i = skip_string(&b, i + 1, &mut line);
                push(&mut out, TokKind::Str, String::new(), start_line, start);
            }
            'b' if matches!(b.get(i + 1), Some('r')) && raw_string_at(&b, i + 1) => {
                let start = i;
                let start_line = line;
                i = skip_raw_string(&b, i + 1, &mut line);
                push(&mut out, TokKind::Str, String::new(), start_line, start);
            }
            'b' if matches!(b.get(i + 1), Some('\'')) => {
                let start = i;
                let start_line = line;
                let after = i + 1;
                if matches!(b.get(after + 1), Some('\\')) {
                    i = skip_char_literal(&b, after, &mut line);
                } else if matches!(b.get(after + 2), Some('\'')) {
                    i = after + 3;
                } else {
                    i = after + 1;
                }
                push(&mut out, TokKind::Char, String::new(), start_line, start);
            }
            _ if is_ident_start(c) => {
                let start = i;
                while matches!(b.get(i), Some(&c) if is_ident_char(c)) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                push(&mut out, TokKind::Ident, text, line, start);
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(&b, i);
                let text: String = b[start..i].iter().collect();
                push(&mut out, TokKind::Number, text, line, start);
            }
            _ => {
                push(&mut out, TokKind::Punct, c.to_string(), line, i);
                i += 1;
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, text: String, line: usize, off: usize) {
    out.tokens.push(Token {
        kind,
        text,
        line,
        off,
    });
}

/// Skips a `"..."` literal starting at `b[i] == '"'`; returns the
/// index past the closing quote, counting newlines into `line`.
fn skip_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' if i + 1 < b.len() => {
                if b[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Whether `b[i..]` starts a raw string: `r`, zero or more `#`, `"`.
fn raw_string_at(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while matches!(b.get(j), Some('#')) {
        j += 1;
    }
    matches!(b.get(j), Some('"'))
}

/// Skips a raw string starting at `b[i] == 'r'`; returns the index
/// past the closing delimiter.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    let mut hashes = 0usize;
    while matches!(b.get(i), Some('#')) {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        if b[i] == '\n' {
            *line += 1;
        }
        i += 1;
    }
    i
}

/// Skips an escape-form char literal starting at `b[i] == '\''`;
/// returns the index past the closing quote.
fn skip_char_literal(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < b.len() && b[j] != '\'' {
        if b[j] == '\\' && j + 1 < b.len() {
            j += 2;
        } else {
            if b[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
    }
    if j < b.len() {
        j + 1
    } else {
        j
    }
}

/// Skips a numeric literal starting at an ASCII digit: integer or
/// float body (decimal point only when followed by a digit, exponent
/// only when well-formed), then any alphanumeric type suffix — so
/// `1e9`, `1024.0`, `21e3`, `1u64`, and `0x1F` each lex as one token
/// whose exact text the rules can compare against.
fn skip_number(b: &[char], mut i: usize) -> usize {
    if b[i] == '0' && matches!(b.get(i + 1), Some('x' | 'X' | 'o' | 'b')) {
        i += 2;
    } else {
        while matches!(b.get(i), Some(&c) if c.is_ascii_digit() || c == '_') {
            i += 1;
        }
        if matches!(b.get(i), Some('.')) && matches!(b.get(i + 1), Some(&c) if c.is_ascii_digit()) {
            i += 1;
            while matches!(b.get(i), Some(&c) if c.is_ascii_digit() || c == '_') {
                i += 1;
            }
        }
        if matches!(b.get(i), Some('e' | 'E')) {
            let sign = usize::from(matches!(b.get(i + 1), Some('+' | '-')));
            if matches!(b.get(i + 1 + sign), Some(&c) if c.is_ascii_digit()) {
                i += 1 + sign;
            }
        }
    }
    while matches!(b.get(i), Some(&c) if is_ident_char(c)) {
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Legacy blanking view (seed scanner support)
// ---------------------------------------------------------------------------

/// Returns `src` with comment and literal contents replaced by
/// spaces. Output has the same character count and the same newline
/// positions as the input, so char offsets and line numbers carry
/// over directly.
pub fn blank_noncode(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if matches!(b.get(i + 1), Some('/')) => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if matches!(b.get(i + 1), Some('*')) => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && matches!(b.get(i + 1), Some('*')) {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && matches!(b.get(i + 1), Some('/')) {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => i = blank_string(&b, i, &mut out),
            'r' if raw_string_at(&b, i) && !ident_before(&b, i) => {
                i = blank_raw_string(&b, i, &mut out);
            }
            'b' if matches!(b.get(i + 1), Some('"')) && !ident_before(&b, i) => {
                out.push('b');
                i = blank_string(&b, i + 1, &mut out);
            }
            'b' if matches!(b.get(i + 1), Some('r'))
                && raw_string_at(&b, i + 1)
                && !ident_before(&b, i) =>
            {
                out.push('b');
                i = blank_raw_string(&b, i + 1, &mut out);
            }
            '\'' => i = blank_char_or_lifetime(&b, i, &mut out),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Blanks a `"..."` literal starting at `b[i] == '"'`; returns the
/// index past the closing quote.
fn blank_string(b: &[char], mut i: usize, out: &mut String) -> usize {
    out.push('"');
    i += 1;
    while i < b.len() {
        if b[i] == '\\' && i + 1 < b.len() {
            // An escaped newline (string line-continuation) must stay
            // a newline in the blanked text, or every line number
            // after it shifts by one.
            out.push(' ');
            out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
            i += 2;
        } else if b[i] == '"' {
            out.push('"');
            return i + 1;
        } else {
            out.push(if b[i] == '\n' { '\n' } else { ' ' });
            i += 1;
        }
    }
    i
}

/// Whether the char before `b[i]` continues an identifier (so this
/// `r`/`b` is part of a name, not a literal prefix).
fn ident_before(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Blanks a raw string starting at `b[i] == 'r'`; returns the index
/// past the closing delimiter.
fn blank_raw_string(b: &[char], mut i: usize, out: &mut String) -> usize {
    out.push('r');
    i += 1;
    let mut hashes = 0usize;
    while matches!(b.get(i), Some('#')) {
        out.push('#');
        hashes += 1;
        i += 1;
    }
    out.push('"');
    i += 1;
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            out.push('"');
            i += 1;
            for _ in 0..hashes {
                out.push('#');
                i += 1;
            }
            return i;
        }
        out.push(if b[i] == '\n' { '\n' } else { ' ' });
        i += 1;
    }
    i
}

/// Blanks a char literal, or passes a lifetime through unchanged;
/// returns the index past what was consumed.
fn blank_char_or_lifetime(b: &[char], i: usize, out: &mut String) -> usize {
    // '\x' escape form: always a char literal.
    if matches!(b.get(i + 1), Some('\\')) {
        out.push('\'');
        let mut j = i + 1;
        while j < b.len() && b[j] != '\'' {
            if b[j] == '\\' && j + 1 < b.len() {
                out.push_str("  ");
                j += 2;
            } else {
                out.push(' ');
                j += 1;
            }
        }
        if j < b.len() {
            out.push('\'');
            j += 1;
        }
        return j;
    }
    // 'x' form: char literal iff a closing quote follows one char.
    if matches!(b.get(i + 2), Some('\'')) {
        out.push('\'');
        out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
        out.push('\'');
        return i + 3;
    }
    // Otherwise a lifetime: pass through.
    out.push('\'');
    i + 1
}

/// Char-index spans of `#[cfg(test)]`-gated items in blanked source
/// (the attribute through the matching close brace of the item body).
pub fn cfg_test_spans(blanked: &str) -> Vec<(usize, usize)> {
    let b: Vec<char> = blanked.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if b[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Find the gated item's opening brace (or bail at a `;` —
        // e.g. `#[cfg(test)] mod external;`).
        while j < b.len() && b[j] != '{' && b[j] != ';' {
            j += 1;
        }
        if j >= b.len() || b[j] == ';' {
            spans.push((start, j.min(b.len())));
            i = j;
            continue;
        }
        let mut depth = 0usize;
        while j < b.len() {
            match b[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start, j.min(b.len())));
        i = j + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let out = blank_noncode("let x = 1; // unwrap() here\n/* panic!( */ let y = 2;");
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let out = blank_noncode("a /* outer /* inner */ still */ b");
        assert!(out.starts_with('a'));
        assert!(out.ends_with('b'));
        assert!(!out.contains("inner"));
        assert!(!out.contains("still"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let out = blank_noncode(r#"let s = "call .unwrap() now"; s.len()"#);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("s.len()"));
        assert_eq!(out.matches('"').count(), 2);
    }

    #[test]
    fn handles_escapes_and_raw_strings() {
        let out = blank_noncode(r##"let a = "q\"panic!(\""; let b = r#"1e9 "inner" 1e9"#;"##);
        assert!(!out.contains("panic"));
        assert!(!out.contains("1e9"));
        assert!(out.contains("let b = r#\""));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let out = blank_noncode("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }");
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains('x') || !out.contains("'x'"));
    }

    #[test]
    fn preserves_length_and_newlines() {
        let src = "let a = \"two\nlines\"; // c\nlet b = 1;";
        let out = blank_noncode(src);
        assert_eq!(src.chars().count(), out.chars().count());
        assert_eq!(
            src.chars().filter(|&c| c == '\n').count(),
            out.chars().filter(|&c| c == '\n').count()
        );
    }

    #[test]
    fn finds_cfg_test_mod_spans() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap() }\n}\nfn after() {}";
        let blanked = blank_noncode(src);
        let spans = cfg_test_spans(&blanked);
        assert_eq!(spans.len(), 1);
        let chars: Vec<char> = blanked.chars().collect();
        let inside: String = chars[spans[0].0..spans[0].1].iter().collect();
        assert!(inside.contains("unwrap"));
        let lib_pos = blanked.find("fn lib").unwrap();
        let after_pos = blanked.find("fn after").unwrap();
        assert!(lib_pos < spans[0].0);
        assert!(after_pos > spans[0].1);
    }

    // -- token lexer ------------------------------------------------------

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn tokenizes_idents_numbers_and_puncts() {
        let toks = kinds("let x = 1e9 + 1024.0;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "1e9".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Number, "1024.0".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn numbers_lex_as_single_tokens() {
        // The unit-factor rule compares exact token text: neighbors
        // of the banned factors must not split into a banned token.
        for (src, expect) in [
            ("21e3", "21e3"),
            ("1e30", "1e30"),
            ("0.1e3", "0.1e3"),
            ("1.0e9", "1.0e9"),
            ("1e9f64", "1e9f64"),
            ("1u64", "1u64"),
            ("0x1e3", "0x1e3"),
            ("1_000", "1_000"),
        ] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src}: {toks:?}");
            assert_eq!(toks[0], (TokKind::Number, expect.into()), "{src}");
        }
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = tokenize("a // trailing note\n/* block\ncomment */ b");
        let idents: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text.trim(), "trailing note");
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].text.contains("comment"));
        assert_eq!(lexed.tokens[1].line, 3);
    }

    #[test]
    fn string_contents_never_become_tokens() {
        let lexed = tokenize(r##"f("has .unwrap() and 1e9", r#"raw "inner" 1e9"#, b"bytes")"##);
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.text != "unwrap" && t.text != "1e9" && t.text != "inner"));
        let strs = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn raw_string_hash_variants_terminate_correctly() {
        // `r#"…"#` may contain bare quotes; the delimiter needs the
        // matching hash count. Code after must still tokenize.
        let lexed = tokenize(r###"let x = r##"a "# quote"## ; trailing"###);
        let idents: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(idents, vec!["let", "x", "=", "", ";", "trailing"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lexed = tokenize("fn f<'a>(x: &'a str) { ('x', '\\n', b'y', 'outer: loop {}) }");
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer"]);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn quote_char_literal_does_not_open_a_string() {
        // '"' must lex as a char, or everything after would be
        // swallowed as string contents.
        let lexed = tokenize("let q = '\"'; x.unwrap()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"unwrap"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lexed = tokenize("let r = 1; r#match");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("r")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn lines_track_through_multiline_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = tokenize(src);
        let b_tok = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
