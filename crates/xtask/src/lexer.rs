//! A minimal Rust source scanner for the lint pass.
//!
//! Not a real lexer: it blanks out the *contents* of comments and
//! string/char literals (1:1, preserving newlines and character
//! offsets) so the rule matchers never fire inside text, and it
//! locates `#[cfg(test)]` item spans so test-only code is exempt from
//! the library-code rules. The `syn`-style AST pass the design calls
//! for is not available offline, so this is deliberately conservative:
//! it prefers the occasional allowlisted false positive over silently
//! missing real violations.

/// Returns `src` with comment and literal contents replaced by
/// spaces. Output has the same character count and the same newline
/// positions as the input, so char offsets and line numbers carry
/// over directly.
pub fn blank_noncode(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '/' if matches!(b.get(i + 1), Some('/')) => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if matches!(b.get(i + 1), Some('*')) => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && matches!(b.get(i + 1), Some('*')) {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && matches!(b.get(i + 1), Some('/')) {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => i = blank_string(&b, i, &mut out),
            'r' if raw_string_at(&b, i) && !ident_before(&b, i) => {
                i = blank_raw_string(&b, i, &mut out);
            }
            'b' if matches!(b.get(i + 1), Some('"')) && !ident_before(&b, i) => {
                out.push('b');
                i = blank_string(&b, i + 1, &mut out);
            }
            'b' if matches!(b.get(i + 1), Some('r'))
                && raw_string_at(&b, i + 1)
                && !ident_before(&b, i) =>
            {
                out.push('b');
                i = blank_raw_string(&b, i + 1, &mut out);
            }
            '\'' => i = blank_char_or_lifetime(&b, i, &mut out),
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Blanks a `"..."` literal starting at `b[i] == '"'`; returns the
/// index past the closing quote.
fn blank_string(b: &[char], mut i: usize, out: &mut String) -> usize {
    out.push('"');
    i += 1;
    while i < b.len() {
        if b[i] == '\\' && i + 1 < b.len() {
            out.push_str("  ");
            i += 2;
        } else if b[i] == '"' {
            out.push('"');
            return i + 1;
        } else {
            out.push(if b[i] == '\n' { '\n' } else { ' ' });
            i += 1;
        }
    }
    i
}

/// Whether `b[i..]` starts a raw string: `r`, zero or more `#`, `"`.
fn raw_string_at(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while matches!(b.get(j), Some('#')) {
        j += 1;
    }
    matches!(b.get(j), Some('"'))
}

/// Whether the char before `b[i]` continues an identifier (so this
/// `r`/`b` is part of a name, not a literal prefix).
fn ident_before(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Blanks a raw string starting at `b[i] == 'r'`; returns the index
/// past the closing delimiter.
fn blank_raw_string(b: &[char], mut i: usize, out: &mut String) -> usize {
    out.push('r');
    i += 1;
    let mut hashes = 0usize;
    while matches!(b.get(i), Some('#')) {
        out.push('#');
        hashes += 1;
        i += 1;
    }
    out.push('"');
    i += 1;
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            out.push('"');
            i += 1;
            for _ in 0..hashes {
                out.push('#');
                i += 1;
            }
            return i;
        }
        out.push(if b[i] == '\n' { '\n' } else { ' ' });
        i += 1;
    }
    i
}

/// Blanks a char literal, or passes a lifetime through unchanged;
/// returns the index past what was consumed.
fn blank_char_or_lifetime(b: &[char], i: usize, out: &mut String) -> usize {
    // '\x' escape form: always a char literal.
    if matches!(b.get(i + 1), Some('\\')) {
        out.push('\'');
        let mut j = i + 1;
        while j < b.len() && b[j] != '\'' {
            if b[j] == '\\' && j + 1 < b.len() {
                out.push_str("  ");
                j += 2;
            } else {
                out.push(' ');
                j += 1;
            }
        }
        if j < b.len() {
            out.push('\'');
            j += 1;
        }
        return j;
    }
    // 'x' form: char literal iff a closing quote follows one char.
    if matches!(b.get(i + 2), Some('\'')) {
        out.push('\'');
        out.push(' ');
        out.push('\'');
        return i + 3;
    }
    // Otherwise a lifetime: pass through.
    out.push('\'');
    i + 1
}

/// Char-index spans of `#[cfg(test)]`-gated items in blanked source
/// (the attribute through the matching close brace of the item body).
pub fn cfg_test_spans(blanked: &str) -> Vec<(usize, usize)> {
    let b: Vec<char> = blanked.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if b[i..i + needle.len()] != needle[..] {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + needle.len();
        // Find the gated item's opening brace (or bail at a `;` —
        // e.g. `#[cfg(test)] mod external;`).
        while j < b.len() && b[j] != '{' && b[j] != ';' {
            j += 1;
        }
        if j >= b.len() || b[j] == ';' {
            spans.push((start, j.min(b.len())));
            i = j;
            continue;
        }
        let mut depth = 0usize;
        while j < b.len() {
            match b[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start, j.min(b.len())));
        i = j + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let out = blank_noncode("let x = 1; // unwrap() here\n/* panic!( */ let y = 2;");
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let out = blank_noncode("a /* outer /* inner */ still */ b");
        assert!(out.starts_with('a'));
        assert!(out.ends_with('b'));
        assert!(!out.contains("inner"));
        assert!(!out.contains("still"));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let out = blank_noncode(r#"let s = "call .unwrap() now"; s.len()"#);
        assert!(!out.contains("unwrap"));
        assert!(out.contains("s.len()"));
        assert_eq!(out.matches('"').count(), 2);
    }

    #[test]
    fn handles_escapes_and_raw_strings() {
        let out = blank_noncode(r##"let a = "q\"panic!(\""; let b = r#"1e9 "inner" 1e9"#;"##);
        assert!(!out.contains("panic"));
        assert!(!out.contains("1e9"));
        assert!(out.contains("let b = r#\""));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let out = blank_noncode("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\n'; }");
        assert!(out.contains("<'a>"));
        assert!(out.contains("&'a str"));
        assert!(!out.contains('x') || !out.contains("'x'"));
    }

    #[test]
    fn preserves_length_and_newlines() {
        let src = "let a = \"two\nlines\"; // c\nlet b = 1;";
        let out = blank_noncode(src);
        assert_eq!(src.chars().count(), out.chars().count());
        assert_eq!(
            src.chars().filter(|&c| c == '\n').count(),
            out.chars().filter(|&c| c == '\n').count()
        );
    }

    #[test]
    fn finds_cfg_test_mod_spans() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap() }\n}\nfn after() {}";
        let blanked = blank_noncode(src);
        let spans = cfg_test_spans(&blanked);
        assert_eq!(spans.len(), 1);
        let chars: Vec<char> = blanked.chars().collect();
        let inside: String = chars[spans[0].0..spans[0].1].iter().collect();
        assert!(inside.contains("unwrap"));
        let lib_pos = blanked.find("fn lib").unwrap();
        let after_pos = blanked.find("fn after").unwrap();
        assert!(lib_pos < spans[0].0);
        assert!(after_pos > spans[0].1);
    }
}
