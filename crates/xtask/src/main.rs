//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `lint` — run the seven determinism / unit-soundness rules over
//!   every workspace crate's `src/`, checked against in-source
//!   waivers and `lint-allowlist.txt`.
//! * `lint --format json` — same, with a versioned machine-readable
//!   report on stdout (archived by CI).
//! * `lint --update-allowlist` — refresh counts for existing
//!   allowlist entries and drop stale ones. Refuses to add entries
//!   for new `(rule, file)` pairs: those must be written by hand
//!   with a justification, or waived in source.
//! * `lint --self-check` — run the retired seed scanner next to the
//!   token pass and fail on any divergence over the three original
//!   rules (the engine's own regression gate).

mod allowlist;
mod legacy;
mod lexer;
mod lint;
mod parse;
mod report;
mod rules;

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cargo xtask lint [--update-allowlist] [--self-check] [--format text|json]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();

    // xtask lives at <root>/crates/xtask, so the workspace root is
    // two levels up from the manifest dir.
    let Some(root) = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::from(2);
    };

    let Some((&"lint", flags)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut update = false;
    let mut self_check = false;
    let mut format = lint::Format::Text;
    let mut rest = flags;
    while let Some((&flag, tail)) = rest.split_first() {
        match flag {
            "--update-allowlist" => {
                update = true;
                rest = tail;
            }
            "--self-check" => {
                self_check = true;
                rest = tail;
            }
            "--format" => match tail.split_first() {
                Some((&"text", tail2)) => {
                    format = lint::Format::Text;
                    rest = tail2;
                }
                Some((&"json", tail2)) => {
                    format = lint::Format::Json;
                    rest = tail2;
                }
                _ => {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if self_check {
        return match lint::self_check(root) {
            Ok(divergences) if divergences.is_empty() => {
                println!("self-check clean: legacy scanner and token pass agree");
                ExitCode::SUCCESS
            }
            Ok(divergences) => {
                for d in &divergences {
                    eprintln!("{d}");
                }
                eprintln!(
                    "self-check failed: {} file(s) diverge between the legacy scanner \
                     and the token pass",
                    divergences.len()
                );
                ExitCode::FAILURE
            }
            Err(msg) => {
                eprintln!("xtask: {msg}");
                ExitCode::from(2)
            }
        };
    }

    match lint::run(root, update, format) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => ExitCode::from(n.clamp(0, i32::from(u8::MAX)) as u8),
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::from(2)
        }
    }
}
