//! Workspace automation, invoked as `cargo xtask <command>`.
//!
//! Commands:
//!
//! * `lint` — run the unit-safety / panic-hygiene lint over every
//!   workspace crate's `src/`, checked against `lint-allowlist.txt`.
//! * `lint --update-allowlist` — rewrite the allowlist to match the
//!   current findings (existing justifications are preserved; new
//!   entries get a TODO placeholder that must be filled in).

mod allowlist;
mod lexer;
mod lint;

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask lint [--update-allowlist]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();

    // xtask lives at <root>/crates/xtask, so the workspace root is
    // two levels up from the manifest dir.
    let Some(root) = Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::from(2);
    };

    let code = match args[..] {
        ["lint"] => lint::run(root, false),
        ["lint", "--update-allowlist"] => lint::run(root, true),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    match code {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => ExitCode::from(n.clamp(0, i32::from(u8::MAX)) as u8),
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::from(2)
        }
    }
}
