//! The ratcheted lint allowlist.
//!
//! `lint-allowlist.txt` at the repo root budgets the known violations
//! per `(rule, file)`. Every entry must carry a justification comment;
//! the budget may only go down over time — `cargo xtask lint` fails
//! both when a file exceeds its budget and when it improves without
//! the budget being lowered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The allowlist's location, relative to the workspace root.
pub const FILE_NAME: &str = "lint-allowlist.txt";

/// Active finding lines keyed by `(rule, file)` — the shape both the
/// budget check and `--update-allowlist` consume.
pub type FindingLines = BTreeMap<(String, String), Vec<usize>>;

const HEADER: &str = "\
# helmsim lint allowlist — ratcheted budgets for known violations.
#
# Format:  <rule> <file> <count>  # justification (required)
#
# `cargo xtask lint` fails when a file EXCEEDS its budget (new
# violations) and when it comes in UNDER it (lower the budget in the
# same change — the list only shrinks). `--update-allowlist` refreshes
# counts for existing entries and drops stale ones; it refuses to add
# new entries — write those by hand, or waive single findings in
# source with `// lint: allow(<rule>): <justification>`.
";

/// One budgeted `(rule, file)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Number of tolerated violations.
    pub count: usize,
    /// Why these violations are acceptable (for now).
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), Entry>,
}

impl Allowlist {
    /// Loads the allowlist, treating a missing file as empty.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Allowlist::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut entries = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (fields, justification) = match line.split_once('#') {
                Some((f, j)) if !j.trim().is_empty() => (f, j.trim().to_owned()),
                _ => {
                    return Err(format!(
                        "{}:{}: allowlist entry without a justification comment",
                        path.display(),
                        lineno + 1
                    ))
                }
            };
            let parts: Vec<&str> = fields.split_whitespace().collect();
            let [rule, file, count] = parts[..] else {
                return Err(format!(
                    "{}:{}: expected `<rule> <file> <count>  # justification`",
                    path.display(),
                    lineno + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("{}:{}: bad count '{count}'", path.display(), lineno + 1))?;
            entries.insert(
                (rule.to_owned(), file.to_owned()),
                Entry {
                    rule: rule.to_owned(),
                    file: file.to_owned(),
                    count,
                    justification,
                },
            );
        }
        Ok(Allowlist { entries })
    }

    /// The budget for `(rule, file)`; zero when unlisted.
    pub fn budget(&self, rule: &str, file: &str) -> usize {
        self.entries
            .get(&(rule.to_owned(), file.to_owned()))
            .map_or(0, |e| e.count)
    }

    /// All entries, in `(rule, file)` order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A new allowlist matching `found` exactly: existing entries
    /// keep their justification with the refreshed count, stale
    /// entries are dropped. Refuses to invent entries for `(rule,
    /// file)` pairs not already on the list — a justification is a
    /// human judgment, so new entries must be written by hand.
    pub fn rebudget(&self, found: &FindingLines) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        let mut refused = Vec::new();
        for ((rule, file), lines) in found {
            match self.entries.get(&(rule.clone(), file.clone())) {
                Some(existing) => {
                    entries.insert(
                        (rule.clone(), file.clone()),
                        Entry {
                            rule: rule.clone(),
                            file: file.clone(),
                            count: lines.len(),
                            justification: existing.justification.clone(),
                        },
                    );
                }
                None => refused.push(format!("{rule} {file} {}", lines.len())),
            }
        }
        if refused.is_empty() {
            Ok(Allowlist { entries })
        } else {
            Err(format!(
                "refusing to add allowlist entries without a justification; fix the \
                 violations, waive them in-source, or add these lines to {FILE_NAME} \
                 by hand with a `# justification`:\n    {}",
                refused.join("\n    ")
            ))
        }
    }

    /// Serializes and writes the allowlist.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut out = String::from(HEADER);
        out.push('\n');
        let width = self
            .entries
            .values()
            .map(|e| e.rule.len() + e.file.len())
            .max()
            .unwrap_or(0);
        for e in self.entries.values() {
            let key = format!("{} {}", e.rule, e.file);
            let _ = writeln!(
                out,
                "{key:<w$} {:>3}  # {}",
                e.count,
                e.justification,
                w = width + 1
            );
        }
        std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Allowlist, String> {
        let dir = std::env::temp_dir().join("helmsim-xtask-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("allow-{}.txt", text.len()));
        std::fs::write(&path, text).expect("write");
        let result = Allowlist::load(&path);
        std::fs::remove_file(&path).ok();
        result
    }

    #[test]
    fn parses_entries_and_budgets() {
        let a = parse(
            "# header\n\nno-panic crates/cli/src/args.rs 3  # flag parser aborts with usage\n",
        )
        .expect("parses");
        assert_eq!(a.budget("no-panic", "crates/cli/src/args.rs"), 3);
        assert_eq!(a.budget("no-panic", "crates/cli/src/other.rs"), 0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn rejects_unjustified_entries() {
        let err = parse("no-panic crates/x/src/lib.rs 1\n").expect_err("must fail");
        assert!(err.contains("justification"));
    }

    #[test]
    fn rejects_malformed_fields() {
        assert!(parse("no-panic 3  # missing file\n").is_err());
        assert!(parse("no-panic a.rs many  # bad count\n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/allow.txt")).expect("empty");
        assert!(a.is_empty());
    }

    #[test]
    fn rebudget_keeps_justifications_and_counts() {
        let a = parse("no-panic crates/x/src/lib.rs 5  # legacy path\n").expect("parses");
        let mut found = BTreeMap::new();
        found.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![1, 2, 3],
        );
        let b = a.rebudget(&found).expect("all entries known");
        assert_eq!(b.budget("no-panic", "crates/x/src/lib.rs"), 3);
        let kept = b.entries().find(|e| e.rule == "no-panic").expect("kept");
        assert_eq!(kept.justification, "legacy path");
    }

    #[test]
    fn rebudget_refuses_unjustified_new_entries() {
        let a = parse("no-panic crates/x/src/lib.rs 5  # legacy path\n").expect("parses");
        let mut found = BTreeMap::new();
        found.insert(
            (
                "raw-unit-arith".to_owned(),
                "crates/y/src/lib.rs".to_owned(),
            ),
            vec![9],
        );
        let err = a.rebudget(&found).expect_err("must refuse");
        assert!(err.contains("raw-unit-arith crates/y/src/lib.rs 1"));
        assert!(err.contains("justification"));
    }

    #[test]
    fn rebudget_drops_stale_entries() {
        let a = parse("no-panic crates/x/src/lib.rs 5  # legacy path\n").expect("parses");
        let b = a.rebudget(&BTreeMap::new()).expect("empty is fine");
        assert!(b.is_empty());
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("helmsim-xtask-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.txt");
        let a = parse("no-panic crates/x/src/lib.rs 2  # legacy path\n").expect("parses");
        a.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("# helmsim lint allowlist"));
        let b = Allowlist::load(&path).expect("load");
        assert_eq!(b.budget("no-panic", "crates/x/src/lib.rs"), 2);
        std::fs::remove_file(&path).ok();
    }
}
