//! The ratcheted lint allowlist.
//!
//! `lint-allowlist.txt` at the repo root budgets the known violations
//! per `(rule, file)`. Every entry must carry a justification comment;
//! the budget may only go down over time — `cargo xtask lint` fails
//! both when a file exceeds its budget and when it improves without
//! the budget being lowered.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The allowlist's location, relative to the workspace root.
pub const FILE_NAME: &str = "lint-allowlist.txt";

const HEADER: &str = "\
# helmsim lint allowlist — ratcheted budgets for known violations.
#
# Format:  <rule> <file> <count>  # justification (required)
#
# `cargo xtask lint` fails when a file EXCEEDS its budget (new
# violations) and when it comes in UNDER it (lower the budget in the
# same change — the list only shrinks). Regenerate counts with
# `cargo xtask lint --update-allowlist`, then justify any new entries.
";

/// One budgeted `(rule, file)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Number of tolerated violations.
    pub count: usize,
    /// Why these violations are acceptable (for now).
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: BTreeMap<(String, String), Entry>,
}

impl Allowlist {
    /// Loads the allowlist, treating a missing file as empty.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Allowlist::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut entries = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (fields, justification) = match line.split_once('#') {
                Some((f, j)) if !j.trim().is_empty() => (f, j.trim().to_owned()),
                _ => {
                    return Err(format!(
                        "{}:{}: allowlist entry without a justification comment",
                        path.display(),
                        lineno + 1
                    ))
                }
            };
            let parts: Vec<&str> = fields.split_whitespace().collect();
            let [rule, file, count] = parts[..] else {
                return Err(format!(
                    "{}:{}: expected `<rule> <file> <count>  # justification`",
                    path.display(),
                    lineno + 1
                ));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("{}:{}: bad count '{count}'", path.display(), lineno + 1))?;
            entries.insert(
                (rule.to_owned(), file.to_owned()),
                Entry {
                    rule: rule.to_owned(),
                    file: file.to_owned(),
                    count,
                    justification,
                },
            );
        }
        Ok(Allowlist { entries })
    }

    /// The budget for `(rule, file)`; zero when unlisted.
    pub fn budget(&self, rule: &str, file: &str) -> usize {
        self.entries
            .get(&(rule.to_owned(), file.to_owned()))
            .map_or(0, |e| e.count)
    }

    /// All entries, in `(rule, file)` order.
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A new allowlist matching `found` exactly: existing
    /// justifications are preserved, new entries get a placeholder
    /// that must be edited before the list parses as justified.
    pub fn rebudget(&self, found: &BTreeMap<(String, String), Vec<usize>>) -> Allowlist {
        let mut entries = BTreeMap::new();
        for ((rule, file), lines) in found {
            let justification = self
                .entries
                .get(&(rule.clone(), file.clone()))
                .map(|e| e.justification.clone())
                .unwrap_or_else(|| "TODO: justify this entry".to_owned());
            entries.insert(
                (rule.clone(), file.clone()),
                Entry {
                    rule: rule.clone(),
                    file: file.clone(),
                    count: lines.len(),
                    justification,
                },
            );
        }
        Allowlist { entries }
    }

    /// Serializes and writes the allowlist.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let mut out = String::from(HEADER);
        out.push('\n');
        let width = self
            .entries
            .values()
            .map(|e| e.rule.len() + e.file.len())
            .max()
            .unwrap_or(0);
        for e in self.entries.values() {
            let key = format!("{} {}", e.rule, e.file);
            let _ = writeln!(
                out,
                "{key:<w$} {:>3}  # {}",
                e.count,
                e.justification,
                w = width + 1
            );
        }
        std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Allowlist, String> {
        let dir = std::env::temp_dir().join("helmsim-xtask-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("allow-{}.txt", text.len()));
        std::fs::write(&path, text).expect("write");
        let result = Allowlist::load(&path);
        std::fs::remove_file(&path).ok();
        result
    }

    #[test]
    fn parses_entries_and_budgets() {
        let a = parse(
            "# header\n\nno-panic crates/cli/src/args.rs 3  # flag parser aborts with usage\n",
        )
        .expect("parses");
        assert_eq!(a.budget("no-panic", "crates/cli/src/args.rs"), 3);
        assert_eq!(a.budget("no-panic", "crates/cli/src/other.rs"), 0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn rejects_unjustified_entries() {
        let err = parse("no-panic crates/x/src/lib.rs 1\n").expect_err("must fail");
        assert!(err.contains("justification"));
    }

    #[test]
    fn rejects_malformed_fields() {
        assert!(parse("no-panic 3  # missing file\n").is_err());
        assert!(parse("no-panic a.rs many  # bad count\n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/allow.txt")).expect("empty");
        assert!(a.is_empty());
    }

    #[test]
    fn rebudget_keeps_justifications_and_counts() {
        let a = parse("no-panic crates/x/src/lib.rs 5  # legacy path\n").expect("parses");
        let mut found = BTreeMap::new();
        found.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![1, 2, 3],
        );
        found.insert(
            (
                "raw-unit-arith".to_owned(),
                "crates/y/src/lib.rs".to_owned(),
            ),
            vec![9],
        );
        let b = a.rebudget(&found);
        assert_eq!(b.budget("no-panic", "crates/x/src/lib.rs"), 3);
        let new_entry = b
            .entries()
            .find(|e| e.rule == "raw-unit-arith")
            .expect("new entry");
        assert!(new_entry.justification.contains("TODO"));
        let kept = b.entries().find(|e| e.rule == "no-panic").expect("kept");
        assert_eq!(kept.justification, "legacy path");
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("helmsim-xtask-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.txt");
        let mut found = BTreeMap::new();
        found.insert(
            ("no-panic".to_owned(), "crates/x/src/lib.rs".to_owned()),
            vec![4, 7],
        );
        let a = Allowlist::default().rebudget(&found);
        a.save(&path).expect("save");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with("# helmsim lint allowlist"));
        // The regenerated TODO placeholder still parses as a comment.
        let b = Allowlist::load(&path).expect("load");
        assert_eq!(b.budget("no-panic", "crates/x/src/lib.rs"), 2);
        std::fs::remove_file(&path).ok();
    }
}
