//! # simaudit — runtime invariant auditor
//!
//! Conservation-law and sanity checking for the helmsim executors.
//! The simulator's correctness rests on a handful of invariants that
//! no single unit test can pin down globally:
//!
//! * **byte conservation** — every byte scheduled on a transfer path
//!   is eventually delivered or explicitly dropped ([`ByteLedger`]);
//! * **time monotonicity** — simulated clocks never run backwards
//!   ([`Auditor::observe_time`], plus the engine-level check in
//!   [`simcore::engine`]);
//! * **unit sanity** — durations and bandwidths stay finite and
//!   non-negative ([`Auditor::check_duration`],
//!   [`Auditor::check_bandwidth`]);
//! * **placement feasibility** — percent splits sum to 100 and tier
//!   capacities are never exceeded ([`Auditor::check_percent_split`],
//!   [`Auditor::check_tier_capacity`]).
//!
//! An [`Auditor`] is cheap to create and no-ops entirely when auditing
//! is disabled ([`enabled`]); it is on by default in debug builds and
//! can be forced on in release builds (the CLI's `--audit` flag, via
//! [`force_enable`]). Violations are *recorded*, not panicked on, so a
//! run always completes and reports everything it found at once
//! ([`AuditReport`]).
//!
//! # Examples
//!
//! ```
//! use simaudit::Auditor;
//! use simcore::units::ByteSize;
//!
//! let mut audit = Auditor::new();
//! audit.scheduled("h2d:cpu", ByteSize::from_mb(8.0));
//! audit.delivered("h2d:cpu", ByteSize::from_mb(8.0));
//! let report = audit.finish();
//! assert!(report.is_clean());
//! ```

use simcore::time::{SimDuration, SimTime};
use simcore::units::{Bandwidth, ByteSize};
use std::collections::BTreeMap;
use std::fmt;

pub use simcore::audit::{enabled, force_enable, is_forced};

/// One byte-conservation ledger: a named transfer channel on which
/// every scheduled byte must be delivered or explicitly dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteLedger {
    /// Bytes handed to the channel for transfer.
    pub scheduled: ByteSize,
    /// Bytes that arrived.
    pub delivered: ByteSize,
    /// Bytes intentionally abandoned (cancelled transfers).
    pub dropped: ByteSize,
}

impl ByteLedger {
    /// Bytes scheduled but neither delivered nor dropped.
    pub fn outstanding(&self) -> ByteSize {
        self.scheduled.saturating_sub(self.delivered + self.dropped)
    }

    /// Whether the ledger balances: delivered + dropped == scheduled.
    pub fn is_balanced(&self) -> bool {
        self.delivered + self.dropped == self.scheduled
    }
}

/// One request-conservation ledger: a named service channel on which
/// every enqueued request must complete or be explicitly abandoned —
/// the discrete analogue of [`ByteLedger`] for the online serving
/// layer (arrived = queued + in-flight + completed at all times, and
/// everything completes by the end of the run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountLedger {
    /// Requests handed to the channel.
    pub enqueued: u64,
    /// Requests that finished service.
    pub completed: u64,
    /// Requests intentionally abandoned (cancelled / shed load).
    pub abandoned: u64,
}

impl CountLedger {
    /// Requests enqueued but neither completed nor abandoned.
    pub fn outstanding(&self) -> u64 {
        self.enqueued
            .saturating_sub(self.completed + self.abandoned)
    }

    /// Whether the ledger balances: completed + abandoned == enqueued.
    pub fn is_balanced(&self) -> bool {
        self.completed + self.abandoned == self.enqueued
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A channel's ledger did not balance at the end of the run.
    LedgerImbalance {
        /// Channel name (e.g. `"h2d:cpu"`).
        channel: String,
        /// Final ledger state.
        ledger: ByteLedger,
    },
    /// More bytes were delivered or dropped on a channel than were
    /// ever scheduled.
    OverDelivery {
        /// Channel name.
        channel: String,
        /// Final ledger state.
        ledger: ByteLedger,
    },
    /// A clock was observed running backwards.
    TimeRegression {
        /// Which clock.
        clock: String,
        /// The previously observed instant.
        previous: SimTime,
        /// The regressed observation.
        observed: SimTime,
    },
    /// A duration was NaN or negative.
    InvalidDuration {
        /// What the duration measured.
        label: String,
        /// The offending value in seconds.
        secs: f64,
    },
    /// A bandwidth was NaN, infinite, or non-positive.
    InvalidBandwidth {
        /// What the rate described.
        label: String,
        /// The offending value in bytes/second.
        bytes_per_s: f64,
    },
    /// A (disk, cpu, gpu) percent split did not sum to 100, or a
    /// component fell outside [0, 100].
    BadPercentSplit {
        /// Which split.
        label: String,
        /// The offending (disk, cpu, gpu) percentages.
        percents: [f64; 3],
    },
    /// A tier held more bytes than its capacity.
    CapacityExceeded {
        /// Tier name.
        tier: String,
        /// Bytes placed on the tier.
        used: ByteSize,
        /// The tier's capacity.
        capacity: ByteSize,
    },
    /// A channel's request counts did not conserve: completed plus
    /// abandoned differs from enqueued at the end of the run.
    CountImbalance {
        /// Channel name (e.g. `"req:pipe0"`).
        channel: String,
        /// Final ledger state.
        ledger: CountLedger,
    },
    /// A server's accumulated busy time exceeded the wall-clock span
    /// it fit inside — a single pipeline cannot be busy for longer
    /// than it exists.
    BusyExceedsElapsed {
        /// Which busy-time ledger.
        label: String,
        /// Accumulated busy time.
        busy: SimDuration,
        /// Wall-clock span available.
        elapsed: SimDuration,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LedgerImbalance { channel, ledger } => write!(
                f,
                "ledger imbalance on {channel}: scheduled {}, delivered {}, dropped {} ({} outstanding)",
                ledger.scheduled,
                ledger.delivered,
                ledger.dropped,
                ledger.outstanding()
            ),
            Violation::OverDelivery { channel, ledger } => write!(
                f,
                "over-delivery on {channel}: scheduled {}, delivered {}, dropped {}",
                ledger.scheduled, ledger.delivered, ledger.dropped
            ),
            Violation::TimeRegression {
                clock,
                previous,
                observed,
            } => write!(
                f,
                "clock {clock} ran backwards: {:.9}s after {:.9}s",
                observed.as_secs(),
                previous.as_secs()
            ),
            Violation::InvalidDuration { label, secs } => {
                write!(f, "invalid duration for {label}: {secs}s")
            }
            Violation::InvalidBandwidth { label, bytes_per_s } => {
                write!(f, "invalid bandwidth for {label}: {bytes_per_s} B/s")
            }
            Violation::BadPercentSplit { label, percents } => write!(
                f,
                "bad percent split for {label}: ({:.3}, {:.3}, {:.3}) sums to {:.3}",
                percents[0],
                percents[1],
                percents[2],
                percents.iter().sum::<f64>()
            ),
            Violation::CapacityExceeded {
                tier,
                used,
                capacity,
            } => write!(f, "tier {tier} over capacity: {used} placed in {capacity}"),
            Violation::CountImbalance { channel, ledger } => write!(
                f,
                "request imbalance on {channel}: enqueued {}, completed {}, abandoned {} ({} outstanding)",
                ledger.enqueued,
                ledger.completed,
                ledger.abandoned,
                ledger.outstanding()
            ),
            Violation::BusyExceedsElapsed {
                label,
                busy,
                elapsed,
            } => write!(
                f,
                "busy time for {label} exceeds the elapsed span: {:.6}s busy in {:.6}s",
                busy.as_secs(),
                elapsed.as_secs()
            ),
        }
    }
}

/// The outcome of one audited run: every channel's final ledger plus
/// every violation observed along the way.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Final per-channel ledgers, in channel-name order.
    pub ledgers: Vec<(String, ByteLedger)>,
    /// Final per-channel request-count ledgers, in channel-name order.
    pub counts: Vec<(String, CountLedger)>,
    /// Everything that went wrong (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Whether the run upheld every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The final ledger of `channel`, if any bytes moved on it.
    pub fn ledger(&self, channel: &str) -> Option<&ByteLedger> {
        self.ledgers
            .iter()
            .find(|(name, _)| name == channel)
            .map(|(_, l)| l)
    }

    /// The final request-count ledger of `channel`, if any requests
    /// moved on it.
    pub fn count_ledger(&self, channel: &str) -> Option<&CountLedger> {
        self.counts
            .iter()
            .find(|(name, _)| name == channel)
            .map(|(_, l)| l)
    }

    /// Total requests completed across all count channels with the
    /// given prefix (e.g. `"req:"`).
    pub fn completed_with_prefix(&self, prefix: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, l)| l.completed)
            .sum()
    }

    /// Total requests enqueued across all count channels with the
    /// given prefix — the offered load a conservation check balances
    /// completions and abandonments against.
    pub fn enqueued_with_prefix(&self, prefix: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, l)| l.enqueued)
            .sum()
    }

    /// Total requests abandoned (rejected at admission, expired in
    /// queue, or dropped mid-flight) across all count channels with
    /// the given prefix.
    pub fn abandoned_with_prefix(&self, prefix: &str) -> u64 {
        self.counts
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, l)| l.abandoned)
            .sum()
    }

    /// Total bytes delivered across all channels with the given
    /// prefix (e.g. `"h2d:"`).
    pub fn delivered_with_prefix(&self, prefix: &str) -> ByteSize {
        self.ledgers
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, l)| l.delivered)
            .sum()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} ({} channel(s), {} violation(s))",
            if self.is_clean() { "clean" } else { "VIOLATED" },
            self.ledgers.len(),
            self.violations.len()
        )?;
        for (channel, ledger) in &self.ledgers {
            writeln!(
                f,
                "  {channel:<12} scheduled {:>12} delivered {:>12} dropped {:>10} [{}]",
                ledger.scheduled.to_string(),
                ledger.delivered.to_string(),
                ledger.dropped.to_string(),
                if ledger.is_balanced() {
                    "ok"
                } else {
                    "IMBALANCED"
                }
            )?;
        }
        for (channel, ledger) in &self.counts {
            writeln!(
                f,
                "  {channel:<12} enqueued  {:>12} completed {:>12} abandoned {:>9} [{}]",
                ledger.enqueued,
                ledger.completed,
                ledger.abandoned,
                if ledger.is_balanced() {
                    "ok"
                } else {
                    "IMBALANCED"
                }
            )?;
        }
        for v in &self.violations {
            writeln!(f, "  violation: {v}")?;
        }
        Ok(())
    }
}

/// Records invariant observations during one run.
///
/// Create with [`Auditor::capture`] in executor code (no-ops when
/// auditing is off) or [`Auditor::new`] in tests (always on). Feed it
/// observations as the run progresses and call [`Auditor::finish`] at
/// the end; un-balanced ledgers become violations there.
#[derive(Debug, Default)]
pub struct Auditor {
    active: bool,
    ledgers: BTreeMap<String, ByteLedger>,
    counts: BTreeMap<String, CountLedger>,
    clocks: BTreeMap<String, SimTime>,
    violations: Vec<Violation>,
}

impl Auditor {
    /// An always-active auditor.
    pub fn new() -> Self {
        Auditor {
            active: true,
            ..Auditor::default()
        }
    }

    /// An auditor that is active only when auditing is [`enabled`] —
    /// the constructor executor code uses. When inactive, every
    /// method is a no-op and [`Auditor::finish_if_active`] returns
    /// `None`.
    pub fn capture() -> Self {
        Auditor {
            active: enabled(),
            ..Auditor::default()
        }
    }

    /// Whether observations are being recorded.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Records bytes handed to `channel` for transfer.
    pub fn scheduled(&mut self, channel: &str, bytes: ByteSize) {
        if !self.active {
            return;
        }
        self.ledgers
            .entry(channel.to_owned())
            .or_default()
            .scheduled += bytes;
    }

    /// Records bytes arriving on `channel`.
    pub fn delivered(&mut self, channel: &str, bytes: ByteSize) {
        if !self.active {
            return;
        }
        self.ledgers
            .entry(channel.to_owned())
            .or_default()
            .delivered += bytes;
    }

    /// Records bytes abandoned on `channel` (a cancelled transfer):
    /// they are accounted for, not lost.
    pub fn dropped(&mut self, channel: &str, bytes: ByteSize) {
        if !self.active {
            return;
        }
        self.ledgers.entry(channel.to_owned()).or_default().dropped += bytes;
    }

    /// Records `n` requests handed to service channel `channel`.
    pub fn enqueued(&mut self, channel: &str, n: u64) {
        if !self.active {
            return;
        }
        self.counts.entry(channel.to_owned()).or_default().enqueued += n;
    }

    /// Records `n` requests finishing service on `channel`.
    pub fn completed(&mut self, channel: &str, n: u64) {
        if !self.active {
            return;
        }
        self.counts.entry(channel.to_owned()).or_default().completed += n;
    }

    /// Records `n` requests abandoned on `channel` (cancelled or shed
    /// load): they are accounted for, not lost.
    pub fn abandoned(&mut self, channel: &str, n: u64) {
        if !self.active {
            return;
        }
        self.counts.entry(channel.to_owned()).or_default().abandoned += n;
    }

    /// Checks a busy-time ledger against the wall-clock span it must
    /// fit inside (a small relative tolerance absorbs floating-point
    /// accumulation).
    pub fn check_busy_time(&mut self, label: &str, busy: SimDuration, elapsed: SimDuration) {
        if !self.active {
            return;
        }
        if busy.as_secs() > elapsed.as_secs() * (1.0 + 1e-9) + 1e-12 {
            self.violations.push(Violation::BusyExceedsElapsed {
                label: label.to_owned(),
                busy,
                elapsed,
            });
        }
    }

    /// Observes `clock` at instant `now`, recording a violation if it
    /// moved backwards since the previous observation.
    pub fn observe_time(&mut self, clock: &str, now: SimTime) {
        if !self.active {
            return;
        }
        match self.clocks.get_mut(clock) {
            Some(prev) if now < *prev => {
                let previous = *prev;
                self.violations.push(Violation::TimeRegression {
                    clock: clock.to_owned(),
                    previous,
                    observed: now,
                });
            }
            Some(prev) => *prev = now,
            None => {
                self.clocks.insert(clock.to_owned(), now);
            }
        }
    }

    /// Checks a duration for NaN/negative values. The
    /// [`SimDuration::INFINITY`] sentinel is deliberately allowed.
    pub fn check_duration(&mut self, label: &str, d: SimDuration) {
        if !self.active {
            return;
        }
        let secs = d.as_secs();
        if secs.is_nan() || secs < 0.0 {
            self.violations.push(Violation::InvalidDuration {
                label: label.to_owned(),
                secs,
            });
        }
    }

    /// Checks a bandwidth for NaN/infinite/non-positive rates.
    pub fn check_bandwidth(&mut self, label: &str, bw: Bandwidth) {
        if !self.active {
            return;
        }
        let bps = bw.as_bytes_per_s();
        if !bps.is_finite() || bps <= 0.0 {
            self.violations.push(Violation::InvalidBandwidth {
                label: label.to_owned(),
                bytes_per_s: bps,
            });
        }
    }

    /// Checks a (disk, cpu, gpu) percent split: each component in
    /// [0, 100] and the total within `0.5` of 100 (placement math is
    /// floating-point; achieved splits carry rounding).
    pub fn check_percent_split(&mut self, label: &str, percents: [f64; 3]) {
        if !self.active {
            return;
        }
        let sum: f64 = percents.iter().sum();
        let components_ok = percents
            .iter()
            .all(|p| p.is_finite() && (-1e-9..=100.0 + 1e-9).contains(p));
        if !components_ok || (sum - 100.0).abs() > 0.5 {
            self.violations.push(Violation::BadPercentSplit {
                label: label.to_owned(),
                percents,
            });
        }
    }

    /// Checks that a tier's placed bytes fit its capacity.
    pub fn check_tier_capacity(&mut self, tier: &str, used: ByteSize, capacity: ByteSize) {
        if !self.active {
            return;
        }
        if used > capacity {
            self.violations.push(Violation::CapacityExceeded {
                tier: tier.to_owned(),
                used,
                capacity,
            });
        }
    }

    /// Closes the books: un-balanced ledgers become violations and
    /// everything recorded is returned.
    pub fn finish(self) -> AuditReport {
        let mut violations = self.violations;
        let mut ledgers = Vec::with_capacity(self.ledgers.len());
        for (channel, ledger) in self.ledgers {
            if ledger.delivered + ledger.dropped > ledger.scheduled {
                violations.push(Violation::OverDelivery {
                    channel: channel.clone(),
                    ledger,
                });
            } else if !ledger.is_balanced() {
                violations.push(Violation::LedgerImbalance {
                    channel: channel.clone(),
                    ledger,
                });
            }
            ledgers.push((channel, ledger));
        }
        let mut counts = Vec::with_capacity(self.counts.len());
        for (channel, ledger) in self.counts {
            if !ledger.is_balanced() {
                violations.push(Violation::CountImbalance {
                    channel: channel.clone(),
                    ledger,
                });
            }
            counts.push((channel, ledger));
        }
        AuditReport {
            ledgers,
            counts,
            violations,
        }
    }

    /// Like [`Auditor::finish`], but `None` for an inactive auditor —
    /// what executors store into their run reports.
    pub fn finish_if_active(self) -> Option<AuditReport> {
        if self.active {
            Some(self.finish())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(x: f64) -> ByteSize {
        ByteSize::from_mb(x)
    }

    #[test]
    fn balanced_ledger_is_clean() {
        let mut a = Auditor::new();
        a.scheduled("h2d:cpu", mb(10.0));
        a.delivered("h2d:cpu", mb(6.0));
        a.delivered("h2d:cpu", mb(4.0));
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
        assert!(report.ledger("h2d:cpu").unwrap().is_balanced());
    }

    #[test]
    fn outstanding_bytes_are_an_imbalance() {
        let mut a = Auditor::new();
        a.scheduled("h2d:disk", mb(10.0));
        a.delivered("h2d:disk", mb(7.0));
        let report = a.finish();
        assert!(!report.is_clean());
        assert!(matches!(
            &report.violations[0],
            Violation::LedgerImbalance { channel, ledger }
                if channel == "h2d:disk" && ledger.outstanding() == mb(3.0)
        ));
    }

    #[test]
    fn dropped_bytes_balance_the_ledger() {
        let mut a = Auditor::new();
        a.scheduled("d2h:kv", mb(5.0));
        a.delivered("d2h:kv", mb(3.0));
        a.dropped("d2h:kv", mb(2.0));
        assert!(a.finish().is_clean());
    }

    #[test]
    fn over_delivery_is_flagged() {
        let mut a = Auditor::new();
        a.scheduled("h2d:kv", mb(1.0));
        a.delivered("h2d:kv", mb(2.0));
        let report = a.finish();
        assert!(matches!(
            &report.violations[0],
            Violation::OverDelivery { channel, .. } if channel == "h2d:kv"
        ));
    }

    #[test]
    fn clocks_must_be_monotone() {
        let mut a = Auditor::new();
        a.observe_time("des", SimTime::from_secs(1.0));
        a.observe_time("des", SimTime::from_secs(2.0));
        a.observe_time("des", SimTime::from_secs(1.5));
        let report = a.finish();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            &report.violations[0],
            Violation::TimeRegression { clock, .. } if clock == "des"
        ));
    }

    #[test]
    fn unit_guards_catch_nan_and_nonpositive() {
        let mut a = Auditor::new();
        a.check_duration("step", SimDuration::from_secs(0.25));
        a.check_duration("step", SimDuration::INFINITY); // sentinel: allowed
        a.check_bandwidth("link", Bandwidth::from_gb_per_s(32.0));
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn percent_split_checks_sum_and_range() {
        let mut a = Auditor::new();
        a.check_percent_split("ok", [20.0, 70.0, 10.0]);
        a.check_percent_split("rounded", [19.9, 70.2, 10.0]);
        a.check_percent_split("short", [20.0, 20.0, 10.0]);
        a.check_percent_split("negative", [-10.0, 100.0, 10.0]);
        let report = a.finish();
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn capacity_check_flags_overflow_only() {
        let mut a = Auditor::new();
        a.check_tier_capacity("cpu", mb(100.0), mb(100.0));
        a.check_tier_capacity("gpu", mb(101.0), mb(100.0));
        let report = a.finish();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            &report.violations[0],
            Violation::CapacityExceeded { tier, .. } if tier == "gpu"
        ));
    }

    #[test]
    fn inactive_auditor_records_nothing() {
        let mut a = Auditor {
            active: false,
            ..Auditor::default()
        };
        a.scheduled("h2d:cpu", mb(10.0));
        a.observe_time("des", SimTime::from_secs(1.0));
        assert!(a.finish_if_active().is_none());
    }

    #[test]
    fn balanced_request_counts_are_clean() {
        let mut a = Auditor::new();
        a.enqueued("req:pipe0", 10);
        a.completed("req:pipe0", 8);
        a.abandoned("req:pipe0", 2);
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.count_ledger("req:pipe0").unwrap().outstanding(), 0);
        assert_eq!(report.completed_with_prefix("req:"), 8);
    }

    #[test]
    fn prefix_sums_cover_the_abandoned_path() {
        // Conservation with admission control in play: everything
        // offered is either completed or abandoned, across channels.
        let mut a = Auditor::new();
        a.enqueued("req:pipe0", 10);
        a.completed("req:pipe0", 7);
        a.abandoned("req:pipe0", 3);
        a.enqueued("req:pipe1", 4);
        a.completed("req:pipe1", 4);
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.enqueued_with_prefix("req:"), 14);
        assert_eq!(report.abandoned_with_prefix("req:"), 3);
        assert_eq!(
            report.enqueued_with_prefix("req:"),
            report.completed_with_prefix("req:") + report.abandoned_with_prefix("req:")
        );
    }

    #[test]
    fn outstanding_requests_are_an_imbalance() {
        let mut a = Auditor::new();
        a.enqueued("req:pipe1", 5);
        a.completed("req:pipe1", 3);
        let report = a.finish();
        assert!(!report.is_clean());
        assert!(matches!(
            &report.violations[0],
            Violation::CountImbalance { channel, ledger }
                if channel == "req:pipe1" && ledger.outstanding() == 2
        ));
        assert!(report.to_string().contains("req:pipe1"));
    }

    /// Million-request-scale guard: counts past `u32::MAX` — fed both
    /// as one large increment and as many batched increments whose sum
    /// exceeds 32 bits — must stay exact end to end. A 32-bit counter
    /// anywhere on this path would wrap and either false-positive an
    /// imbalance or, worse, silently balance a corrupted ledger.
    #[test]
    fn ledgers_stay_exact_past_u32_counts() {
        let big = u64::from(u32::MAX) + 7;
        let mut a = Auditor::new();
        a.enqueued("req:pipe0", big);
        a.completed("req:pipe0", big - 3);
        a.abandoned("req:pipe0", 3);
        let report = a.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.enqueued_with_prefix("req:"), big);
        assert_eq!(report.completed_with_prefix("req:"), big - 3);

        let step = u64::from(u32::MAX) / 2;
        let batches = 64u64;
        let mut b = Auditor::new();
        for _ in 0..batches {
            b.enqueued("req:pipe1", step);
            b.completed("req:pipe1", step);
        }
        let report = b.finish();
        assert!(report.is_clean(), "{report}");
        let total = step * batches;
        assert!(total > u64::from(u32::MAX));
        assert_eq!(report.count_ledger("req:pipe1").unwrap().enqueued, total);
        assert_eq!(report.count_ledger("req:pipe1").unwrap().completed, total);
    }

    #[test]
    fn busy_time_must_fit_the_elapsed_span() {
        let mut a = Auditor::new();
        a.check_busy_time(
            "pipe0",
            SimDuration::from_secs(5.0),
            SimDuration::from_secs(5.0),
        );
        a.check_busy_time(
            "pipe1",
            SimDuration::from_secs(6.0),
            SimDuration::from_secs(5.0),
        );
        let report = a.finish();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            &report.violations[0],
            Violation::BusyExceedsElapsed { label, .. } if label == "pipe1"
        ));
    }

    #[test]
    fn report_aggregates_by_prefix_and_renders() {
        let mut a = Auditor::new();
        a.scheduled("h2d:cpu", mb(4.0));
        a.delivered("h2d:cpu", mb(4.0));
        a.scheduled("h2d:kv", mb(2.0));
        a.delivered("h2d:kv", mb(2.0));
        a.scheduled("d2h:kv", mb(1.0));
        a.delivered("d2h:kv", mb(1.0));
        let report = a.finish();
        assert_eq!(report.delivered_with_prefix("h2d:"), mb(6.0));
        let text = report.to_string();
        assert!(text.contains("clean") && text.contains("h2d:cpu"));
    }
}
