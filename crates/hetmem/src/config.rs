//! The memory configurations of Table II (plus the Table III CXL
//! projections), each bundling the device that backs host-resident
//! weights ("cpu" tier) and, when present, a storage tier ("disk").

use crate::cxl::CxlDevice;
use crate::device::{MemoryDevice, Staging};
use crate::dram::DramDevice;
use crate::memmode::MemoryModeDevice;
use crate::optane::OptaneDevice;
use crate::storage::StorageDevice;
use simcore::units::{Bandwidth, ByteSize, UnitError};
use std::fmt;
use std::sync::Arc;

/// A shareable device handle.
pub type DeviceHandle = Arc<dyn MemoryDevice + Send + Sync>;

/// The configuration labels of Table II and the Table III projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryConfigKind {
    /// All-DRAM host memory.
    Dram,
    /// Optane as flat main memory via Memkind ("NVDRAM").
    NvDram,
    /// Optane Memory Mode (DRAM cache in front).
    MemoryMode,
    /// DRAM host memory + Optane as a conventional block device.
    Ssd,
    /// DRAM host memory + Optane via ext4-DAX.
    FsDax,
    /// CXL expander, FPGA controller (Table III).
    CxlFpga,
    /// CXL expander, ASIC controller (Table III).
    CxlAsic,
    /// CXL expander with custom bandwidth (sensitivity sweeps).
    CxlCustom,
    /// DRAM + Optane behind transparent OS page tiering (TPP-style,
    /// the §VI application-agnostic alternative).
    TppTiered,
}

impl fmt::Display for MemoryConfigKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemoryConfigKind::Dram => "DRAM",
            MemoryConfigKind::NvDram => "NVDRAM",
            MemoryConfigKind::MemoryMode => "MemoryMode",
            MemoryConfigKind::Ssd => "SSD",
            MemoryConfigKind::FsDax => "FSDAX",
            MemoryConfigKind::CxlFpga => "CXL-FPGA",
            MemoryConfigKind::CxlAsic => "CXL-ASIC",
            MemoryConfigKind::CxlCustom => "CXL-custom",
            MemoryConfigKind::TppTiered => "TPP-tiered",
        })
    }
}

/// A host memory configuration: the device backing CPU-tier weights
/// plus an optional storage tier.
///
/// # Examples
///
/// ```
/// use hetmem::{HostMemoryConfig, MemoryConfigKind};
///
/// let cfg = HostMemoryConfig::nvdram();
/// assert_eq!(cfg.kind(), MemoryConfigKind::NvDram);
/// assert!(cfg.disk_device().is_none());
/// let ssd = HostMemoryConfig::ssd();
/// assert!(ssd.disk_device().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct HostMemoryConfig {
    kind: MemoryConfigKind,
    cpu: DeviceHandle,
    disk: Option<DeviceHandle>,
}

impl HostMemoryConfig {
    /// All-DRAM host memory (both sockets: 256 GB).
    pub fn dram() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::Dram,
            cpu: Arc::new(DramDevice::new(
                ByteSize::from_gib(256.0),
                crate::dram::DDR4_2933_SOCKET_READ,
                crate::dram::PER_STREAM,
            )),
            disk: None,
        }
    }

    /// An all-DRAM host with custom capacity and rates, for what-if
    /// studies (e.g. the hypothetical 1 TB DRAM system that OPT-175B
    /// would need without heterogeneous memory).
    pub fn custom_dram(capacity: ByteSize, socket_read: Bandwidth, per_stream: Bandwidth) -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::Dram,
            cpu: Arc::new(DramDevice::new(capacity, socket_read, per_stream)),
            disk: None,
        }
    }

    /// Optane as flat main memory via Memkind (both sockets: 1 TB).
    pub fn nvdram() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::NvDram,
            cpu: Arc::new(OptaneDevice::with_capacity(ByteSize::from_tib(1.0))),
            disk: None,
        }
    }

    /// Optane Memory Mode: a 256 GB DRAM cache over 1 TB of Optane.
    pub fn memory_mode() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::MemoryMode,
            cpu: Arc::new(MemoryModeDevice::new(
                DramDevice::new(
                    ByteSize::from_gib(256.0),
                    crate::dram::DDR4_2933_SOCKET_READ,
                    crate::dram::PER_STREAM,
                ),
                OptaneDevice::with_capacity(ByteSize::from_tib(1.0)),
            )),
            disk: None,
        }
    }

    /// DRAM host memory plus Optane behind a conventional file system.
    pub fn ssd() -> Self {
        let mut cfg = Self::dram();
        cfg.kind = MemoryConfigKind::Ssd;
        cfg.disk = Some(Arc::new(StorageDevice::optane_block()) as DeviceHandle);
        cfg
    }

    /// DRAM host memory plus Optane behind ext4-DAX.
    pub fn fsdax() -> Self {
        let mut cfg = Self::dram();
        cfg.kind = MemoryConfigKind::FsDax;
        cfg.disk = Some(Arc::new(StorageDevice::optane_fsdax()) as DeviceHandle);
        cfg
    }

    /// DRAM + Optane behind transparent OS page tiering (TPP-style).
    pub fn tpp_tiered() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::TppTiered,
            cpu: Arc::new(crate::tiering::TppTieredDevice::paper_system()),
            disk: None,
        }
    }

    /// CXL expander with an FPGA controller (Table III).
    pub fn cxl_fpga() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::CxlFpga,
            cpu: Arc::new(CxlDevice::fpga_ddr4()),
            disk: None,
        }
    }

    /// CXL expander with an ASIC controller (Table III).
    pub fn cxl_asic() -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::CxlAsic,
            cpu: Arc::new(CxlDevice::asic_ddr5()),
            disk: None,
        }
    }

    /// CXL expander with custom read bandwidth, for sweeps across the
    /// controller design space (paper §V-D).
    pub fn cxl_custom(read_bw: Bandwidth) -> Self {
        HostMemoryConfig {
            kind: MemoryConfigKind::CxlCustom,
            cpu: Arc::new(CxlDevice::custom(read_bw, ByteSize::from_tib(1.0))),
            disk: None,
        }
    }

    /// Injects degradation into the CPU-tier device (thermal
    /// throttling, link downtraining): every bandwidth scaled by
    /// `bandwidth_factor`, every latency by `latency_factor`. See
    /// [`crate::fault::ThrottledDevice`].
    pub fn with_cpu_throttle(mut self, bandwidth_factor: f64, latency_factor: f64) -> Self {
        self.cpu = Arc::new(crate::fault::ThrottledDevice::new(
            Arc::clone(&self.cpu),
            bandwidth_factor,
            latency_factor,
        ));
        self
    }

    /// Fallible form of [`HostMemoryConfig::with_cpu_throttle`] for
    /// untrusted factors (sweep configs, CLI flags).
    ///
    /// # Errors
    ///
    /// [`UnitError::InvalidBandwidth`] when `bandwidth_factor` is not
    /// in `(0, 1]`; [`UnitError::InvalidTime`] when `latency_factor`
    /// is not `>= 1` (a throttle can only slow the device down).
    pub fn try_with_cpu_throttle(
        self,
        bandwidth_factor: f64,
        latency_factor: f64,
    ) -> Result<Self, UnitError> {
        if !(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0) {
            return Err(UnitError::InvalidBandwidth(bandwidth_factor));
        }
        if !(latency_factor >= 1.0 && latency_factor.is_finite()) {
            return Err(UnitError::InvalidTime(latency_factor));
        }
        Ok(self.with_cpu_throttle(bandwidth_factor, latency_factor))
    }

    /// The configuration label.
    pub fn kind(&self) -> MemoryConfigKind {
        self.kind
    }

    /// The device backing CPU-tier weights.
    pub fn cpu_device(&self) -> &DeviceHandle {
        &self.cpu
    }

    /// The storage-tier device, when this configuration has one.
    pub fn disk_device(&self) -> Option<&DeviceHandle> {
        self.disk.as_ref()
    }

    /// Whether transfers from the CPU tier must bounce through DRAM.
    pub fn cpu_needs_bounce(&self) -> bool {
        self.cpu.staging() == Staging::BounceBuffer
    }

    /// The Table II configurations applicable to a model that fits in
    /// DRAM (the OPT-30B set).
    pub fn opt30b_set() -> Vec<HostMemoryConfig> {
        vec![Self::dram(), Self::nvdram(), Self::memory_mode()]
    }

    /// The Table II configurations for a model that outgrows DRAM
    /// (the OPT-175B set).
    pub fn opt175b_set() -> Vec<HostMemoryConfig> {
        vec![
            Self::ssd(),
            Self::fsdax(),
            Self::nvdram(),
            Self::memory_mode(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{AccessProfile, MemoryTechnology};

    #[test]
    fn table_ii_sets() {
        assert_eq!(HostMemoryConfig::opt30b_set().len(), 3);
        assert_eq!(HostMemoryConfig::opt175b_set().len(), 4);
    }

    #[test]
    fn kinds_and_devices_line_up() {
        assert_eq!(
            HostMemoryConfig::dram().cpu_device().technology(),
            MemoryTechnology::Dram
        );
        assert_eq!(
            HostMemoryConfig::nvdram().cpu_device().technology(),
            MemoryTechnology::Pcm
        );
        assert_eq!(
            HostMemoryConfig::memory_mode().cpu_device().technology(),
            MemoryTechnology::PcmCached
        );
        assert_eq!(
            HostMemoryConfig::cxl_fpga().cpu_device().technology(),
            MemoryTechnology::CxlExpander
        );
    }

    #[test]
    fn storage_configs_have_disks_and_dram_cpu_tier() {
        for cfg in [HostMemoryConfig::ssd(), HostMemoryConfig::fsdax()] {
            assert!(cfg.disk_device().is_some());
            assert_eq!(cfg.cpu_device().technology(), MemoryTechnology::Dram);
            assert!(!cfg.cpu_needs_bounce());
            assert_eq!(cfg.disk_device().unwrap().staging(), Staging::BounceBuffer);
        }
    }

    #[test]
    fn nvdram_capacity_covers_opt175b() {
        // 324 GB of OPT-175B weights must fit in 1 TB of Optane.
        let cfg = HostMemoryConfig::nvdram();
        assert!(cfg.cpu_device().capacity() > ByteSize::from_gb(324.0));
        // ...but not in 256 GB of DRAM.
        let dram = HostMemoryConfig::dram();
        assert!(dram.cpu_device().capacity() < ByteSize::from_gb(324.0));
    }

    #[test]
    fn try_with_cpu_throttle_validates_factors() {
        assert_eq!(
            HostMemoryConfig::dram()
                .try_with_cpu_throttle(-0.5, 1.0)
                .unwrap_err(),
            UnitError::InvalidBandwidth(-0.5)
        );
        assert_eq!(
            HostMemoryConfig::dram()
                .try_with_cpu_throttle(0.5, 0.9)
                .unwrap_err(),
            UnitError::InvalidTime(0.9)
        );
        assert!(HostMemoryConfig::dram()
            .try_with_cpu_throttle(0.5, 1.5)
            .is_ok());
    }

    #[test]
    fn custom_cxl_bandwidth_is_respected() {
        let cfg = HostMemoryConfig::cxl_custom(Bandwidth::from_gb_per_s(12.0));
        let bw = cfg
            .cpu_device()
            .bandwidth(&AccessProfile::sequential_read(ByteSize::from_gb(1.0)));
        assert!((bw.as_gb_per_s() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(MemoryConfigKind::NvDram.to_string(), "NVDRAM");
        assert_eq!(MemoryConfigKind::MemoryMode.to_string(), "MemoryMode");
        assert_eq!(MemoryConfigKind::FsDax.to_string(), "FSDAX");
    }
}
