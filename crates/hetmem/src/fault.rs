//! Failure and degradation injection.
//!
//! Real heterogeneous-memory deployments degrade before they fail:
//! Optane modules thermally throttle (the DIMMs cap at ~15 W and
//! shed bandwidth under sustained load), CXL expanders drop to
//! narrower link widths, and DRAM ranks get offlined. The
//! [`ThrottledDevice`] wrapper injects such degradation into any
//! [`MemoryDevice`] so tests and what-if studies can check that the
//! serving stack degrades gracefully instead of mispredicting.

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology, Staging};
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// A degradation wrapper over another memory device.
///
/// # Examples
///
/// ```
/// use hetmem::fault::ThrottledDevice;
/// use hetmem::optane::OptaneDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let healthy = OptaneDevice::dcpmm_200_socket();
/// let hot = ThrottledDevice::new(OptaneDevice::dcpmm_200_socket(), 0.5, 2.0);
/// let p = AccessProfile::sequential_read(ByteSize::from_gb(1.0));
/// assert_eq!(
///     hot.bandwidth(&p).as_gb_per_s(),
///     healthy.bandwidth(&p).as_gb_per_s() * 0.5
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ThrottledDevice<D> {
    inner: D,
    bandwidth_factor: f64,
    latency_factor: f64,
}

impl<D: MemoryDevice> ThrottledDevice<D> {
    /// Wraps `inner`, scaling every bandwidth by `bandwidth_factor`
    /// (0 < f ≤ 1) and every idle latency by `latency_factor` (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics on factors outside those ranges.
    pub fn new(inner: D, bandwidth_factor: f64, latency_factor: f64) -> Self {
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth factor must be in (0, 1]"
        );
        assert!(latency_factor >= 1.0, "latency factor must be >= 1");
        ThrottledDevice {
            inner,
            bandwidth_factor,
            latency_factor,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the device.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: MemoryDevice> MemoryDevice for ThrottledDevice<D> {
    fn name(&self) -> String {
        format!(
            "{} [throttled x{:.2}]",
            self.inner.name(),
            self.bandwidth_factor
        )
    }

    fn capacity(&self) -> ByteSize {
        self.inner.capacity()
    }

    fn technology(&self) -> MemoryTechnology {
        self.inner.technology()
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        self.inner.bandwidth(profile).scale(self.bandwidth_factor)
    }

    fn service_components(&self, profile: &AccessProfile) -> Vec<(f64, Bandwidth)> {
        self.inner
            .service_components(profile)
            .into_iter()
            .map(|(frac, bw)| (frac, bw.scale(self.bandwidth_factor)))
            .collect()
    }

    fn idle_latency(&self, kind: AccessKind, remote: bool) -> SimDuration {
        self.inner.idle_latency(kind, remote) * self.latency_factor
    }

    fn staging(&self) -> Staging {
        self.inner.staging()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramDevice;
    use crate::memmode::MemoryModeDevice;
    use crate::optane::OptaneDevice;

    fn probe() -> AccessProfile {
        AccessProfile::sequential_read(ByteSize::from_gb(1.0))
    }

    #[test]
    fn scales_bandwidth_and_latency_only() {
        let base = DramDevice::ddr4_2933_socket();
        let t = ThrottledDevice::new(DramDevice::ddr4_2933_socket(), 0.25, 3.0);
        assert_eq!(
            t.bandwidth(&probe()).as_gb_per_s(),
            base.bandwidth(&probe()).as_gb_per_s() * 0.25
        );
        assert_eq!(
            t.idle_latency(AccessKind::RandRead, false).as_secs(),
            base.idle_latency(AccessKind::RandRead, false).as_secs() * 3.0
        );
        assert_eq!(t.capacity(), base.capacity());
        assert_eq!(t.technology(), base.technology());
        assert_eq!(t.staging(), base.staging());
        assert!(t.name().contains("throttled"));
    }

    #[test]
    fn service_components_scale_consistently() {
        // Blended devices (Memory Mode) stay self-consistent when
        // throttled: blending the scaled components reproduces the
        // scaled blend.
        let t = ThrottledDevice::new(MemoryModeDevice::paper_socket(), 0.5, 1.0);
        let p = probe().with_working_set(ByteSize::from_gb(300.0));
        let comps = t.service_components(&p);
        let inv: f64 = comps.iter().map(|(f, bw)| f / bw.as_bytes_per_s()).sum();
        let blended = 1.0 / inv;
        assert!((blended - t.bandwidth(&p).as_bytes_per_s()).abs() / blended < 1e-9);
    }

    #[test]
    fn nested_throttles_compose() {
        let t = ThrottledDevice::new(
            ThrottledDevice::new(OptaneDevice::dcpmm_200_socket(), 0.5, 1.0),
            0.5,
            1.0,
        );
        let base = OptaneDevice::dcpmm_200_socket();
        let ratio = t.bandwidth(&probe()).as_gb_per_s() / base.bandwidth(&probe()).as_gb_per_s();
        assert!((ratio - 0.25).abs() < 1e-9);
        assert_eq!(t.into_inner().inner().capacity(), base.capacity());
    }

    #[test]
    #[should_panic(expected = "bandwidth factor")]
    fn rejects_amplifying_factor() {
        let _ = ThrottledDevice::new(DramDevice::ddr4_2933_socket(), 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn rejects_latency_speedup() {
        let _ = ThrottledDevice::new(DramDevice::ddr4_2933_socket(), 1.0, 0.5);
    }
}
