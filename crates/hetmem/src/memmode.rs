//! Optane Memory Mode: Optane main memory behind a direct-mapped DRAM
//! cache (paper §II-C).
//!
//! The model blends DRAM-cache hits with Optane misses by working-set
//! size. When the footprint fits in the DRAM cache, Memory Mode tracks
//! DRAM performance (paper Fig 3: "MM is able to completely hide this
//! performance gap ... because the buffer size fits within the DRAM
//! cache capacity"); once the footprint outgrows the cache, the hit
//! rate falls toward `cache/footprint` and the miss path pays the
//! Optane fetch plus fill overhead (OPT-175B weights, 324 GB vs a
//! 256 GB cache, see MM land between NVDRAM and an ideal all-DRAM
//! system — paper Fig 4/5).

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology};
use crate::dram::DramDevice;
use crate::optane::OptaneDevice;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Fraction of nominal cache capacity that behaves as fully resident
/// before direct-mapped conflicts start producing misses.
pub const CONFLICT_FREE_FRACTION: f64 = 0.85;
/// Miss-path derating on the Optane fetch (line fill + metadata
/// bookkeeping on top of the raw media read). Calibrated so an ideal
/// all-DRAM system improves average weight-transfer time over
/// thrashing Memory Mode by the paper's ~22% (Fig 5 discussion).
pub const MISS_FILL_DERATE: f64 = 0.60;
/// Hit-path derating relative to raw DRAM (tag checks on DDR-T).
pub const HIT_DERATE: f64 = 1.0;

/// Optane in Memory Mode: DRAM cache in front of Optane media.
///
/// # Examples
///
/// ```
/// use hetmem::memmode::MemoryModeDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let mm = MemoryModeDevice::paper_socket();
/// // A 4 GB buffer fits the 128 GB cache: DRAM-like speed.
/// let cached = mm.bandwidth(&AccessProfile::sequential_read(ByteSize::from_gb(4.0)));
/// // A 324 GB working set does not: degraded toward Optane.
/// let thrashed = mm.bandwidth(
///     &AccessProfile::sequential_read(ByteSize::from_gb(4.0))
///         .with_working_set(ByteSize::from_gb(324.0)),
/// );
/// assert!(thrashed < cached);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModeDevice {
    cache: DramDevice,
    media: OptaneDevice,
}

impl MemoryModeDevice {
    /// The paper's per-socket configuration: 128 GB DRAM cache over
    /// 512 GB Optane.
    pub fn paper_socket() -> Self {
        MemoryModeDevice {
            cache: DramDevice::ddr4_2933_socket(),
            media: OptaneDevice::dcpmm_200_socket(),
        }
    }

    /// A custom cache/media pairing.
    pub fn new(cache: DramDevice, media: OptaneDevice) -> Self {
        MemoryModeDevice { cache, media }
    }

    /// The DRAM cache capacity.
    pub fn cache_capacity(&self) -> ByteSize {
        self.cache.capacity()
    }

    /// Estimated hit rate for a cyclically re-referenced `footprint`.
    pub fn hit_rate(&self, footprint: ByteSize) -> f64 {
        let effective_cache = self.cache.capacity().as_f64() * CONFLICT_FREE_FRACTION;
        let fp = footprint.as_f64();
        if fp <= effective_cache {
            1.0
        } else {
            (effective_cache / fp).clamp(0.0, 1.0)
        }
    }
}

impl MemoryDevice for MemoryModeDevice {
    fn name(&self) -> String {
        format!(
            "MemoryMode (DRAM cache {} / Optane {})",
            self.cache.capacity(),
            self.media.capacity()
        )
    }

    /// Memory Mode exposes only the Optane capacity; the DRAM cache
    /// is invisible to software.
    fn capacity(&self) -> ByteSize {
        self.media.capacity()
    }

    fn technology(&self) -> MemoryTechnology {
        MemoryTechnology::PcmCached
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        // Time-weighted blend: each byte takes 1/bw at its service tier.
        let inv: f64 = self
            .service_components(profile)
            .iter()
            .map(|(frac, bw)| frac / bw.as_bytes_per_s())
            .sum();
        Bandwidth::from_bytes_per_s(1.0 / inv)
    }

    fn service_components(&self, profile: &AccessProfile) -> Vec<(f64, Bandwidth)> {
        let hit = self.hit_rate(profile.footprint());
        let hit_bw = self.cache.bandwidth(profile).scale(HIT_DERATE);
        let miss_bw = self.media.bandwidth(profile).scale(MISS_FILL_DERATE);
        if hit >= 1.0 {
            vec![(1.0, hit_bw)]
        } else {
            vec![(hit, hit_bw), (1.0 - hit, miss_bw)]
        }
    }

    fn idle_latency(&self, kind: AccessKind, remote: bool) -> SimDuration {
        // Unloaded probes hit the DRAM cache; add the tag-check hop.
        self.cache.idle_latency(kind, remote) + SimDuration::from_nanos(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccessProfile;

    fn gb(x: f64) -> ByteSize {
        ByteSize::from_gb(x)
    }

    #[test]
    fn tracks_dram_when_footprint_fits() {
        // Paper Fig 3a: MM overlaps DRAM perfectly for <=32 GB buffers.
        let mm = MemoryModeDevice::paper_socket();
        let dram = DramDevice::ddr4_2933_socket();
        let p = AccessProfile::sequential_read(gb(32.0));
        let ratio = mm.bandwidth(&p).as_gb_per_s() / dram.bandwidth(&p).as_gb_per_s();
        assert!(ratio > 0.99, "MM should match DRAM in-cache: {ratio}");
    }

    #[test]
    fn degrades_when_footprint_exceeds_cache() {
        let mm = MemoryModeDevice::paper_socket();
        let in_cache = mm.bandwidth(&AccessProfile::sequential_read(gb(32.0)));
        let out =
            mm.bandwidth(&AccessProfile::sequential_read(gb(1.0)).with_working_set(gb(400.0)));
        assert!(out < in_cache);
    }

    #[test]
    fn hit_rate_boundaries() {
        let mm = MemoryModeDevice::paper_socket();
        assert_eq!(mm.hit_rate(gb(10.0)), 1.0);
        let big = mm.hit_rate(gb(500.0));
        assert!(big < 1.0 && big > 0.0);
        // Monotone non-increasing in footprint.
        assert!(mm.hit_rate(gb(200.0)) >= mm.hit_rate(gb(400.0)));
    }

    #[test]
    fn sits_between_dram_and_optane_when_thrashing() {
        let mm = MemoryModeDevice::paper_socket();
        let dram = DramDevice::ddr4_2933_socket();
        let optane = OptaneDevice::dcpmm_200_socket();
        let p = AccessProfile::sequential_read(gb(1.0)).with_working_set(gb(324.0));
        let mm_bw = mm.bandwidth(&p);
        assert!(mm_bw < dram.bandwidth(&p));
        assert!(mm_bw > optane.bandwidth(&p).scale(MISS_FILL_DERATE));
    }

    #[test]
    fn capacity_is_media_only() {
        let mm = MemoryModeDevice::paper_socket();
        assert_eq!(mm.capacity(), ByteSize::from_gib(512.0));
        assert_eq!(mm.technology(), MemoryTechnology::PcmCached);
    }

    #[test]
    fn latency_slightly_above_dram() {
        let mm = MemoryModeDevice::paper_socket();
        let dram = DramDevice::ddr4_2933_socket();
        assert!(
            mm.idle_latency(AccessKind::RandRead, false)
                > dram.idle_latency(AccessKind::RandRead, false)
        );
    }
}
