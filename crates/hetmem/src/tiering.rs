//! Transparent OS-level page tiering (TPP-style).
//!
//! The paper's related work (§VI) contrasts its *application-aware*
//! placement with "application-agnostic transparent page management
//! across local memory and CXL memory" (TPP, Maruf et al.). This
//! module models that alternative: DRAM + slow memory managed by a
//! hotness-driven page migrator instead of by the serving framework.
//!
//! For LLM weight streaming the access pattern is a long cyclic scan:
//! by the time a page is re-referenced, the migrator has already
//! recycled the DRAM it was promoted into. Steady state is therefore
//! mostly misses, *plus* migration churn — and every demotion is a
//! write into PCM-class memory, the device's weakest operation
//! (Fig 3b). The model makes that pathology quantitative so the
//! ablation bench can show why the paper's explicit placement wins.

use crate::device::{AccessKind, AccessProfile, MemoryDevice, MemoryTechnology};
use crate::dram::DramDevice;
use crate::optane::OptaneDevice;
use simcore::time::SimDuration;
use simcore::units::{Bandwidth, ByteSize};

/// Fraction of DRAM usable for promoted pages (the rest is pinned by
/// the OS, page cache, and the serving process itself).
pub const PROMOTABLE_DRAM_FRACTION: f64 = 0.80;
/// Fraction of misses that trigger a promotion + eventual demotion
/// round trip in steady state (NUMA-balancing-style sampling).
pub const MIGRATION_RATE: f64 = 0.25;
/// Extra per-byte cost multiplier of a migration (kernel copy +
/// TLB shootdowns) on top of the raw media transfers.
pub const MIGRATION_SOFTWARE_OVERHEAD: f64 = 1.3;

/// DRAM + slow memory behind an OS page migrator.
///
/// # Examples
///
/// Transparent tiering loses to the hardware DRAM cache (Memory Mode)
/// on cyclic weight streams:
///
/// ```
/// use hetmem::tiering::TppTieredDevice;
/// use hetmem::memmode::MemoryModeDevice;
/// use hetmem::{AccessProfile, MemoryDevice};
/// use simcore::units::ByteSize;
///
/// let tpp = TppTieredDevice::paper_system();
/// let mm = MemoryModeDevice::paper_socket();
/// let p = AccessProfile::sequential_read(ByteSize::from_mb(300.0))
///     .with_working_set(ByteSize::from_gb(320.0));
/// assert!(tpp.bandwidth(&p) < mm.bandwidth(&p));
/// ```
#[derive(Debug, Clone)]
pub struct TppTieredDevice {
    dram: DramDevice,
    slow: OptaneDevice,
}

impl TppTieredDevice {
    /// The paper platform's tiers: 256 GB DRAM over 1 TB Optane.
    pub fn paper_system() -> Self {
        TppTieredDevice {
            dram: DramDevice::new(
                ByteSize::from_gib(256.0),
                crate::dram::DDR4_2933_SOCKET_READ,
                crate::dram::PER_STREAM,
            ),
            slow: OptaneDevice::with_capacity(ByteSize::from_tib(1.0)),
        }
    }

    /// A custom pairing.
    pub fn new(dram: DramDevice, slow: OptaneDevice) -> Self {
        TppTieredDevice { dram, slow }
    }

    /// Steady-state fraction of accesses served from DRAM for a
    /// cyclic re-reference footprint. Unlike a hardware cache, the
    /// migrator only captures what it managed to promote *and keep*
    /// before the scan cycled around.
    pub fn dram_hit_rate(&self, footprint: ByteSize) -> f64 {
        let promotable = self.dram.capacity().as_f64() * PROMOTABLE_DRAM_FRACTION;
        let fp = footprint.as_f64();
        if fp <= promotable {
            return 1.0;
        }
        // Promotion cannot outpace the scan: the resident fraction
        // decays with how many times the footprint overwhelms DRAM.
        let ratio = promotable / fp;
        ratio * ratio.min(1.0).sqrt()
    }
}

impl MemoryDevice for TppTieredDevice {
    fn name(&self) -> String {
        format!(
            "TPP-tiered (DRAM {} / Optane {})",
            self.dram.capacity(),
            self.slow.capacity()
        )
    }

    fn capacity(&self) -> ByteSize {
        self.dram.capacity() + self.slow.capacity()
    }

    fn technology(&self) -> MemoryTechnology {
        // From software's perspective this is cached PCM; the composer
        // applies the same mesh-contention rules.
        MemoryTechnology::PcmCached
    }

    fn bandwidth(&self, profile: &AccessProfile) -> Bandwidth {
        let inv: f64 = self
            .service_components(profile)
            .iter()
            .map(|(frac, bw)| frac / bw.as_bytes_per_s())
            .sum();
        Bandwidth::from_bytes_per_s(1.0 / inv)
    }

    fn service_components(&self, profile: &AccessProfile) -> Vec<(f64, Bandwidth)> {
        let hit = self.dram_hit_rate(profile.footprint());
        let dram_bw = self.dram.bandwidth(profile);
        if hit >= 1.0 {
            return vec![(1.0, dram_bw)];
        }
        let slow_read = self.slow.bandwidth(profile);
        // A migrating miss pays: slow read + DRAM fill + (later) a
        // demotion write into the slow tier, all behind kernel-copy
        // overhead. Serialize the per-byte costs.
        let write_profile = AccessProfile {
            kind: AccessKind::SeqWrite,
            ..profile.clone()
        };
        let slow_write = self.slow.bandwidth(&write_profile);
        let migrate_bw = Bandwidth::from_bytes_per_s(
            1.0 / (MIGRATION_SOFTWARE_OVERHEAD
                * (1.0 / slow_read.as_bytes_per_s()
                    + 1.0 / dram_bw.as_bytes_per_s()
                    + 1.0 / slow_write.as_bytes_per_s())),
        );
        let miss = 1.0 - hit;
        vec![
            (hit, dram_bw),
            (miss * (1.0 - MIGRATION_RATE), slow_read),
            (miss * MIGRATION_RATE, migrate_bw),
        ]
    }

    fn idle_latency(&self, kind: AccessKind, remote: bool) -> SimDuration {
        // Unloaded probes land on whatever tier holds the page; use
        // the hit-weighted midpoint at a nominal large footprint.
        let d = self.dram.idle_latency(kind, remote);
        let s = self.slow.idle_latency(kind, remote);
        (d + s) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmode::MemoryModeDevice;

    fn cyclic(ws_gb: f64) -> AccessProfile {
        AccessProfile::sequential_read(ByteSize::from_mb(300.0))
            .with_working_set(ByteSize::from_gb(ws_gb))
    }

    #[test]
    fn matches_dram_when_everything_fits() {
        let tpp = TppTieredDevice::paper_system();
        let small = cyclic(10.0);
        assert_eq!(tpp.dram_hit_rate(ByteSize::from_gb(10.0)), 1.0);
        let dram = DramDevice::ddr4_2933_socket();
        assert_eq!(tpp.bandwidth(&small), dram.bandwidth(&small));
    }

    #[test]
    fn loses_to_hardware_caching_on_big_cyclic_scans() {
        // The §VI claim's quantitative core: page migration cannot
        // track a 320 GB scan; the direct-mapped hardware cache does
        // better, and both sit below DRAM.
        let tpp = TppTieredDevice::paper_system();
        let mm = crate::HostMemoryConfig::memory_mode();
        let p = cyclic(320.0);
        assert!(tpp.bandwidth(&p) < mm.cpu_device().bandwidth(&p));
    }

    #[test]
    fn migration_churn_hurts_more_than_plain_misses() {
        // Disable migration by comparing against a pure hit/miss
        // blend: the migrating device must be slower.
        let tpp = TppTieredDevice::paper_system();
        let p = cyclic(320.0);
        let hit = tpp.dram_hit_rate(p.footprint());
        let dram = tpp.dram.bandwidth(&p);
        let slow = tpp.slow.bandwidth(&p);
        let no_migration =
            1.0 / (hit / dram.as_bytes_per_s() + (1.0 - hit) / slow.as_bytes_per_s());
        assert!(tpp.bandwidth(&p).as_bytes_per_s() < no_migration);
    }

    #[test]
    fn hit_rate_decays_superlinearly() {
        let tpp = TppTieredDevice::paper_system();
        let h300 = tpp.dram_hit_rate(ByteSize::from_gb(300.0));
        let h600 = tpp.dram_hit_rate(ByteSize::from_gb(600.0));
        assert!(h300 < 1.0 && h300 > 0.0);
        assert!(h600 < h300 / 1.8, "decay too shallow: {h300} -> {h600}");
        // ...and is strictly worse than Memory Mode's hardware cache.
        let mm = MemoryModeDevice::new(
            DramDevice::new(
                ByteSize::from_gib(256.0),
                Bandwidth::from_gb_per_s(157.0),
                Bandwidth::from_gb_per_s(40.0),
            ),
            OptaneDevice::with_capacity(ByteSize::from_tib(1.0)),
        );
        assert!(h300 < mm.hit_rate(ByteSize::from_gb(300.0)));
    }

    #[test]
    fn components_fractions_sum_to_one() {
        let tpp = TppTieredDevice::paper_system();
        let comps = tpp.service_components(&cyclic(400.0));
        let sum: f64 = comps.iter().map(|(f, _)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn reports_identity() {
        let tpp = TppTieredDevice::paper_system();
        assert!(tpp.name().contains("TPP"));
        assert_eq!(tpp.capacity(), ByteSize::from_gib(1280.0));
        assert_eq!(tpp.technology(), MemoryTechnology::PcmCached);
    }
}
